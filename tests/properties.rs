//! Property-based tests over the public API: randomized workloads and
//! data structures must uphold the system's core invariants.

use proptest::prelude::*;
use scanshare_repro::core::SharingConfig;
use scanshare_repro::engine::{
    run_workload, Access, AggSpec, CpuClass, Database, EngineConfig, Pred, Query, ScanSpec,
    SharingMode, Stream, WorkloadSpec,
};
use scanshare_repro::relstore::{BTree, ColType, Column, Entry, Schema, Value};
use scanshare_repro::storage::{
    BufferPool, FileStore, FixOutcome, PagePriority, PoolConfig, ReplacementPolicy, SimDuration,
};

/// Build a small MDC database with `cells` clustering cells.
fn small_db(cells: i64, rows: u64) -> Database {
    let mut db = Database::new(8);
    let schema = Schema::new(vec![
        Column::new("cell", ColType::Int32),
        Column::new("v", ColType::Float64),
    ]);
    db.create_mdc_table(
        "t",
        schema,
        4,
        (0..rows).map(move |i| {
            let c = (i as i64 * 7919) % cells;
            (c, vec![Value::I32(c as i32), Value::F64(1.0)])
        }),
    )
    .unwrap();
    db
}

fn index_query(name: &str, lo: i64, hi: i64) -> Query {
    Query::single(
        name,
        ScanSpec {
            table: "t".into(),
            access: Access::IndexRange { lo, hi },
            pred: Pred::True,
            agg: AggSpec::sums(vec![1]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any mix of overlapping index scans, scan-sharing computes the
    /// same answers as the baseline and never does more physical I/O.
    #[test]
    fn sharing_is_answer_preserving_and_io_monotone(
        ranges in proptest::collection::vec((0i64..12, 0i64..12), 2..6),
        offsets_ms in proptest::collection::vec(0u64..400, 2..6),
    ) {
        let db = small_db(12, 30_000);
        let streams: Vec<Stream> = ranges
            .iter()
            .zip(&offsets_ms)
            .enumerate()
            .map(|(i, (&(a, b), &off))| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Stream {
                    queries: vec![index_query(&format!("q{i}"), lo, hi)],
                    start_offset: SimDuration::from_millis(off),
                }
            })
            .collect();
        let spec = |mode| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode,
        };
        let base = run_workload(&db, &spec(SharingMode::Base)).unwrap();
        let ss = run_workload(
            &db,
            &spec(SharingMode::ScanSharing(SharingConfig::new(0))),
        )
        .unwrap();
        // Answers identical.
        let mut qb = base.queries.clone();
        let mut qs = ss.queries.clone();
        qb.sort_by_key(|q| q.name.clone());
        qs.sort_by_key(|q| q.name.clone());
        for (b, s) in qb.iter().zip(&qs) {
            prop_assert_eq!(b.result.count, s.result.count);
        }
        // Sharing reads at most what base reads, plus a small margin for
        // wrap-phase effects on tiny scans.
        prop_assert!(
            ss.disk.pages_read as f64 <= base.disk.pages_read as f64 * 1.05 + 64.0,
            "ss {} base {}", ss.disk.pages_read, base.disk.pages_read
        );
    }

    /// The B+ tree agrees with a sorted-vector model for any entry set.
    #[test]
    fn btree_matches_model(
        keys in proptest::collection::vec((-50i64..50, 0u64..1000), 0..400),
        probes in proptest::collection::vec((-60i64..60, -60i64..60), 0..20),
    ) {
        let mut store = FileStore::new(16);
        let mut tree = BTree::create(&mut store).unwrap();
        let mut model: Vec<Entry> = Vec::new();
        for &(k, p) in &keys {
            let e = Entry::new(k, p);
            tree.insert(&mut store, e).unwrap();
            let pos = model.partition_point(|m| *m <= e);
            model.insert(pos, e);
        }
        prop_assert_eq!(tree.all(&store).unwrap(), model.clone());
        for &(a, b) in &probes {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let expect: Vec<Entry> = model
                .iter()
                .filter(|e| lo <= e.key && e.key <= hi)
                .copied()
                .collect();
            prop_assert_eq!(tree.range(&store, lo, hi).unwrap(), expect);
        }
    }

    /// The buffer pool never exceeds capacity, and under PriorityLru a
    /// higher-priority page never gets evicted while a lower-priority
    /// unpinned page is resident.
    #[test]
    fn pool_respects_capacity_and_priorities(
        ops in proptest::collection::vec((0u32..64, 0u8..3), 1..500),
        cap in 2usize..16,
    ) {
        use scanshare_repro::storage::{FileId, PageId};
        let mut pool = BufferPool::new(PoolConfig::new(cap, ReplacementPolicy::PriorityLru));
        let buf = scanshare_repro::storage::page::zeroed_page().freeze();
        for &(p, prio) in &ops {
            let id = PageId::new(FileId(0), p);
            let priority = match prio {
                0 => PagePriority::Low,
                1 => PagePriority::Normal,
                _ => PagePriority::High,
            };
            match pool.fix(id) {
                FixOutcome::Hit(_) => {}
                FixOutcome::Miss => pool.complete_miss(id, buf.clone()).unwrap(),
            }
            pool.release(id, priority).unwrap();
            prop_assert!(pool.len() <= cap);
        }
        prop_assert!(pool.stats().logical_reads == ops.len() as u64);
    }

    /// Grouping never exceeds the pool budget and leaders are ahead of
    /// trailers.
    #[test]
    fn grouping_invariants(
        offsets in proptest::collection::vec(0i64..10_000, 1..24),
        pool in 1u64..5_000,
    ) {
        use scanshare_repro::core::grouping::find_leaders_trailers;
        use scanshare_repro::core::anchor::AnchorId;
        use scanshare_repro::core::ScanId;
        let scans: Vec<(ScanId, AnchorId, i64)> = offsets
            .iter()
            .enumerate()
            .map(|(i, &o)| (ScanId(i as u64), AnchorId((i % 3) as u64), o))
            .collect();
        let groups = find_leaders_trailers(&scans, pool);
        prop_assert!(groups.total_extent() < pool.max(1));
        let mut seen = 0;
        for g in &groups.groups {
            seen += g.members.len();
            // Members sorted by offset: leader last, trailer first.
            let offs: Vec<i64> = g
                .members
                .iter()
                .map(|m| scans.iter().find(|s| s.0 == *m).unwrap().2)
                .collect();
            for w in offs.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            prop_assert_eq!(
                g.extent,
                (offs[offs.len() - 1] - offs[0]) as u64
            );
        }
        prop_assert_eq!(seen, scans.len());
    }

    /// Placement always returns a start inside the feasible range and
    /// never estimates more reads than the no-sharing baseline.
    #[test]
    fn placement_bounds(
        members in proptest::collection::vec(
            (0.0f64..5_000.0, 10.0f64..500.0, 1.0f64..5_000.0),
            1..8
        ),
        cand_speed in 10.0f64..500.0,
        cand_pages in 100.0f64..5_000.0,
        pool in 16.0f64..1_000.0,
    ) {
        use scanshare_repro::core::placement::{best_start_practical, calculate_reads, Trace};
        let traces: Vec<Trace> = members
            .iter()
            .map(|&(p, v, len)| Trace::new(p, v, p + len))
            .collect();
        if let Some(c) = best_start_practical(&traces, cand_speed, cand_pages, pool) {
            prop_assert!(traces.iter().any(|t| (t.pos0 - c.start).abs() < 1e-9));
            prop_assert!(c.estimate.reads <= c.estimate.baseline + 1e-6);
            prop_assert!(c.estimate.savings_per_page() > 0.0);
        }
        // calculate_reads is always within [0, baseline].
        let est = calculate_reads(
            &traces,
            Trace::new(0.0, cand_speed, cand_pages),
            pool,
        );
        prop_assert!(est.reads >= 0.0);
        prop_assert!(est.reads <= est.baseline + 1e-6);
    }
}
