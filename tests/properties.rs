//! Randomized-but-deterministic property tests over the public API:
//! workloads and data structures generated from a seeded in-repo PRNG
//! must uphold the system's core invariants. (Formerly proptest-based;
//! rewritten against `scanshare-prng` so the suite is hermetic.)

use scanshare_prng::Rng;
use scanshare_repro::core::SharingConfig;
use scanshare_repro::engine::{
    run_workload, Access, AggSpec, CpuClass, Database, EngineConfig, Pred, Query, ScanSpec,
    SharingMode, Stream, WorkloadSpec,
};
use scanshare_repro::relstore::{BTree, ColType, Column, Entry, Schema, Value};
use scanshare_repro::storage::{
    BufferPool, FileStore, FixOutcome, PagePriority, PoolConfig, ReplacementPolicy, SimDuration,
};

/// Build a small MDC database with `cells` clustering cells.
fn small_db(cells: i64, rows: u64) -> Database {
    let mut db = Database::new(8);
    let schema = Schema::new(vec![
        Column::new("cell", ColType::Int32),
        Column::new("v", ColType::Float64),
    ]);
    db.create_mdc_table(
        "t",
        schema,
        4,
        (0..rows).map(move |i| {
            let c = (i as i64 * 7919) % cells;
            (c, vec![Value::I32(c as i32), Value::F64(1.0)])
        }),
    )
    .unwrap();
    db
}

fn index_query(name: &str, lo: i64, hi: i64) -> Query {
    Query::single(
        name,
        ScanSpec {
            table: "t".into(),
            access: Access::IndexRange { lo, hi },
            pred: Pred::True,
            agg: AggSpec::sums(vec![1]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        },
    )
}

/// For any mix of overlapping index scans, scan-sharing computes the
/// same answers as the baseline and never does more physical I/O.
#[test]
fn sharing_is_answer_preserving_and_io_monotone() {
    let db = small_db(12, 30_000);
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x5ca_0000 + case);
        let n = rng.random_range(2..6usize);
        let streams: Vec<Stream> = (0..n)
            .map(|i| {
                let (a, b) = (rng.random_range(0i64..12), rng.random_range(0i64..12));
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Stream {
                    queries: vec![index_query(&format!("q{i}"), lo, hi)],
                    start_offset: SimDuration::from_millis(rng.random_range(0u64..400)),
                }
            })
            .collect();
        let spec = |mode| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode,
            faults: Default::default(),
            slo: Default::default(),
        };
        let base = run_workload(&db, &spec(SharingMode::Base)).unwrap();
        let ss = run_workload(&db, &spec(SharingMode::ScanSharing(SharingConfig::new(0)))).unwrap();
        // Answers identical.
        let mut qb = base.queries.clone();
        let mut qs = ss.queries.clone();
        qb.sort_by_key(|q| q.name.clone());
        qs.sort_by_key(|q| q.name.clone());
        for (b, s) in qb.iter().zip(&qs) {
            assert_eq!(b.result.count, s.result.count, "case {case}");
        }
        // Sharing reads at most what base reads, plus a small margin for
        // wrap-phase effects on tiny scans.
        assert!(
            ss.disk.pages_read as f64 <= base.disk.pages_read as f64 * 1.05 + 64.0,
            "case {case}: ss {} base {}",
            ss.disk.pages_read,
            base.disk.pages_read
        );
    }
}

/// For any seeded transient-fault plan, retries mask every injected
/// error (answers match a clean run), and repeat runs of the identical
/// (seed, plan) pair are byte-identical end to end — fault draws,
/// retry/backoff accounting, and the decision log included.
#[test]
fn fault_injection_is_deterministic_and_answer_preserving() {
    use scanshare_repro::engine::FaultsConfig;
    use scanshare_repro::storage::{FaultKind, FaultPlan, FaultRule};
    let db = small_db(12, 30_000);
    for case in 0..6u64 {
        let mut rng = Rng::seed_from_u64(0x0fa0_1700 + case);
        let n = rng.random_range(2..5usize);
        let streams: Vec<Stream> = (0..n)
            .map(|i| {
                let (a, b) = (rng.random_range(0i64..12), rng.random_range(0i64..12));
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Stream {
                    queries: vec![index_query(&format!("q{i}"), lo, hi)],
                    start_offset: SimDuration::from_millis(rng.random_range(0u64..400)),
                }
            })
            .collect();
        let plan = FaultPlan {
            seed: rng.random_range(0u64..1 << 32),
            rules: vec![FaultRule {
                device: None,
                pages: None,
                from_us: 0,
                until_us: None,
                fault: FaultKind::TransientError {
                    probability: rng.random_range(0.0f64..0.04),
                },
            }],
        };
        let spec = |faults| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode: SharingMode::ScanSharing(SharingConfig::new(0)),
            faults,
            slo: Default::default(),
        };
        let clean = run_workload(&db, &spec(FaultsConfig::default())).unwrap();
        let cfg = FaultsConfig {
            plan,
            ..FaultsConfig::default()
        };
        let a = run_workload(&db, &spec(cfg.clone())).unwrap();
        let b = run_workload(&db, &spec(cfg)).unwrap();

        // Same seed, same plan: bit-for-bit the same report, decisions
        // and fault counters included.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "case {case}: repeat faulted runs diverged"
        );
        // Transient faults never change answers — every error retried.
        assert_eq!(a.faults.scans_aborted, 0, "case {case}");
        assert_eq!(
            a.faults.retries, a.faults.transient_errors,
            "case {case}: every transient error costs exactly one retry"
        );
        let mut qc = clean.queries.clone();
        let mut qf = a.queries.clone();
        qc.sort_by_key(|q| q.name.clone());
        qf.sort_by_key(|q| q.name.clone());
        assert_eq!(qc.len(), qf.len(), "case {case}");
        for (c, f) in qc.iter().zip(&qf) {
            assert_eq!(
                c.result, f.result,
                "case {case}: answers must survive faults"
            );
        }
    }
}

/// Push delivery is invariant to the order streams are listed in the
/// spec: for any mix of overlapping index scans with distinct start
/// offsets, permuting the stream vector changes neither `pages_read`
/// nor any query's answer or fix counts — the group drivers deliver
/// the same pages no matter where each consumer sat in the listing.
#[test]
fn push_delivery_is_stream_order_invariant() {
    use scanshare_repro::core::DeliveryMode;
    let db = small_db(12, 30_000);
    for case in 0..12u64 {
        let mut rng = Rng::seed_from_u64(0x9054_0000 + case);
        let n = rng.random_range(2..6usize);
        let mut streams: Vec<Stream> = (0..n)
            .map(|i| {
                let (a, b) = (rng.random_range(0i64..12), rng.random_range(0i64..12));
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Stream {
                    queries: vec![index_query(&format!("q{i}"), lo, hi)],
                    // Distinct offsets: arrival order stays fixed, only
                    // the listing order changes under the permutation.
                    start_offset: SimDuration::from_micros(
                        rng.random_range(0u64..400) * 1_000 + i as u64,
                    ),
                }
            })
            .collect();
        let mut cfg = SharingConfig::new(0);
        cfg.delivery = DeliveryMode::Push;
        let spec = |streams: Vec<Stream>| WorkloadSpec {
            streams,
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode: SharingMode::ScanSharing(cfg.clone()),
            faults: Default::default(),
            slo: Default::default(),
        };
        let a = run_workload(&db, &spec(streams.clone())).unwrap();
        assert!(a.push.is_some(), "case {case}: push summary missing");
        for _ in 0..8 {
            let (x, y) = (rng.random_range(0..n), rng.random_range(0..n));
            streams.swap(x, y);
        }
        let b = run_workload(&db, &spec(streams)).unwrap();
        assert_eq!(a.disk.pages_read, b.disk.pages_read, "case {case}");
        let sorted = |r: &scanshare_repro::engine::RunReport| {
            let mut q = r.queries.clone();
            q.sort_by_key(|q| q.name.clone());
            q
        };
        let (qa, qb) = (sorted(&a), sorted(&b));
        assert_eq!(qa.len(), qb.len(), "case {case}");
        for (x, y) in qa.iter().zip(&qb) {
            assert_eq!(x.name, y.name, "case {case}");
            assert_eq!(x.result, y.result, "case {case}: answers must not move");
            assert_eq!(x.logical_reads, y.logical_reads, "case {case}");
            assert_eq!(x.physical_reads, y.physical_reads, "case {case}");
        }
    }
}

/// A push consumer that faults during its private catch-up replay is
/// evicted alone: the group driver and the riders that already finished
/// keep byte-identical query records, answers included, and the driver
/// role never moves.
#[test]
fn faulted_push_consumer_eviction_leaves_survivors_byte_stable() {
    use scanshare_repro::core::{DecisionEvent, DeliveryMode, SharingPolicyKind};
    use scanshare_repro::engine::FaultsConfig;
    use scanshare_repro::storage::{FaultKind, FaultPlan, FaultRule};

    let db = small_db(12, 30_000);
    // The attach policy accepts any catch-up distance, so a very late
    // third stream still rides the existing driver and replays a long
    // prefix privately — stretching its life past the survivors'.
    let mut cfg = SharingConfig::with_policy(0, SharingPolicyKind::Attach);
    cfg.delivery = DeliveryMode::Push;
    let spec = |late_us: u64, faults: FaultsConfig| WorkloadSpec {
        streams: vec![
            Stream {
                queries: vec![index_query("q0", 0, 11)],
                start_offset: SimDuration::from_micros(0),
            },
            Stream {
                queries: vec![index_query("q1", 0, 11)],
                start_offset: SimDuration::from_millis(1),
            },
            Stream {
                queries: vec![index_query("q2", 0, 11)],
                start_offset: SimDuration::from_micros(late_us),
            },
        ],
        pool_pages: 64,
        engine: EngineConfig::default(),
        mode: SharingMode::ScanSharing(cfg.clone()),
        faults,
        slo: Default::default(),
    };
    // Calibrate: the driver's lap length with everyone starting early,
    // then re-run with the third stream joining at 80% of that lap.
    let probe = run_workload(&db, &spec(2_000, FaultsConfig::default())).unwrap();
    let late_us = (probe.makespan.as_micros() as f64 * 0.8) as u64;
    let clean = run_workload(&db, &spec(late_us, FaultsConfig::default())).unwrap();
    let ps = clean.push.as_ref().expect("push summary");
    assert_eq!(ps.drivers, 1, "everyone shares one driver: {ps:?}");
    assert_eq!(ps.attaches, 2, "{ps:?}");
    assert!(ps.catchup_pages > 0, "late joiner must replay a prefix");
    let by_name = |r: &scanshare_repro::engine::RunReport, name: &str| {
        r.queries
            .iter()
            .find(|q| q.name == name)
            .cloned()
            .unwrap_or_else(|| panic!("query {name} missing"))
    };
    let survivors_end = by_name(&clean, "q0").end.max(by_name(&clean, "q1").end);
    let victim_end = by_name(&clean, "q2").end;
    assert!(
        victim_end > survivors_end,
        "catch-up must outlive the lap: victim {victim_end:?} vs survivors {survivors_end:?}"
    );
    // Kill the disk for good halfway through the victim-only window:
    // the only scan still reading is q2's catch-up cursor.
    let mid_us = (survivors_end.as_micros() + victim_end.as_micros()) / 2;
    let faults = FaultsConfig {
        plan: FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                device: None,
                pages: None,
                from_us: mid_us,
                until_us: None,
                fault: FaultKind::PermanentError,
            }],
        },
        ..FaultsConfig::default()
    };
    let faulted = run_workload(&db, &spec(late_us, faults)).unwrap();
    assert_eq!(faulted.faults.scans_aborted, 1, "{:?}", faulted.faults);
    let fps = faulted.push.as_ref().expect("push summary");
    assert_eq!(fps.handoffs, 0, "the driver itself never faulted: {fps:?}");
    assert_eq!(fps.drivers, 1, "{fps:?}");
    // Survivors are byte-stable: the fault fired after they finished.
    for name in ["q0", "q1"] {
        assert_eq!(
            serde_json::to_string(&by_name(&clean, name)).unwrap(),
            serde_json::to_string(&by_name(&faulted, name)).unwrap(),
            "survivor {name} perturbed by the victim's eviction"
        );
    }
    // The victim carries a partial answer and an eviction decision
    // naming the permanent fault.
    assert!(
        by_name(&faulted, "q2").result.count < by_name(&clean, "q2").result.count,
        "victim must be cut short"
    );
    assert!(faulted.decisions.iter().any(|d| matches!(
        &d.event,
        DecisionEvent::ScanEvicted { reason, .. } if reason.contains("permanent read fault")
    )));
}

/// The B+ tree agrees with a sorted-vector model for any entry set.
#[test]
fn btree_matches_model() {
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0xb7ee_0000 + case);
        let n_keys = rng.random_range(0..400usize);
        let keys: Vec<(i64, u64)> = (0..n_keys)
            .map(|_| (rng.random_range(-50i64..50), rng.random_range(0u64..1000)))
            .collect();
        let probes: Vec<(i64, i64)> = (0..rng.random_range(0..20usize))
            .map(|_| (rng.random_range(-60i64..60), rng.random_range(-60i64..60)))
            .collect();

        let mut store = FileStore::new(16);
        let mut tree = BTree::create(&mut store).unwrap();
        let mut model: Vec<Entry> = Vec::new();
        for &(k, p) in &keys {
            let e = Entry::new(k, p);
            tree.insert(&mut store, e).unwrap();
            let pos = model.partition_point(|m| *m <= e);
            model.insert(pos, e);
        }
        assert_eq!(tree.all(&store).unwrap(), model, "case {case}");
        for &(a, b) in &probes {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let expect: Vec<Entry> = model
                .iter()
                .filter(|e| lo <= e.key && e.key <= hi)
                .copied()
                .collect();
            assert_eq!(tree.range(&store, lo, hi).unwrap(), expect, "case {case}");
        }
    }
}

/// The buffer pool never exceeds capacity, and logical reads are counted
/// exactly once per fix.
#[test]
fn pool_respects_capacity_and_priorities() {
    use scanshare_repro::storage::{FileId, PageId};
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x9001_0000 + case);
        let cap = rng.random_range(2..16usize);
        let n_ops = rng.random_range(1..500usize);
        let mut pool = BufferPool::new(PoolConfig::new(cap, ReplacementPolicy::PriorityLru));
        let buf = scanshare_repro::storage::page::zeroed_page().freeze();
        for _ in 0..n_ops {
            let id = PageId::new(FileId(0), rng.random_range(0u32..64));
            let priority = match rng.random_range(0u8..3) {
                0 => PagePriority::Low,
                1 => PagePriority::Normal,
                _ => PagePriority::High,
            };
            match pool.fix(id) {
                FixOutcome::Hit(_) => {}
                FixOutcome::Miss => pool.complete_miss(id, buf.clone()).unwrap(),
            }
            pool.release(id, priority).unwrap();
            assert!(pool.len() <= cap, "case {case}");
        }
        assert_eq!(pool.stats().logical_reads, n_ops as u64, "case {case}");
    }
}

/// Grouping never exceeds the pool budget and leaders are ahead of
/// trailers.
#[test]
fn grouping_invariants() {
    use scanshare_repro::core::anchor::AnchorId;
    use scanshare_repro::core::grouping::find_leaders_trailers;
    use scanshare_repro::core::ScanId;
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x6e0_0000 + case);
        let n = rng.random_range(1..24usize);
        let pool = rng.random_range(1u64..5_000);
        let scans: Vec<(ScanId, AnchorId, i64)> = (0..n)
            .map(|i| {
                (
                    ScanId(i as u64),
                    AnchorId((i % 3) as u64),
                    rng.random_range(0i64..10_000),
                )
            })
            .collect();
        let groups = find_leaders_trailers(&scans, pool);
        assert!(groups.total_extent() < pool.max(1), "case {case}");
        let mut seen = 0;
        for g in &groups.groups {
            seen += g.members.len();
            // Members sorted by offset: leader last, trailer first.
            let offs: Vec<i64> = g
                .members
                .iter()
                .map(|m| scans.iter().find(|s| s.0 == *m).unwrap().2)
                .collect();
            for w in offs.windows(2) {
                assert!(w[0] <= w[1], "case {case}");
            }
            assert_eq!(
                g.extent,
                (offs[offs.len() - 1] - offs[0]) as u64,
                "case {case}"
            );
        }
        assert_eq!(seen, scans.len(), "case {case}");
    }
}

/// Placement always returns a start inside the feasible range and never
/// estimates more reads than the no-sharing baseline.
#[test]
fn placement_bounds() {
    use scanshare_repro::core::placement::{best_start_practical, calculate_reads, Trace};
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x0009_1ace_0000 + case);
        let n = rng.random_range(1..8usize);
        let traces: Vec<Trace> = (0..n)
            .map(|_| {
                let p = rng.random_range(0.0f64..5_000.0);
                let v = rng.random_range(10.0f64..500.0);
                let len = rng.random_range(1.0f64..5_000.0);
                Trace::new(p, v, p + len)
            })
            .collect();
        let cand_speed = rng.random_range(10.0f64..500.0);
        let cand_pages = rng.random_range(100.0f64..5_000.0);
        let pool = rng.random_range(16.0f64..1_000.0);
        if let Some(c) = best_start_practical(&traces, cand_speed, cand_pages, pool) {
            assert!(
                traces.iter().any(|t| (t.pos0 - c.start).abs() < 1e-9),
                "case {case}"
            );
            assert!(
                c.estimate.reads <= c.estimate.baseline + 1e-6,
                "case {case}"
            );
            assert!(c.estimate.savings_per_page() > 0.0, "case {case}");
        }
        // calculate_reads is always within [0, baseline].
        let est = calculate_reads(&traces, Trace::new(0.0, cand_speed, cand_pages), pool);
        assert!(est.reads >= 0.0, "case {case}");
        assert!(est.reads <= est.baseline + 1e-6, "case {case}");
    }
}
