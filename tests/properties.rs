//! Randomized-but-deterministic property tests over the public API:
//! workloads and data structures generated from a seeded in-repo PRNG
//! must uphold the system's core invariants. (Formerly proptest-based;
//! rewritten against `scanshare-prng` so the suite is hermetic.)

use scanshare_prng::Rng;
use scanshare_repro::core::SharingConfig;
use scanshare_repro::engine::{
    run_workload, Access, AggSpec, CpuClass, Database, EngineConfig, Pred, Query, ScanSpec,
    SharingMode, Stream, WorkloadSpec,
};
use scanshare_repro::relstore::{BTree, ColType, Column, Entry, Schema, Value};
use scanshare_repro::storage::{
    BufferPool, FileStore, FixOutcome, PagePriority, PoolConfig, ReplacementPolicy, SimDuration,
};

/// Build a small MDC database with `cells` clustering cells.
fn small_db(cells: i64, rows: u64) -> Database {
    let mut db = Database::new(8);
    let schema = Schema::new(vec![
        Column::new("cell", ColType::Int32),
        Column::new("v", ColType::Float64),
    ]);
    db.create_mdc_table(
        "t",
        schema,
        4,
        (0..rows).map(move |i| {
            let c = (i as i64 * 7919) % cells;
            (c, vec![Value::I32(c as i32), Value::F64(1.0)])
        }),
    )
    .unwrap();
    db
}

fn index_query(name: &str, lo: i64, hi: i64) -> Query {
    Query::single(
        name,
        ScanSpec {
            table: "t".into(),
            access: Access::IndexRange { lo, hi },
            pred: Pred::True,
            agg: AggSpec::sums(vec![1]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        },
    )
}

/// For any mix of overlapping index scans, scan-sharing computes the
/// same answers as the baseline and never does more physical I/O.
#[test]
fn sharing_is_answer_preserving_and_io_monotone() {
    let db = small_db(12, 30_000);
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x5ca_0000 + case);
        let n = rng.random_range(2..6usize);
        let streams: Vec<Stream> = (0..n)
            .map(|i| {
                let (a, b) = (rng.random_range(0i64..12), rng.random_range(0i64..12));
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Stream {
                    queries: vec![index_query(&format!("q{i}"), lo, hi)],
                    start_offset: SimDuration::from_millis(rng.random_range(0u64..400)),
                }
            })
            .collect();
        let spec = |mode| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode,
            faults: Default::default(),
            slo: Default::default(),
        };
        let base = run_workload(&db, &spec(SharingMode::Base)).unwrap();
        let ss = run_workload(&db, &spec(SharingMode::ScanSharing(SharingConfig::new(0)))).unwrap();
        // Answers identical.
        let mut qb = base.queries.clone();
        let mut qs = ss.queries.clone();
        qb.sort_by_key(|q| q.name.clone());
        qs.sort_by_key(|q| q.name.clone());
        for (b, s) in qb.iter().zip(&qs) {
            assert_eq!(b.result.count, s.result.count, "case {case}");
        }
        // Sharing reads at most what base reads, plus a small margin for
        // wrap-phase effects on tiny scans.
        assert!(
            ss.disk.pages_read as f64 <= base.disk.pages_read as f64 * 1.05 + 64.0,
            "case {case}: ss {} base {}",
            ss.disk.pages_read,
            base.disk.pages_read
        );
    }
}

/// For any seeded transient-fault plan, retries mask every injected
/// error (answers match a clean run), and repeat runs of the identical
/// (seed, plan) pair are byte-identical end to end — fault draws,
/// retry/backoff accounting, and the decision log included.
#[test]
fn fault_injection_is_deterministic_and_answer_preserving() {
    use scanshare_repro::engine::FaultsConfig;
    use scanshare_repro::storage::{FaultKind, FaultPlan, FaultRule};
    let db = small_db(12, 30_000);
    for case in 0..6u64 {
        let mut rng = Rng::seed_from_u64(0x0fa0_1700 + case);
        let n = rng.random_range(2..5usize);
        let streams: Vec<Stream> = (0..n)
            .map(|i| {
                let (a, b) = (rng.random_range(0i64..12), rng.random_range(0i64..12));
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Stream {
                    queries: vec![index_query(&format!("q{i}"), lo, hi)],
                    start_offset: SimDuration::from_millis(rng.random_range(0u64..400)),
                }
            })
            .collect();
        let plan = FaultPlan {
            seed: rng.random_range(0u64..1 << 32),
            rules: vec![FaultRule {
                device: None,
                pages: None,
                from_us: 0,
                until_us: None,
                fault: FaultKind::TransientError {
                    probability: rng.random_range(0.0f64..0.04),
                },
            }],
        };
        let spec = |faults| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode: SharingMode::ScanSharing(SharingConfig::new(0)),
            faults,
            slo: Default::default(),
        };
        let clean = run_workload(&db, &spec(FaultsConfig::default())).unwrap();
        let cfg = FaultsConfig {
            plan,
            ..FaultsConfig::default()
        };
        let a = run_workload(&db, &spec(cfg.clone())).unwrap();
        let b = run_workload(&db, &spec(cfg)).unwrap();

        // Same seed, same plan: bit-for-bit the same report, decisions
        // and fault counters included.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "case {case}: repeat faulted runs diverged"
        );
        // Transient faults never change answers — every error retried.
        assert_eq!(a.faults.scans_aborted, 0, "case {case}");
        assert_eq!(
            a.faults.retries, a.faults.transient_errors,
            "case {case}: every transient error costs exactly one retry"
        );
        let mut qc = clean.queries.clone();
        let mut qf = a.queries.clone();
        qc.sort_by_key(|q| q.name.clone());
        qf.sort_by_key(|q| q.name.clone());
        assert_eq!(qc.len(), qf.len(), "case {case}");
        for (c, f) in qc.iter().zip(&qf) {
            assert_eq!(
                c.result, f.result,
                "case {case}: answers must survive faults"
            );
        }
    }
}

/// The B+ tree agrees with a sorted-vector model for any entry set.
#[test]
fn btree_matches_model() {
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0xb7ee_0000 + case);
        let n_keys = rng.random_range(0..400usize);
        let keys: Vec<(i64, u64)> = (0..n_keys)
            .map(|_| (rng.random_range(-50i64..50), rng.random_range(0u64..1000)))
            .collect();
        let probes: Vec<(i64, i64)> = (0..rng.random_range(0..20usize))
            .map(|_| (rng.random_range(-60i64..60), rng.random_range(-60i64..60)))
            .collect();

        let mut store = FileStore::new(16);
        let mut tree = BTree::create(&mut store).unwrap();
        let mut model: Vec<Entry> = Vec::new();
        for &(k, p) in &keys {
            let e = Entry::new(k, p);
            tree.insert(&mut store, e).unwrap();
            let pos = model.partition_point(|m| *m <= e);
            model.insert(pos, e);
        }
        assert_eq!(tree.all(&store).unwrap(), model, "case {case}");
        for &(a, b) in &probes {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let expect: Vec<Entry> = model
                .iter()
                .filter(|e| lo <= e.key && e.key <= hi)
                .copied()
                .collect();
            assert_eq!(tree.range(&store, lo, hi).unwrap(), expect, "case {case}");
        }
    }
}

/// The buffer pool never exceeds capacity, and logical reads are counted
/// exactly once per fix.
#[test]
fn pool_respects_capacity_and_priorities() {
    use scanshare_repro::storage::{FileId, PageId};
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x9001_0000 + case);
        let cap = rng.random_range(2..16usize);
        let n_ops = rng.random_range(1..500usize);
        let mut pool = BufferPool::new(PoolConfig::new(cap, ReplacementPolicy::PriorityLru));
        let buf = scanshare_repro::storage::page::zeroed_page().freeze();
        for _ in 0..n_ops {
            let id = PageId::new(FileId(0), rng.random_range(0u32..64));
            let priority = match rng.random_range(0u8..3) {
                0 => PagePriority::Low,
                1 => PagePriority::Normal,
                _ => PagePriority::High,
            };
            match pool.fix(id) {
                FixOutcome::Hit(_) => {}
                FixOutcome::Miss => pool.complete_miss(id, buf.clone()).unwrap(),
            }
            pool.release(id, priority).unwrap();
            assert!(pool.len() <= cap, "case {case}");
        }
        assert_eq!(pool.stats().logical_reads, n_ops as u64, "case {case}");
    }
}

/// Grouping never exceeds the pool budget and leaders are ahead of
/// trailers.
#[test]
fn grouping_invariants() {
    use scanshare_repro::core::anchor::AnchorId;
    use scanshare_repro::core::grouping::find_leaders_trailers;
    use scanshare_repro::core::ScanId;
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x6e0_0000 + case);
        let n = rng.random_range(1..24usize);
        let pool = rng.random_range(1u64..5_000);
        let scans: Vec<(ScanId, AnchorId, i64)> = (0..n)
            .map(|i| {
                (
                    ScanId(i as u64),
                    AnchorId((i % 3) as u64),
                    rng.random_range(0i64..10_000),
                )
            })
            .collect();
        let groups = find_leaders_trailers(&scans, pool);
        assert!(groups.total_extent() < pool.max(1), "case {case}");
        let mut seen = 0;
        for g in &groups.groups {
            seen += g.members.len();
            // Members sorted by offset: leader last, trailer first.
            let offs: Vec<i64> = g
                .members
                .iter()
                .map(|m| scans.iter().find(|s| s.0 == *m).unwrap().2)
                .collect();
            for w in offs.windows(2) {
                assert!(w[0] <= w[1], "case {case}");
            }
            assert_eq!(
                g.extent,
                (offs[offs.len() - 1] - offs[0]) as u64,
                "case {case}"
            );
        }
        assert_eq!(seen, scans.len(), "case {case}");
    }
}

/// Placement always returns a start inside the feasible range and never
/// estimates more reads than the no-sharing baseline.
#[test]
fn placement_bounds() {
    use scanshare_repro::core::placement::{best_start_practical, calculate_reads, Trace};
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x0009_1ace_0000 + case);
        let n = rng.random_range(1..8usize);
        let traces: Vec<Trace> = (0..n)
            .map(|_| {
                let p = rng.random_range(0.0f64..5_000.0);
                let v = rng.random_range(10.0f64..500.0);
                let len = rng.random_range(1.0f64..5_000.0);
                Trace::new(p, v, p + len)
            })
            .collect();
        let cand_speed = rng.random_range(10.0f64..500.0);
        let cand_pages = rng.random_range(100.0f64..5_000.0);
        let pool = rng.random_range(16.0f64..1_000.0);
        if let Some(c) = best_start_practical(&traces, cand_speed, cand_pages, pool) {
            assert!(
                traces.iter().any(|t| (t.pos0 - c.start).abs() < 1e-9),
                "case {case}"
            );
            assert!(
                c.estimate.reads <= c.estimate.baseline + 1e-6,
                "case {case}"
            );
            assert!(c.estimate.savings_per_page() > 0.0, "case {case}");
        }
        // calculate_reads is always within [0, baseline].
        let est = calculate_reads(&traces, Trace::new(0.0, cand_speed, cand_pages), pool);
        assert!(est.reads >= 0.0, "case {case}");
        assert!(est.reads <= est.baseline + 1e-6, "case {case}");
    }
}
