//! The papers' worked examples, verified end to end through the public
//! API. Each test cites the figure it reproduces.

use scanshare_repro::core::anchor::{distance, partial_cmp, AnchorId};
use scanshare_repro::core::grouping::find_leaders_trailers;
use scanshare_repro::core::placement::{calculate_reads, reads_for_ranges, Trace};
use scanshare_repro::core::{
    Location, ObjectId, PagePriority, Role, ScanDesc, ScanId, ScanKind, ScanSharingManager,
    SharingConfig,
};
use scanshare_repro::storage::{SimDuration, SimTime};

/// Figure 5: scans A and B share an anchor; offsets 2 and 7 make the
/// distance 5, even though the RID difference suggests 3.
#[test]
fn figure5_distance_through_anchors() {
    let anchor = AnchorId(1);
    assert_eq!(distance((anchor, 2), (anchor, 7)), Some(5));
    assert_eq!(
        partial_cmp((anchor, 2), (anchor, 7)),
        Some(std::cmp::Ordering::Less)
    );
    // Across anchors nothing is known.
    assert_eq!(distance((anchor, 2), (AnchorId(2), 7)), None);
}

/// Figures 8/9/10: the sharing-potential arithmetic. 195 reads when the
/// new scan starts at the front (19% below the 240-read worst case),
/// 180 when it starts near scan A (25% below) — so placement prefers A.
#[test]
fn figures8_9_sharing_potential() {
    assert_eq!(
        reads_for_ranges(&[(15, 3), (30, 1), (15, 2), (20, 3), (10, 3)]),
        195
    );
    assert_eq!(reads_for_ranges(&[(15, 2), (20, 2), (40, 2), (15, 2)]), 180);
    assert_eq!(
        reads_for_ranges(&[(15, 3), (30, 2), (30, 3), (5, 3), (10, 3)]),
        240
    );
}

/// Figure 11's monotonicity claim, checked numerically: between
/// "interesting locations" the sharing potential changes monotonically,
/// so the candidate start that touches/centres an envelope is where the
/// optimum lives. We verify the coarser consequence: the estimator is
/// unimodal-ish around a single ongoing scan — starting exactly at the
/// scan's position is at least as good as starting anywhere farther.
#[test]
fn figure11_envelope_center_is_best_for_one_scan() {
    let member = Trace::new(1000.0, 100.0, 5000.0);
    let pool = 200.0;
    let at_center = calculate_reads(&[member], Trace::new(1000.0, 100.0, 4000.0), pool);
    for delta in [300.0, 600.0, 900.0] {
        let off = calculate_reads(
            &[member],
            Trace::new(1000.0 + delta, 100.0, 4000.0 + delta),
            pool,
        );
        assert!(
            at_center.reads <= off.reads + 1e-6,
            "center {} vs +{delta} {}",
            at_center.reads,
            off.reads
        );
    }
}

/// Figure 14 / §7.2's walk-through: offsets 10/50/60/75 and 20/40 with a
/// 50-page pool group into (A), (B,C,D), (E,F).
#[test]
fn figure14_grouping_walkthrough() {
    let g1 = AnchorId(1);
    let g2 = AnchorId(2);
    let scans = vec![
        (ScanId(0), g1, 10),
        (ScanId(1), g1, 50),
        (ScanId(2), g1, 60),
        (ScanId(3), g1, 75),
        (ScanId(4), g2, 20),
        (ScanId(5), g2, 40),
    ];
    let groups = find_leaders_trailers(&scans, 50);
    assert_eq!(groups.total_extent(), 45);
    assert_eq!(groups.role(ScanId(0)), Some(Role::Singleton));
    assert_eq!(groups.role(ScanId(1)), Some(Role::Trailer));
    assert_eq!(groups.role(ScanId(3)), Some(Role::Leader));
    assert_eq!(groups.role(ScanId(4)), Some(Role::Trailer));
    assert_eq!(groups.role(ScanId(5)), Some(Role::Leader));
}

/// §7.2's fairness rule driven through the manager: a scan throttled for
/// 80% of its estimated time is never throttled again.
#[test]
fn fairness_cap_through_the_manager() {
    let mgr = ScanSharingManager::new(SharingConfig::new(10_000));
    let desc = ScanDesc {
        kind: ScanKind::Table,
        object: ObjectId(0),
        start_key: 0,
        end_key: 99_999,
        est_pages: 100_000,
        est_time: SimDuration::from_secs(2),
        priority: Default::default(),
    };
    let (fast, _) = mgr.start_scan(desc.clone(), SimTime::ZERO);
    let t0 = SimTime::from_millis(100);
    mgr.update_location(fast, t0, Location::new(1000, 1000), 1000);
    let (slow, d) = mgr.start_scan(desc, t0);
    assert!(!d.is_from_start());

    // Drive the fast scan far ahead while the slow one crawls; the
    // budget is 80% of 2s = 1.6s of total granted wait.
    let mut granted = SimDuration::ZERO;
    let mut t = t0;
    for step in 0..2000u64 {
        t += SimDuration::from_millis(10);
        let pos = 1000 + (step + 1) * 500;
        let out = mgr.update_location(fast, t, Location::new(pos as i64, pos), 500);
        granted += out.wait;
        if step % 5 == 0 {
            let spos = 1000 + step;
            mgr.update_location(slow, t, Location::new(spos as i64, spos), 1);
        }
    }
    let cap = SimDuration::from_micros((0.8 * 2e6) as u64);
    assert!(granted <= cap, "granted {granted} exceeds cap {cap}");
    assert!(
        granted >= SimDuration::from_micros((0.79 * 2e6) as u64),
        "budget should be nearly exhausted, got {granted}"
    );
}

/// §7.3: once grouped, the leader releases pages High and the trailer
/// Low, observable through `ISM.pr()`.
#[test]
fn leader_trailer_priorities_through_pr() {
    let mgr = ScanSharingManager::new(SharingConfig::new(10_000));
    let desc = ScanDesc {
        kind: ScanKind::Index,
        object: ObjectId(3),
        start_key: 0,
        end_key: 1000,
        est_pages: 10_000,
        est_time: SimDuration::from_secs(10),
        priority: Default::default(),
    };
    let (a, _) = mgr.start_scan(desc.clone(), SimTime::ZERO);
    let t = SimTime::from_millis(500);
    mgr.update_location(a, t, Location::new(50, 77), 512);
    let (b, d) = mgr.start_scan(desc, t);
    assert_eq!(d.join_location(), Some(Location::new(50, 77)));
    let t2 = SimTime::from_millis(600);
    mgr.update_location(a, t2, Location::new(52, 90), 64);
    mgr.update_location(b, t2, Location::new(51, 80), 16);
    assert_eq!(mgr.page_priority(a), PagePriority::High, "leader");
    assert_eq!(mgr.page_priority(b), PagePriority::Low, "trailer");
}

/// §6.3's special case (Figure 13, line 2): with no ongoing scans, a new
/// scan is placed at the most recently finished scan's location to pick
/// up its leftover buffer pages.
#[test]
fn last_finished_scan_is_joined() {
    let mgr = ScanSharingManager::new(SharingConfig::new(1_000));
    let desc = ScanDesc {
        kind: ScanKind::Index,
        object: ObjectId(9),
        start_key: 0,
        end_key: 100,
        est_pages: 1000,
        est_time: SimDuration::from_secs(1),
        priority: Default::default(),
    };
    let (a, _) = mgr.start_scan(desc.clone(), SimTime::ZERO);
    mgr.update_location(a, SimTime::from_millis(900), Location::new(95, 950), 950);
    mgr.end_scan(a, SimTime::from_secs(1));
    let (_, d) = mgr.start_scan(desc, SimTime::from_secs(1));
    assert_eq!(d.join_location(), Some(Location::new(95, 950)));
}
