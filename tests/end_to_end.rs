//! Cross-crate integration tests: the full stack (generator → engine →
//! sharing manager → disk model) exercised through the public API.

use scanshare_repro::core::SharingConfig;
use scanshare_repro::engine::{run_workload, QueryRecord, RunReport, SharingMode};
use scanshare_repro::storage::SimDuration;
use scanshare_repro::tpch::{
    generate, q1, q6, staggered_workload, throughput_workload, TpchConfig,
};

fn ss() -> SharingMode {
    SharingMode::ScanSharing(SharingConfig::new(0))
}

fn db_and_cfg() -> (scanshare_repro::engine::Database, TpchConfig) {
    let cfg = TpchConfig {
        scale: 0.1,
        months: 36,
        block_pages: 8,
        seed: 99,
    };
    (generate(&cfg), cfg)
}

fn sorted_queries(r: &RunReport) -> Vec<QueryRecord> {
    let mut q = r.queries.clone();
    q.sort_by_key(|q| (q.stream, q.name.clone()));
    q
}

#[test]
fn throughput_run_shares_and_preserves_answers() {
    let (db, cfg) = db_and_cfg();
    let months = cfg.months as i64;
    let base = run_workload(
        &db,
        &throughput_workload(&db, 3, months, 5, SharingMode::Base),
    )
    .expect("base");
    let shared = run_workload(&db, &throughput_workload(&db, 3, months, 5, ss())).expect("shared");

    // 3 streams x 22 queries.
    assert_eq!(base.queries.len(), 66);
    assert_eq!(shared.queries.len(), 66);

    // Identical answers, query by query.
    for (b, s) in sorted_queries(&base).iter().zip(&sorted_queries(&shared)) {
        assert_eq!(b.name, s.name);
        assert_eq!(b.result.count, s.result.count, "count of {}", b.name);
        assert_eq!(b.result.sums.len(), s.result.sums.len());
        for (x, y) in b.result.sums.iter().zip(&s.result.sums) {
            assert!(
                (x - y).abs() < 1e-6 * x.abs().max(1.0),
                "sums of {}",
                b.name
            );
        }
    }

    // The headline claims, directionally (Table 1).
    assert!(
        shared.makespan < base.makespan,
        "end-to-end must improve: {} vs {}",
        shared.makespan,
        base.makespan
    );
    assert!(shared.disk.pages_read < base.disk.pages_read);
    assert!(shared.disk.seeks < base.disk.seeks);
    // The pool sees better locality.
    assert!(shared.pool.hit_ratio() > base.pool.hit_ratio());
}

#[test]
fn staggered_q6_gains_like_figure15() {
    let (db, cfg) = db_and_cfg();
    let q = q6(cfg.months as i64, 2);
    let stagger = SimDuration::from_millis(30);
    let base = run_workload(
        &db,
        &staggered_workload(&db, &q, 3, stagger, SharingMode::Base),
    )
    .unwrap();
    let shared = run_workload(&db, &staggered_workload(&db, &q, 3, stagger, ss())).unwrap();
    // Every run improves.
    for i in 0..3 {
        assert!(
            shared.stream_elapsed[i] <= base.stream_elapsed[i],
            "run {i} regressed: {} vs {}",
            shared.stream_elapsed[i],
            base.stream_elapsed[i]
        );
    }
    // I/O wait share drops (Figure 15's left chart).
    let (_, _, _, wait_base) = base.breakdown.percentages();
    let (_, _, _, wait_shared) = shared.breakdown.percentages();
    assert!(
        wait_shared < wait_base,
        "iowait should drop: {wait_base:.1}% -> {wait_shared:.1}%"
    );
}

#[test]
fn staggered_q1_still_improves_like_figure16() {
    let (db, _) = db_and_cfg();
    let q = q1();
    let stagger = SimDuration::from_millis(100);
    let base = run_workload(
        &db,
        &staggered_workload(&db, &q, 3, stagger, SharingMode::Base),
    )
    .unwrap();
    let shared = run_workload(&db, &staggered_workload(&db, &q, 3, stagger, ss())).unwrap();
    assert!(shared.makespan <= base.makespan);
    // System time drops with fewer physical read requests.
    assert!(shared.breakdown.system <= base.breakdown.system);
}

#[test]
fn no_query_pays_for_sharing_like_figure20() {
    let (db, cfg) = db_and_cfg();
    let months = cfg.months as i64;
    let base = run_workload(
        &db,
        &throughput_workload(&db, 3, months, 5, SharingMode::Base),
    )
    .expect("base");
    let shared = run_workload(&db, &throughput_workload(&db, 3, months, 5, ss())).expect("shared");
    // Paper: "no query shows a negative effect". The per-query bound has
    // to leave room for draw-dependent scheduling noise (the worst query
    // lands anywhere in 1.07x-1.15x across workload seeds for this
    // fixture) while still catching a broken fairness cap, which pushes
    // individual queries far beyond 1.2x.
    for name in shared.query_names() {
        let b = base.avg_query_time(&name).unwrap().as_secs_f64();
        let s = shared.avg_query_time(&name).unwrap().as_secs_f64();
        assert!(
            s <= b * 1.20 + 0.01,
            "query {name} regressed: base {b:.3}s -> shared {s:.3}s"
        );
    }
}

#[test]
fn per_stream_gains_are_balanced_like_figure19() {
    let (db, cfg) = db_and_cfg();
    let months = cfg.months as i64;
    let base = run_workload(
        &db,
        &throughput_workload(&db, 3, months, 5, SharingMode::Base),
    )
    .expect("base");
    let shared = run_workload(&db, &throughput_workload(&db, 3, months, 5, ss())).expect("shared");
    let gains: Vec<f64> = base
        .stream_elapsed
        .iter()
        .zip(&shared.stream_elapsed)
        .map(|(b, s)| 1.0 - s.as_secs_f64() / b.as_secs_f64())
        .collect();
    // Every stream gains, none regresses.
    for (i, g) in gains.iter().enumerate() {
        assert!(*g > -0.02, "stream {i} regressed by {:.1}%", -g * 100.0);
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let (db, cfg) = db_and_cfg();
    let months = cfg.months as i64;
    let r1 = run_workload(&db, &throughput_workload(&db, 2, months, 7, ss())).unwrap();
    let r2 = run_workload(&db, &throughput_workload(&db, 2, months, 7, ss())).unwrap();
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.disk.pages_read, r2.disk.pages_read);
    assert_eq!(r1.disk.seeks, r2.disk.seeks);
    assert_eq!(r1.sharing.scans_joined, r2.sharing.scans_joined);
    assert_eq!(r1.read_series.buckets(), r2.read_series.buckets());
}

#[test]
fn single_stream_overhead_is_negligible() {
    let (db, cfg) = db_and_cfg();
    let months = cfg.months as i64;
    let base = run_workload(
        &db,
        &throughput_workload(&db, 1, months, 5, SharingMode::Base),
    )
    .expect("base");
    let shared = run_workload(&db, &throughput_workload(&db, 1, months, 5, ss())).expect("shared");
    // Paper: overhead well below 1%. (Sharing may even help a single
    // stream through last-finished-scan placement.)
    let ratio = shared.makespan.as_secs_f64() / base.makespan.as_secs_f64();
    assert!(ratio < 1.01, "single-stream overhead too high: {ratio:.4}");
}

#[test]
fn disabling_mechanisms_degrades_gracefully() {
    let (db, cfg) = db_and_cfg();
    let months = cfg.months as i64;
    let base = run_workload(
        &db,
        &throughput_workload(&db, 3, months, 5, SharingMode::Base),
    )
    .expect("base");
    let full = run_workload(&db, &throughput_workload(&db, 3, months, 5, ss())).expect("full");
    let placement_only = run_workload(
        &db,
        &throughput_workload(
            &db,
            3,
            months,
            5,
            SharingMode::ScanSharing(SharingConfig {
                enable_throttling: false,
                enable_priorities: false,
                ..SharingConfig::new(0)
            }),
        ),
    )
    .expect("placement only");
    // Placement alone already helps; the full mechanism set stays in the
    // same ballpark on reads (throttling/priorities trade a few reads for
    // group cohesion) and both clearly beat the baseline.
    assert!(placement_only.disk.pages_read < base.disk.pages_read);
    assert!(full.disk.pages_read < base.disk.pages_read);
    assert!(
        full.disk.pages_read as f64 <= placement_only.disk.pages_read as f64 * 1.10,
        "full {} vs placement-only {}",
        full.disk.pages_read,
        placement_only.disk.pages_read
    );
}
