//! End-to-end span profiling and SLO evaluation: randomized span trees
//! export valid Chrome trace-event JSON, `run --profile-out` produces a
//! Perfetto-loadable artifact plus an embedded summary whose wall-clock
//! phases account for the whole recording, and declarative SLO rules
//! turn into report verdicts and process exit codes.

use scanshare_cli::{execute, Command, RunOutputs, RunSpec};
use scanshare_prng::Rng;
use scanshare_repro::core::obs::span::validate_chrome_trace;
use scanshare_repro::core::{SharingConfig, SpanProfiler, Track};
use scanshare_repro::engine::slo::{SloConfig, SloOp, SloRule};
use scanshare_repro::engine::SharingMode;
use scanshare_repro::storage::SimTime;
use scanshare_repro::tpch::{generate, throughput_workload, TpchConfig};

/// Property: any span forest recorded through the profiler API — random
/// nesting depth, random tracks, instants and attributes sprinkled in —
/// exports to Chrome trace-event JSON that passes structural validation
/// (B/E balance per track, stack-consistent nesting, non-decreasing
/// range timestamps).
#[test]
fn random_span_trees_round_trip_through_the_perfetto_exporter() {
    let names = ["engine.run", "scan.step", "extent.fetch", "cpu.process"];
    let tracks = [
        Track::Driver,
        Track::Manager,
        Track::Stream(0),
        Track::Stream(1),
        Track::Stream(7),
    ];
    for seed in 0..25u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let p = SpanProfiler::default();
        let mut open: Vec<scanshare_repro::core::SpanId> = Vec::new();
        // The simulated event loop only moves forward, so the generator
        // drives one global non-decreasing virtual clock.
        let mut vt = 0u64;
        for _ in 0..200 {
            vt += rng.bounded_u64(50);
            let now = SimTime::from_micros(vt);
            match rng.bounded_u64(5) {
                0 | 1 => {
                    let track = *rng.choose(&tracks).unwrap();
                    let name = *rng.choose(&names).unwrap();
                    let id = if open.is_empty() || rng.bounded_u64(2) == 0 {
                        p.begin(track, name, now)
                    } else {
                        p.begin_child(name, now)
                    };
                    open.push(id);
                }
                2 => {
                    if let Some(id) = open.pop() {
                        p.end(id, now);
                    }
                }
                3 => {
                    p.instant("io.miss", now);
                }
                _ => {
                    if let Some(id) = rng.choose(&open) {
                        p.attr(*id, "k", vt.to_string());
                    }
                }
            }
        }
        // Ending a span mid-stack closes its dangling children too, so
        // drain by always ending the *oldest* still-open span.
        if let Some(root) = open.first().copied() {
            vt += 1;
            p.end(root, SimTime::from_micros(vt));
        }
        let trace = p.perfetto();
        validate_chrome_trace(&trace).unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        // Begin/end balance: every range span contributes exactly one B
        // and one E; zero-virtual-width childless spans export as a
        // single "i" instant instead.
        let events = trace
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
                .count() as u64
        };
        let records = p.records();
        let parents: std::collections::HashSet<u64> =
            records.iter().filter_map(|r| r.parent).collect();
        let instants = records
            .iter()
            .filter(|r| r.is_instant() && !parents.contains(&r.id))
            .count() as u64;
        let ranges = records.len() as u64 - instants;
        assert_eq!(count("B"), ranges, "seed {seed}: B count");
        assert_eq!(count("E"), ranges, "seed {seed}: E count");
        assert_eq!(count("i"), instants, "seed {seed}: i count");

        // The folded summary balances too: every span is attributed to
        // a phase exactly once.
        let sum = p.summary();
        assert_eq!(
            sum.phases.iter().map(|ph| ph.count).sum::<u64>(),
            p.len() as u64,
            "seed {seed}: phase counts"
        );
    }
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("scanshare_prof_{tag}_{}.json", std::process::id()))
}

fn tiny_spec(slo: SloConfig) -> RunSpec {
    let tpch = TpchConfig::tiny();
    let db = generate(&tpch);
    let mut workload = throughput_workload(
        &db,
        2,
        tpch.months as i64,
        tpch.seed,
        SharingMode::ScanSharing(SharingConfig::new(0)),
    );
    workload.slo = slo;
    RunSpec { tpch, workload }
}

fn run_cmd(spec_path: &std::path::Path, outputs: RunOutputs) -> i32 {
    execute(Command::Run {
        spec: spec_path.to_string_lossy().into_owned(),
        db: None,
        faults: None,
        compare: false,
        policy: None,
        delivery: None,
        outputs,
    })
}

#[test]
fn profile_out_writes_a_valid_trace_and_a_wall_accounting_summary() {
    let spec = tiny_spec(SloConfig::default());
    let spec_path = temp_path("spec");
    let trace_path = temp_path("trace");
    let report_path = temp_path("report");
    std::fs::write(&spec_path, serde_json::to_string(&spec).unwrap()).unwrap();

    let code = run_cmd(
        &spec_path,
        RunOutputs {
            report: Some(report_path.to_string_lossy().into_owned()),
            trace: None,
            profile: Some(trace_path.to_string_lossy().into_owned()),
        },
    );
    assert_eq!(code, 0);

    // The exported artifact is structurally valid Chrome trace-event
    // JSON: Perfetto's legacy loader accepts exactly this shape.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let trace: serde_json::Value = serde_json::from_str(&text).unwrap();
    validate_chrome_trace(&trace).unwrap();
    // One named track per scan stream, plus the driver's.
    assert!(text.contains("\"stream 0\""), "missing stream 0 track");
    assert!(text.contains("\"stream 1\""), "missing stream 1 track");
    assert!(text.contains("\"driver\""), "missing driver track");

    // The saved report embeds the folded summary, and its wall-clock
    // phases account for (at least) 95% of the recorded wall time — by
    // construction they partition it exactly.
    let report = scanshare_cli::load_report(report_path.to_str().unwrap()).unwrap();
    let profile = report.profile.expect("embedded profile summary");
    assert!(profile.spans > 0 && profile.total_vt_us > 0);
    let wall = profile.wall.expect("wall section");
    let accounted: u64 = wall.phases.iter().map(|p| p.excl_ns).sum();
    assert!(
        accounted as f64 >= wall.total_ns as f64 * 0.95,
        "phases account for {accounted} of {} ns",
        wall.total_ns
    );

    // Profiling is opt-in: the same spec without --profile-out writes a
    // byte-identical report with no profile section.
    let plain_path = temp_path("plain");
    let code = run_cmd(
        &spec_path,
        RunOutputs {
            report: Some(plain_path.to_string_lossy().into_owned()),
            trace: None,
            profile: None,
        },
    );
    assert_eq!(code, 0);
    let plain = std::fs::read_to_string(&plain_path).unwrap();
    assert!(!plain.contains("\"profile\""));
    let profiled = std::fs::read_to_string(&report_path).unwrap();
    let strip = |s: &str| {
        let v: serde_json::Value = serde_json::from_str(s).unwrap();
        let mut m = serde_json::Map::new();
        for (k, val) in v.as_object().unwrap().iter() {
            if k != "profile" {
                m.insert(k, val.clone());
            }
        }
        serde_json::to_string(&serde_json::Value::Object(m)).unwrap()
    };
    assert_eq!(
        strip(&profiled),
        strip(&plain),
        "profile section must be additive"
    );

    for p in [&spec_path, &trace_path, &report_path, &plain_path] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn slo_rules_drive_the_exit_code() {
    let rule = |name: &str, metric: &str, op: SloOp, value: f64| SloRule {
        name: name.into(),
        metric: metric.into(),
        op,
        value,
    };
    // (rules, expected exit code)
    let cases = [
        (
            vec![rule("warm", "hit_ratio", SloOp::Ge, 0.01)],
            0,
            "generous hit-ratio floor holds",
        ),
        (
            vec![
                rule("warm", "hit_ratio", SloOp::Ge, 0.01),
                rule("impossible", "hit_ratio", SloOp::Ge, 2.0),
            ],
            4,
            "unreachable hit ratio breaches",
        ),
        (
            vec![rule("typo", "hit_ration", SloOp::Ge, 0.0)],
            4,
            "unknown metrics fail closed",
        ),
    ];
    for (rules, expected, why) in cases {
        let spec = tiny_spec(SloConfig { rules });
        let spec_path = temp_path("slo_spec");
        let report_path = temp_path("slo_report");
        std::fs::write(&spec_path, serde_json::to_string(&spec).unwrap()).unwrap();
        let code = run_cmd(
            &spec_path,
            RunOutputs {
                report: Some(report_path.to_string_lossy().into_owned()),
                trace: None,
                profile: None,
            },
        );
        assert_eq!(code, expected, "{why}");
        // Verdicts are persisted in the artifact and narrated by explain.
        let report = scanshare_cli::load_report(report_path.to_str().unwrap()).unwrap();
        assert_eq!(
            report.slo.iter().filter(|v| !v.passed).count() > 0,
            expected == 4
        );
        let text = scanshare_cli::explain::render_explain(&report, None).unwrap();
        assert!(text.contains("SLO verdicts"), "{why}: {text}");
        std::fs::remove_file(&spec_path).ok();
        std::fs::remove_file(&report_path).ok();
    }
}
