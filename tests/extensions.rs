//! End-to-end tests for the features this repo adds beyond the papers'
//! core mechanisms (each justified in DESIGN.md §5b).

use scanshare_repro::core::{PlacementStrategy, QueryPriority, SharingConfig};
use scanshare_repro::engine::{
    run_workload, run_workload_traced, Access, AggSpec, CpuClass, Database, EngineConfig, Pred,
    Query, ScanSpec, SharingMode, Stream, TraceEvent, Tracer, WorkloadSpec,
};
use scanshare_repro::relstore::{ColType, Column, Schema, Value};
use scanshare_repro::storage::{ReplacementPolicy, SimDuration};
use scanshare_repro::tpch::{generate, q6, staggered_workload, throughput_workload, TpchConfig};

fn small_cfg() -> TpchConfig {
    TpchConfig {
        scale: 0.1,
        months: 36,
        block_pages: 8,
        seed: 3,
    }
}

fn li_scan(lo: i64, hi: i64, cpu: CpuClass) -> ScanSpec {
    ScanSpec {
        table: "lineitem".into(),
        access: Access::IndexRange { lo, hi },
        pred: Pred::True,
        agg: AggSpec::sums(vec![2]),
        cpu,
        require_order: false,
        query_priority: Default::default(),
        repeat: 1,
    }
}

#[test]
fn ordered_scans_never_join() {
    let cfg = small_cfg();
    let db = generate(&cfg);
    let mut spec = li_scan(0, cfg.months as i64 - 1, CpuClass::io_bound());
    spec.require_order = true;
    let q = Query::single("ordered", spec);
    let streams: Vec<Stream> = (0..3)
        .map(|i| Stream {
            queries: vec![q.clone()],
            start_offset: SimDuration::from_millis(30 * i),
        })
        .collect();
    let w = WorkloadSpec {
        streams,
        pool_pages: 128,
        engine: EngineConfig::default(),
        mode: SharingMode::ScanSharing(SharingConfig::new(0)),
        faults: Default::default(),
        slo: Default::default(),
    };
    let r = run_workload(&db, &w).unwrap();
    // The manager never even saw the scans.
    assert_eq!(r.sharing.scans_started, 0);
    assert_eq!(r.sharing.scans_joined, 0);
}

#[test]
fn attach_baseline_trails_full_sharing_on_mixed_speeds() {
    let cfg = small_cfg();
    let db = generate(&cfg);
    let last = cfg.months as i64 - 1;
    let streams: Vec<Stream> = (0..4)
        .map(|i| {
            let cpu = if i % 2 == 0 {
                CpuClass::io_bound()
            } else {
                CpuClass::cpu_bound()
            };
            Stream {
                queries: vec![Query::single("mix", li_scan(last - 23, last, cpu))],
                start_offset: SimDuration::from_millis(30 * i),
            }
        })
        .collect();
    let mk = |mode| WorkloadSpec {
        streams: streams.clone(),
        pool_pages: 128,
        engine: EngineConfig::default(),
        mode,
        faults: Default::default(),
        slo: Default::default(),
    };
    let base = run_workload(&db, &mk(SharingMode::Base)).unwrap();
    let attach = run_workload(
        &db,
        &mk(SharingMode::ScanSharing(SharingConfig::attach_baseline(0))),
    )
    .unwrap();
    let full = run_workload(&db, &mk(SharingMode::ScanSharing(SharingConfig::new(0)))).unwrap();
    assert!(attach.makespan <= base.makespan);
    assert!(
        full.makespan <= attach.makespan,
        "full {} vs attach {}",
        full.makespan,
        attach.makespan
    );
}

#[test]
fn dynamic_fairness_throttles_high_priority_queries_less() {
    // Direct manager-level check through the engine: a high-priority
    // CPU-bound leader accumulates less injected wait than the same
    // query at normal priority.
    let cfg = small_cfg();
    let db = generate(&cfg);
    let last = cfg.months as i64 - 1;
    let run = |prio: QueryPriority| {
        let mut fast = li_scan(last - 23, last, CpuClass::io_bound());
        fast.query_priority = prio;
        let slow = li_scan(last - 23, last, CpuClass::cpu_bound());
        let streams = vec![
            Stream {
                queries: vec![Query::single("fast", fast)],
                start_offset: SimDuration::ZERO,
            },
            Stream {
                queries: vec![Query::single("slow", slow)],
                start_offset: SimDuration::from_millis(10),
            },
        ];
        let w = WorkloadSpec {
            streams,
            pool_pages: 128,
            engine: EngineConfig::default(),
            mode: SharingMode::ScanSharing(SharingConfig {
                dynamic_fairness: true,
                ..SharingConfig::new(0)
            }),
            faults: Default::default(),
            slo: Default::default(),
        };
        let r = run_workload(&db, &w).unwrap();
        r.queries
            .iter()
            .find(|q| q.name == "fast")
            .unwrap()
            .throttle_wait
    };
    let normal_wait = run(QueryPriority::Normal);
    let high_wait = run(QueryPriority::High);
    assert!(
        high_wait <= normal_wait,
        "high-priority wait {high_wait} should not exceed normal {normal_wait}"
    );
}

#[test]
fn lru2_is_a_valid_baseline_mode() {
    let cfg = small_cfg();
    let db = generate(&cfg);
    let months = cfg.months as i64;
    let lru = run_workload(
        &db,
        &throughput_workload(&db, 2, months, 3, SharingMode::Base),
    )
    .unwrap();
    let lru2 = run_workload(
        &db,
        &throughput_workload(
            &db,
            2,
            months,
            3,
            SharingMode::BasePolicy(ReplacementPolicy::Lru2),
        ),
    )
    .unwrap();
    // Same answers; similar I/O (no coordination either way).
    assert_eq!(lru.queries.len(), lru2.queries.len());
    let ratio = lru2.disk.pages_read as f64 / lru.disk.pages_read as f64;
    assert!((0.8..1.2).contains(&ratio), "LRU-2 ratio {ratio}");
}

#[test]
fn prefetch_keeps_answers_and_reduces_makespan() {
    let cfg = small_cfg();
    let db = generate(&cfg);
    let q = q6(cfg.months as i64, 4);
    let spec = staggered_workload(&db, &q, 2, SimDuration::from_millis(40), SharingMode::Base);
    let plain = run_workload(&db, &spec).unwrap();
    let pre = run_workload(
        &db,
        &WorkloadSpec {
            engine: EngineConfig {
                prefetch_extents: 1,
                ..EngineConfig::default()
            },
            ..spec.clone()
        },
    )
    .unwrap();
    assert_eq!(plain.queries[0].result.count, pre.queries[0].result.count);
    assert!(pre.makespan <= plain.makespan);
}

#[test]
fn disk_array_speeds_runs_up_without_changing_answers() {
    let cfg = small_cfg();
    let db = generate(&cfg);
    let months = cfg.months as i64;
    let one = run_workload(
        &db,
        &throughput_workload(&db, 3, months, 5, SharingMode::Base),
    )
    .unwrap();
    let spec4 = WorkloadSpec {
        engine: EngineConfig {
            n_disks: 4,
            ..EngineConfig::default()
        },
        ..throughput_workload(&db, 3, months, 5, SharingMode::Base)
    };
    let four = run_workload(&db, &spec4).unwrap();
    assert!(four.makespan < one.makespan);
    // Physical reads stay in the same ballpark (timing shifts reshuffle
    // pool hits slightly across interleavings).
    let ratio = four.disk.pages_read as f64 / one.disk.pages_read as f64;
    assert!((0.9..1.1).contains(&ratio), "read ratio {ratio}");
    let a: u64 = one.queries.iter().map(|q| q.result.count).sum();
    let b: u64 = four.queries.iter().map(|q| q.result.count).sum();
    assert_eq!(a, b);
}

#[test]
fn optimal_strategy_runs_end_to_end() {
    let cfg = small_cfg();
    let db = generate(&cfg);
    let months = cfg.months as i64;
    let r = run_workload(
        &db,
        &throughput_workload(
            &db,
            3,
            months,
            5,
            SharingMode::ScanSharing(SharingConfig {
                placement_strategy: PlacementStrategy::Optimal,
                ..SharingConfig::new(0)
            }),
        ),
    )
    .unwrap();
    let base = run_workload(
        &db,
        &throughput_workload(&db, 3, months, 5, SharingMode::Base),
    )
    .unwrap();
    assert!(r.makespan < base.makespan);
}

#[test]
fn rid_scans_share_end_to_end() {
    let mut db = Database::new(16);
    let schema = Schema::new(vec![
        Column::new("key", ColType::Int32),
        Column::new("v", ColType::Float64),
    ]);
    // Correlated-but-unclustered: key order with per-1024-row scrambling.
    db.create_heap_table_with_index(
        "events",
        schema,
        0,
        (0..100_000u64).map(|i| {
            let scrambled = (i / 1024) * 1024 + ((i * 37) % 1024);
            vec![Value::I32((scrambled / 100) as i32), Value::F64(1.0)]
        }),
    )
    .unwrap();
    let q = Query::single(
        "rid",
        ScanSpec {
            table: "events".into(),
            access: Access::RidRange { lo: 100, hi: 800 },
            pred: Pred::True,
            agg: AggSpec::sums(vec![1]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        },
    );
    let streams: Vec<Stream> = (0..3)
        .map(|i| Stream {
            queries: vec![q.clone()],
            start_offset: SimDuration::from_millis(15 * i),
        })
        .collect();
    let mk = |mode| WorkloadSpec {
        streams: streams.clone(),
        pool_pages: 64,
        engine: EngineConfig::default(),
        mode,
        faults: Default::default(),
        slo: Default::default(),
    };
    let base = run_workload(&db, &mk(SharingMode::Base)).unwrap();
    let ss = run_workload(&db, &mk(SharingMode::ScanSharing(SharingConfig::new(0)))).unwrap();
    assert_eq!(base.queries[0].result.count, ss.queries[0].result.count);
    assert!(
        ss.disk.pages_read < base.disk.pages_read,
        "ss {} base {}",
        ss.disk.pages_read,
        base.disk.pages_read
    );
}

#[test]
fn trace_records_the_whole_lifecycle() {
    let cfg = small_cfg();
    let db = generate(&cfg);
    let q = q6(cfg.months as i64, 4);
    let spec = staggered_workload(
        &db,
        &q,
        3,
        SimDuration::from_millis(20),
        SharingMode::ScanSharing(SharingConfig::new(0)),
    );
    let tracer = Tracer::new(4096);
    let report = run_workload_traced(&db, &spec, tracer.clone()).unwrap();
    let records = tracer.records();
    let starts = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::ScanStarted { .. }))
        .count();
    let finishes = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::ScanFinished { .. }))
        .count();
    assert_eq!(starts, 3);
    assert_eq!(finishes, 3);
    // Timestamps are monotone and within the run.
    assert!(records.windows(2).all(|w| w[0].at <= w[1].at));
    let end = records.last().unwrap().at;
    assert!(end.since(scanshare_repro::storage::SimTime::ZERO) <= report.makespan);
}
