//! README honesty check: the quickstart listing in README.md must be the
//! verbatim contents of `examples/quickstart.rs`, and the documented
//! policy-selection surface must exist.

#[test]
fn readme_quickstart_block_is_the_example_verbatim() {
    let readme = include_str!("../README.md");
    let example = include_str!("../examples/quickstart.rs");
    assert!(
        readme.contains(example.trim_end()),
        "README.md's quickstart listing has drifted from examples/quickstart.rs;\n\
         paste the file's current contents into the fenced block under\n\
         'The quickstart example, in full'"
    );
}

#[test]
fn readme_documents_policy_selection_and_the_glossary() {
    let readme = include_str!("../README.md");
    assert!(
        readme.contains("### Policy selection"),
        "README.md lost its policy-selection subsection"
    );
    for policy in ["`grouping`", "`attach`", "`elevator`"] {
        assert!(
            readme.contains(policy),
            "README.md policy-selection subsection no longer names {policy}"
        );
    }
    assert!(
        readme.contains("GLOSSARY.md"),
        "README.md no longer links GLOSSARY.md"
    );
}

#[test]
fn the_documented_policy_api_compiles_and_runs() {
    // The README tells library users to reach for SharingConfig::with_policy;
    // keep that name honest.
    use scanshare_repro::core::{SharingConfig, SharingPolicyKind};
    let cfg = SharingConfig::with_policy(128, SharingPolicyKind::Elevator);
    assert_eq!(cfg.policy, SharingPolicyKind::Elevator);
    assert_eq!(cfg.pool_pages, 128);
}
