//! End-to-end observability: a shared multi-stream run produces a
//! [`RunReport`] artifact whose metrics snapshot and embedded trace
//! survive a save/load round trip and replay through the CLI renderers —
//! the `run --report` → `trace`/`metrics` workflow without the binary.

use scanshare_cli::{load_artifact_trace, load_report, render};
use scanshare_engine::trace::{records_from_jsonl, records_to_jsonl};
use scanshare_repro::core::SharingConfig;
use scanshare_repro::engine::{run_workload_traced, CpuClass, SharingMode, Tracer};
use scanshare_repro::storage::SimDuration;
use scanshare_repro::tpch::{generate, q6, staggered_workload, TpchConfig};

#[test]
fn shared_run_artifact_replays_through_the_cli_layer() {
    let cfg = TpchConfig::tiny();
    let db = generate(&cfg);

    // Two overlapping streams over the same range at different speeds:
    // the fast leader gets grouped with — and throttled against — the
    // slow trailer, so the slowdown series has something to show.
    let fast = q6(cfg.months as i64, 1);
    let mut spec = staggered_workload(
        &db,
        &fast,
        2,
        SimDuration::from_millis(20),
        SharingMode::ScanSharing(SharingConfig::new(0)),
    );
    for scan in &mut spec.streams[1].queries[0].scans {
        scan.cpu = CpuClass::cpu_bound();
    }

    let tracer = Tracer::new(1 << 14);
    let report = run_workload_traced(&db, &spec, tracer).expect("traced run");

    // The acceptance triad: leader-trailer distance series, slowdown-cap
    // series, and a populated latency histogram.
    let distances: Vec<_> = report.metrics.series_with_prefix("group.").collect();
    assert!(
        distances.iter().any(|s| !s.points.is_empty()),
        "no per-group distance series"
    );
    let slowdowns: Vec<_> = report.metrics.series_with_prefix("scan.").collect();
    assert!(
        slowdowns.iter().any(|s| !s.points.is_empty()),
        "no per-scan slowdown series"
    );
    let hist = report
        .metrics
        .histogram("disk.read_us")
        .expect("read-latency histogram");
    assert!(hist.count > 0 && hist.p99 >= hist.p50);
    assert!(!report.trace.is_empty());

    // Save the artifact, reload it through the CLI loader, and check the
    // replay sees exactly what the run recorded.
    let path = std::env::temp_dir().join(format!("scanshare_obs_{}.json", std::process::id()));
    std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    let loaded = load_report(path.to_str().unwrap()).expect("reload artifact");
    assert_eq!(loaded.makespan, report.makespan);
    assert_eq!(loaded.metrics, report.metrics);
    assert_eq!(loaded.trace, report.trace);
    let replayed = load_artifact_trace(path.to_str().unwrap()).expect("replay trace");
    assert_eq!(replayed, report.trace);
    std::fs::remove_file(&path).ok();

    // The JSONL side channel is equivalent to the embedded trace.
    let jsonl = records_to_jsonl(&report.trace);
    assert_eq!(records_from_jsonl(&jsonl).unwrap(), report.trace);

    // Both renderers produce the tables the subcommands print.
    let trace_text = render::render_trace(&loaded.trace);
    assert!(trace_text.contains("scan lifecycles"));
    assert!(trace_text.contains("events"));
    let metrics_text = render::render_metrics(&loaded);
    assert!(metrics_text.contains("disk.read_us"));
    assert!(metrics_text.contains("group timelines"));
    assert!(metrics_text.contains("scan timelines"));
}
