#!/usr/bin/env bash
# Performance-regression gate: run the pinned deterministic smoke
# workload and diff its headline metrics against the committed baseline.
# The simulation runs on virtual time, so the numbers are bit-identical
# across machines — any drift past a metric's tolerance is a real change
# in engine behavior.
#
# Usage:
#   scripts/bench_gate.sh                    # gate against the committed baseline
#   scripts/bench_gate.sh path/to/other.json # gate against another baseline
#   scripts/bench_gate.sh --rebaseline       # intentionally re-pin the baseline
#
# Extra arguments after the baseline (or after --rebaseline) are
# forwarded to the gate binary, e.g. a fault plan for the robustness
# matrix, or replication/ledger flags for the trend machinery:
#   scripts/bench_gate.sh results/baseline_smoke.json \
#       --faults results/fault_plans/transient_1pct.json
#   scripts/bench_gate.sh results/baseline_smoke.json \
#       --reps 5 --history results/history.jsonl
#   scripts/bench_gate.sh --rebaseline --reps 5
#
# Exit codes: 0 = pass, 1 = regression, 2 = usage or I/O error.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-results/baseline_smoke.json}"

if [[ "${1:-}" == "--rebaseline" ]]; then
    shift
    exec cargo run --offline --release -q -p scanshare-bench --bin bench_gate -- \
        --write-baseline results/baseline_smoke.json "$@"
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_gate: baseline $BASELINE not found" >&2
    echo "  (re)create it with: scripts/bench_gate.sh --rebaseline" >&2
    exit 2
fi

shift || true
exec cargo run --offline --release -q -p scanshare-bench --bin bench_gate -- \
    --gate "$BASELINE" "$@"
