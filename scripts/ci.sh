#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Everything runs offline — the workspace resolves from vendored path
# dependencies only (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
# First-party crates only: the vendored shims in vendor/* are workspace
# members but intentionally undocumented. core and engine additionally
# carry #![warn(missing_docs)], so a public item without /// docs fails
# here.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -q \
    -p scanshare -p scanshare-engine -p scanshare-storage \
    -p scanshare-relstore -p scanshare-prng -p scanshare-tpch \
    -p scanshare-cli -p scanshare-bench -p scanshare-repro

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== perf-regression gate (smoke baseline) =="
scripts/bench_gate.sh results/baseline_smoke.json

echo "== default-report byte identity (committed artifact) =="
# A default (unprofiled, SLO-less) run's report must serialize to
# exactly the committed bytes: observability features are opt-in and
# may not perturb the deterministic report by a single byte.
report_out=$(mktemp)
cargo run --offline --release -q -p scanshare-bench --bin bench_gate -- \
    --gate results/baseline_smoke.json --report-out "$report_out" >/dev/null
if ! cmp -s "$report_out" results/policy_grouping_smoke_report.json; then
    echo "FAIL: default run report drifted from results/policy_grouping_smoke_report.json"
    rm -f "$report_out"
    exit 1
fi
rm -f "$report_out"
echo "report byte-identical to committed artifact"

echo "== run-history trend (informational, not gated) =="
# Exercise the observability-ledger path end-to-end: a replicated gate
# run appends to a throwaway ledger (3 reps, virtual metrics asserted
# bit-identical, wall medians bootstrap-summarized), then the history
# renderer validates the committed fixture ledger and runs the
# change-point check on it. Neither step gates: wall time is host noise
# (promote with --trend-gate / --strict once a deployment has a stable
# ledger).
trend_ledger=$(mktemp)
cargo run --offline --release -q -p scanshare-bench --bin bench_gate -- \
    --gate results/baseline_smoke.json --reps 3 --history "$trend_ledger" >/dev/null
entries=$(wc -l < "$trend_ledger")
if [ "$entries" -ne 1 ]; then
    echo "FAIL: replicated gate run appended $entries ledger entries (expected 1)"
    rm -f "$trend_ledger"
    exit 1
fi
rm -f "$trend_ledger"
cargo run --offline --release -q -p scanshare-cli --bin scanshare -- \
    history --ledger results/history.jsonl --check

echo "== push-delivery smoke gate (vs committed push baseline) =="
# Push-mode leg of the perf gate: the same pinned smoke workload run
# with --delivery push gates its 8 virtual metrics against the push
# mode's own committed baseline (one group driver changes the fix
# economics on purpose, so it can never share the pull baseline). Both
# modes append to a throwaway ledger; the push entry must carry its
# delivery tag and the history renderer must trend it as a separate
# push:<metric> series instead of splicing it into the pull series.
push_ledger=$(mktemp)
cargo run --offline --release -q -p scanshare-bench --bin bench_gate -- \
    --gate results/baseline_smoke.json --history "$push_ledger" >/dev/null
cargo run --offline --release -q -p scanshare-bench --bin bench_gate -- \
    --gate results/baseline_smoke_push.json --delivery push --history "$push_ledger"
if ! grep -q '"delivery":"push"' "$push_ledger"; then
    echo "FAIL: push-mode gate run did not tag its ledger entry"
    rm -f "$push_ledger"
    exit 1
fi
if [ "$(wc -l < "$push_ledger")" -ne 2 ]; then
    echo "FAIL: expected 2 ledger entries (pull + push), got $(wc -l < "$push_ledger")"
    rm -f "$push_ledger"
    exit 1
fi
push_trend=$(cargo run --offline --release -q -p scanshare-cli --bin scanshare -- \
    history --ledger "$push_ledger")
rm -f "$push_ledger"
if ! echo "$push_trend" | grep -q 'push:ss_makespan_us'; then
    echo "FAIL: history did not trend the push entry as its own series"
    exit 1
fi
echo "push smoke gated against its baseline; ledger trends both modes separately"

echo "== span-profiler smoke (informational, not gated) =="
# Record and render a fresh profile of the built-in smoke run: exercises
# the span subsystem end-to-end (begin/end nesting, Perfetto export
# validity is tested in the suite; this prints the per-phase table for
# the log).
cargo run --offline --release -q -p scanshare-cli --bin scanshare -- profile --smoke

echo "== fault-matrix smoke (empty plan must be a no-op) =="
# The fault-injection layer must be pay-for-what-you-use: gating the
# smoke pair under the canned *empty* plan has to reproduce the
# baseline exactly — all 8 gated metrics at 0.00% delta, not merely
# within tolerance.
fault_out=$(cargo run --offline --release -q -p scanshare-bench --bin bench_gate -- \
    --gate results/baseline_smoke.json --faults results/fault_plans/empty.json)
echo "$fault_out"
zero_deltas=$(echo "$fault_out" | grep -c ' 0\.00% ' || true)
if [ "$zero_deltas" -ne 8 ]; then
    echo "FAIL: empty fault plan perturbed the smoke run ($zero_deltas/8 metrics at 0.00% delta)"
    exit 1
fi
# And the transient plan must leave the gate green (sharing benefit and
# answer-preserving retries survive a 1% injected error rate).
cargo run --offline --release -q -p scanshare-bench --bin bench_gate -- \
    --gate results/baseline_smoke.json --faults results/fault_plans/transient_1pct.json

echo "== policy-ablation smoke (informational, not gated) =="
# Three-policy comparison on the pinned smoke workload. Informational:
# the numbers are printed for the log but nothing is asserted beyond
# the binary running to completion (grouping-policy identity is gated
# separately by the bench_gate run and the policy_identity test).
cargo run --offline --release -q -p scanshare-bench --bin exp_policy -- --smoke

echo "CI green."
