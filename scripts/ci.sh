#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Everything runs offline — the workspace resolves from vendored path
# dependencies only (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== perf-regression gate (smoke baseline) =="
scripts/bench_gate.sh results/baseline_smoke.json

echo "CI green."
