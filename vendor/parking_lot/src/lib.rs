//! A tiny facade matching the `parking_lot` API this workspace uses:
//! a `Mutex` whose `lock()` returns the guard directly (no poison
//! `Result`). Backed by `std::sync::Mutex`; a poisoned lock is recovered
//! rather than propagated, matching parking_lot's no-poisoning model.
//! Vendored so the workspace builds offline.

use std::sync::TryLockError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire the lock if free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
