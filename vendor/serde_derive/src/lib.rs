//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! The expansion strategy avoids `syn`/`quote` (unavailable offline):
//! the item's token stream is walked directly to recover the shape —
//! struct vs enum, field names, variant arities, `#[serde(default)]`
//! attributes — and the impl is rendered as a source string, then parsed
//! back into a `TokenStream`. Field *types* never need to be named:
//! deserialization calls `serde::Deserialize::from_json_value` in
//! positions where inference pins the type (struct literals, variant
//! constructors).
//!
//! Supported shapes (everything this workspace derives): named-field
//! structs, tuple structs, unit structs, and enums whose variants are
//! unit, tuple, or named-field. Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_serialize(&item))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_deserialize(&item))
}

fn render(src: String) -> TokenStream {
    src.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    data: Data,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: Option<FieldDefault>,
}

enum FieldDefault {
    /// `#[serde(default)]`
    Std,
    /// `#[serde(default = "path")]`
    Path(String),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // An outer attribute: swallow the bracket group.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)`.
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut toks);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&mut toks);
            }
            Some(other) => panic!("serde derive: unexpected token `{other}` before item keyword"),
            None => panic!("serde derive: no struct or enum found"),
        }
    }
}

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn parse_struct(toks: &mut Toks) -> Item {
    let name = expect_ident(toks);
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
            name,
            data: Data::NamedStruct(parse_named_fields(g.stream())),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
            name,
            data: Data::TupleStruct(count_tuple_fields(g.stream())),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
            name,
            data: Data::UnitStruct,
        },
        other => panic!(
            "serde derive: unsupported struct body for `{name}` (generics are not supported): {other:?}"
        ),
    }
}

fn parse_enum(toks: &mut Toks) -> Item {
    let name = expect_ident(toks);
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde derive: unsupported enum body for `{name}`: {other:?}"),
    };
    let mut vars = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        let vname = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde derive: expected variant name in `{name}`, got `{other}`"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        for tok in it.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        vars.push(Variant { name: vname, shape });
    }
    Item {
        name,
        data: Data::Enum(vars),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        let default = collect_field_attrs(&mut it);
        // Visibility.
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            if matches!(
                it.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                it.next();
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde derive: expected field name, got `{other}`"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type, tracking `<...>` nesting so commas inside
        // generic arguments don't end the field.
        let mut angle = 0i32;
        for tok in it.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant: top-level commas
/// (angle-bracket aware) separate fields; a trailing comma adds none.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut n = 0usize;
    let mut angle = 0i32;
    let mut in_field = false;
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if in_field {
                    n += 1;
                    in_field = false;
                }
                continue;
            }
            _ => {}
        }
        in_field = true;
    }
    if in_field {
        n += 1;
    }
    n
}

/// Skip attributes, returning the `#[serde(default...)]` info if present.
fn collect_field_attrs(it: &mut Toks) -> Option<FieldDefault> {
    let mut default = None;
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        if let Some(TokenTree::Group(g)) = it.next() {
            if let Some(d) = parse_serde_attr(g.stream()) {
                default = Some(d);
            }
        }
    }
    default
}

fn skip_attributes(it: &mut Toks) {
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        it.next();
    }
}

/// Inside an attribute's `[...]`: detect `serde(default)` and
/// `serde(default = "path")`.
fn parse_serde_attr(attr: TokenStream) -> Option<FieldDefault> {
    let mut it = attr.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let mut it = inner.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        Some(other) => panic!("serde derive: unsupported serde attribute `{other}`"),
        None => return None,
    }
    match it.next() {
        None => Some(FieldDefault::Std),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => match it.next() {
            Some(TokenTree::Literal(lit)) => {
                let s = lit.to_string();
                let path = s.trim_matches('"').to_string();
                Some(FieldDefault::Path(path))
            }
            other => panic!("serde derive: bad `default =` value: {other:?}"),
        },
        Some(other) => panic!("serde derive: unsupported serde attribute tail `{other}`"),
    }
}

fn expect_ident(toks: &mut Toks) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => {
            let name = id.to_string();
            if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                panic!("serde derive: generic type `{name}<...>` is not supported");
            }
            name
        }
        other => panic!("serde derive: expected item name, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------

const HEADER: &str = "#[automatically_derived]\n#[allow(unused, clippy::all, clippy::pedantic)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let mut s = String::from("let mut __m = serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(\"{n}\", serde::Serialize::to_json_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("serde::Value::Object(__m)");
            s
        }
        Data::TupleStruct(1) => "serde::Serialize::to_json_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Data::UnitStruct => "serde::Value::Null".to_string(),
        Data::Enum(vars) => {
            let mut arms = String::new();
            for v in vars {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => serde::__private::variant(\"{vn}\", serde::Serialize::to_json_value(__f0)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => serde::__private::variant(\"{vn}\", serde::Value::Array(vec![{elems}])),\n",
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner =
                            String::from("{ let mut __m = serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.insert(\"{n}\", serde::Serialize::to_json_value({n}));\n",
                                n = f.name
                            ));
                        }
                        inner.push_str("serde::Value::Object(__m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => serde::__private::variant(\"{vn}\", {inner}),\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{HEADER}impl serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------

/// The expression for one named field, reading from object map `__m`.
fn field_expr(ty_name: &str, f: &Field) -> String {
    let missing = match &f.default {
        Some(FieldDefault::Std) => "::core::default::Default::default()".to_string(),
        Some(FieldDefault::Path(p)) => format!("{p}()"),
        None => format!(
            "serde::__private::missing_field(\"{ty_name}\", \"{n}\")?",
            n = f.name
        ),
    };
    format!(
        "{n}: match __m.get(\"{n}\") {{\n\
         ::core::option::Option::Some(__x) => serde::Deserialize::from_json_value(__x)?,\n\
         ::core::option::Option::None => {missing},\n}}",
        n = f.name
    )
}

fn tuple_elems(n: usize, arr: &str) -> String {
    (0..n)
        .map(|i| format!("serde::Deserialize::from_json_value(&{arr}[{i}])?"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn expect_array(n: usize, what: &str) -> String {
    format!(
        "let __a = __inner.as_array().ok_or_else(|| serde::__private::unexpected(\"an array ({what})\", __inner))?;\n\
         if __a.len() != {n} {{ return ::core::result::Result::Err(serde::Error::custom(\"wrong tuple arity for {what}\")); }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_expr(name, f)).collect();
            format!(
                "let __m = __v.as_object().ok_or_else(|| serde::__private::unexpected(\"an object ({name})\", __v))?;\n\
                 ::core::result::Result::Ok({name} {{\n{}\n}})",
                inits.join(",\n")
            )
        }
        Data::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(serde::Deserialize::from_json_value(__v)?))")
        }
        Data::TupleStruct(n) => format!(
            "let __inner = __v;\n{check}::core::result::Result::Ok({name}({elems}))",
            check = expect_array(*n, name),
            elems = tuple_elems(*n, "__a")
        ),
        Data::UnitStruct => format!(
            "if __v.is_null() {{ ::core::result::Result::Ok({name}) }} else {{ \
             ::core::result::Result::Err(serde::__private::unexpected(\"null ({name})\", __v)) }}"
        ),
        Data::Enum(vars) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in vars {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(serde::Deserialize::from_json_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{\n{check}::core::result::Result::Ok({name}::{vn}({elems}))\n}}\n",
                        check = expect_array(*n, &format!("{name}::{vn}")),
                        elems = tuple_elems(*n, "__a")
                    )),
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| field_expr(&format!("{name}::{vn}"), f))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __m = __inner.as_object().ok_or_else(|| serde::__private::unexpected(\"an object ({name}::{vn})\", __inner))?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n{}\n}})\n}}\n",
                            inits.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 serde::Value::Object(__obj) => {{\n\
                 let (__tag, __inner) = __obj.first().ok_or_else(|| serde::Error::custom(\"empty object for enum {name}\"))?;\n\
                 let _ = __inner;\n\
                 match __tag {{\n{data_arms}\
                 __other => ::core::result::Result::Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 __other => ::core::result::Result::Err(serde::__private::unexpected(\"a string or tagged object ({name})\", __other)),\n}}"
            )
        }
    };
    format!(
        "{HEADER}impl serde::Deserialize for {name} {{\n\
         fn from_json_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
