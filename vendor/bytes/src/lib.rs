//! A minimal stand-in for the `bytes` crate: an immutable, cheaply
//! cloneable byte buffer ([`Bytes`], backed by `Arc<[u8]>`) and a
//! mutable builder ([`BytesMut`]) that freezes into one. Only the API
//! surface this workspace uses is provided; it is vendored so the build
//! works offline.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable shared byte buffer. `Clone` is a reference-count bump,
/// so many readers can hold the same page without copying it.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer holding a copy of a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

/// A mutable byte buffer that can be frozen into a shared [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            data: vec![0u8; len],
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable shared buffer without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_then_share() {
        let mut m = BytesMut::zeroed(4);
        m[1] = 7;
        let a = m.freeze();
        let b = a.clone();
        assert_eq!(&a[..], &[0, 7, 0, 0]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_vec_and_static() {
        assert_eq!(&Bytes::from(vec![1, 2])[..], &[1, 2]);
        assert_eq!(&Bytes::from_static(b"xy")[..], b"xy");
    }
}
