use std::fmt;

/// A JSON value tree — the interchange model between [`crate::Serialize`]
/// / [`crate::Deserialize`] and the text codec in `serde_json`.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Map),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }

    /// `true` iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if it is one and fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if it is one and fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// A JSON number. Integers keep their exact representation; `u64` values
/// above `i64::MAX` stay unsigned.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// As `u64`, if non-negative integral.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(n) => Some(n),
            Number::I64(n) if n >= 0 => Some(n as u64),
            Number::I64(_) => None,
            Number::F64(f) if f >= 0.0 && f <= u64::MAX as f64 && f.fract() == 0.0 => {
                Some(f as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// As `i64`, if integral and in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::I64(n) => Some(n),
            Number::U64(n) => i64::try_from(n).ok(),
            Number::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            Number::F64(_) => None,
        }
    }

    /// As `f64` (integers convert; may round above 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            Number::F64(x) => {
                if !x.is_finite() {
                    // JSON has no inf/nan; serialize as null-adjacent 0.
                    write!(f, "null")
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON object that preserves insertion order (serde_json's default map
/// is good enough to imitate with a vector at our object sizes).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff there are no members.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append or replace a member.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a member.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// The first member, if any — the discriminating entry of an
    /// externally-tagged enum encoding.
    pub fn first(&self) -> Option<(&str, &Value)> {
        self.entries.first().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}
