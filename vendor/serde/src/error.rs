use std::fmt;

/// Serialization / deserialization error: a message, optionally with the
/// line/column of a JSON parse failure (filled in by `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
