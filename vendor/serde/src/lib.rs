//! A self-contained stand-in for the parts of `serde` this workspace
//! uses, vendored so the build is hermetic (`cargo build --offline`
//! works with no registry access).
//!
//! The data model is deliberately simple: serialization produces a
//! [`Value`] tree (the JSON object model) and deserialization consumes
//! one. `serde_json` (also vendored) turns the tree into text and back.
//! The derive macros in `serde_derive` generate impls of the two traits
//! below and follow serde's JSON conventions:
//!
//! * structs → objects, newtype structs → their inner value,
//! * tuple structs → arrays,
//! * unit enum variants → `"Name"`,
//! * data-carrying variants → `{"Name": ...}`,
//! * `Option` → value-or-`null`, missing fields accept `null`,
//! * `#[serde(default)]` and `#[serde(default = "path")]` are honored.

pub use serde_derive::{Deserialize, Serialize};

mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::{Map, Number, Value};

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the JSON object model.
    fn to_json_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the JSON object model.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

/// Support glue used by the generated code. Not part of the public API.
pub mod __private {
    use super::{Deserialize, Error, Map, Value};

    /// `{"Name": inner}` — the JSON encoding of a data-carrying enum
    /// variant.
    pub fn variant(name: &str, inner: Value) -> Value {
        let mut m = Map::new();
        m.insert(name, inner);
        Value::Object(m)
    }

    /// Resolve a field absent from the input object: types that accept
    /// `null` (e.g. `Option`) get their `null` value, everything else is
    /// a hard error — mirroring serde's missing-field behavior.
    pub fn missing_field<T: Deserialize>(ty: &str, field: &str) -> Result<T, Error> {
        T::from_json_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{field}` in `{ty}`")))
    }

    /// Type-mismatch error with a little context.
    pub fn unexpected(expected: &str, got: &Value) -> Error {
        Error::custom(format!("expected {expected}, got {}", got.kind()))
    }
}
