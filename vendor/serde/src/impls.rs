//! `Serialize` / `Deserialize` impls for primitives and containers.

use crate::__private::unexpected;
use crate::{Deserialize, Error, Number, Serialize, Value};

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| unexpected("an unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| unexpected("an integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| unexpected("a number", v))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| unexpected("a number", v))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| unexpected("a boolean", v))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| unexpected("a string", v))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(t) => t.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| unexpected("an array", v))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| unexpected("an array (tuple)", v))?;
                let n = [$($i),+].len();
                if a.len() != n {
                    return Err(Error::custom(format!(
                        "expected a tuple of {n} elements, got {}", a.len()
                    )));
                }
                Ok(($($t::from_json_value(&a[$i])?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
