//! JSON text encoding/decoding over the vendored `serde` value tree.
//!
//! Implements the subset of the real `serde_json` API this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`], plus the [`Value`] re-export. Number formatting
//! follows serde_json conventions (integers bare, integral floats with a
//! trailing `.0`); floats round-trip exactly via Rust's shortest-form
//! `Display`.

pub use serde::{Map, Number, Value};

mod parse;
mod print;

pub use parse::parse_value;

/// Errors from encoding or decoding JSON.
pub type Error = serde::Error;

/// A `Result` specialized to [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(print::write_compact(&value.to_json_value()))
}

/// Serialize `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(print::write_pretty(&value.to_json_value()))
}

/// Serialize `value` to a compact JSON byte vector.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse::parse_value(s)?;
    T::from_json_value(&v)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "18446744073709551615",
            "1.5",
            "\"hi\"",
        ] {
            let v: Value = from_str(src).unwrap();
            assert_eq!(to_string(&v).unwrap(), src, "round-trip of {src}");
        }
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&-0.5f64).unwrap(), "-0.5");
    }

    #[test]
    fn containers_round_trip() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":null},"d":true}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
        // Pretty output parses back to the same tree.
        let pretty = to_string_pretty(&v).unwrap();
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn strings_escape() {
        let s = "line\n\"quoted\"\tend\\".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_have_context() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("line"), "{err}");
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
