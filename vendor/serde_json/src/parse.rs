//! Recursive-descent JSON parser producing a [`Value`] tree.

use serde::{Error, Map, Number, Value};

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::custom(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(m));
            }
            self.expect(b',')?;
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
