//! The papers' motivating scenario: a data warehouse with 7 years of
//! history where many analysts query the most recent months through
//! block index scans.
//!
//! "A Data Warehouse might have 7 years of data and multiple analysts
//! might be interested in the last year or month of data. Their queries
//! would likely use an index based scan of some sort over that part of
//! the data."
//!
//! Six analysts fire overlapping month-range reports within a couple of
//! seconds. Without sharing, each index scan drags the same hotspot
//! blocks off disk again; with the SISCAN machinery they ride each
//! other's pages.
//!
//! ```sh
//! cargo run --release --example warehouse_hotspot
//! ```

use scanshare_repro::core::SharingConfig;
use scanshare_repro::engine::{
    run_workload, Access, AggSpec, CpuClass, Pred, Query, ScanSpec, SharingMode, Stream,
    WorkloadSpec,
};
use scanshare_repro::storage::SimDuration;
use scanshare_repro::tpch::gen::lineitem_cols as li;
use scanshare_repro::tpch::{generate, workload::paper_pool_pages, TpchConfig};

fn report(name: &str, lo: i64, hi: i64) -> Query {
    Query::single(
        name,
        ScanSpec {
            table: "lineitem".into(),
            access: Access::IndexRange { lo, hi },
            pred: Pred::True,
            agg: AggSpec::sums(vec![li::EXTENDEDPRICE]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        },
    )
}

fn main() {
    let cfg = TpchConfig {
        scale: 0.5,
        ..TpchConfig::default()
    };
    println!("generating {} months of history ...", cfg.months);
    let db = generate(&cfg);
    let last = cfg.last_month();

    // Six analysts, all inside the last year, different windows.
    let reports = [
        ("year_review", last - 11, last),
        ("last_quarter", last - 2, last),
        ("last_month", last, last),
        ("h2_review", last - 5, last),
        ("ytd", last - 8, last),
        ("two_quarters", last - 5, last - 3),
    ];
    let streams: Vec<Stream> = reports
        .iter()
        .enumerate()
        .map(|(i, &(name, lo, hi))| Stream {
            queries: vec![report(name, lo, hi)],
            start_offset: SimDuration::from_millis(120 * i as u64),
        })
        .collect();
    let spec = |mode| WorkloadSpec {
        streams: streams.clone(),
        pool_pages: paper_pool_pages(&db),
        engine: Default::default(),
        mode,
        faults: Default::default(),
        slo: Default::default(),
    };

    let base = run_workload(&db, &spec(SharingMode::Base)).expect("base");
    let ss = run_workload(&db, &spec(SharingMode::ScanSharing(SharingConfig::new(0)))).expect("ss");

    println!(
        "\n{:<14} {:>11} {:>13} {:>8}",
        "report", "base (s)", "shared (s)", "gain"
    );
    for (i, &(name, ..)) in reports.iter().enumerate() {
        let b = base.stream_elapsed[i].as_secs_f64();
        let s = ss.stream_elapsed[i].as_secs_f64();
        println!(
            "{:<14} {:>11.2} {:>13.2} {:>7.1}%",
            name,
            b,
            s,
            (1.0 - s / b) * 100.0
        );
    }
    println!(
        "\nhotspot I/O: base {} pages / {} seeks -> shared {} pages / {} seeks",
        base.disk.pages_read, base.disk.seeks, ss.disk.pages_read, ss.disk.seeks
    );
    println!(
        "placement: {} of {} scans joined an ongoing or finished scan",
        ss.sharing.scans_joined + ss.sharing.scans_joined_finished,
        ss.sharing.scans_started
    );
}
