//! Run a small shared workload with the event tracer attached and print
//! every sharing decision the manager made: placements ("join scan 0"),
//! wrap-arounds, throttle waits, and scan lifecycles.
//!
//! ```sh
//! cargo run --release --example trace_walkthrough
//! ```

use scanshare_repro::core::SharingConfig;
use scanshare_repro::engine::{run_workload_traced, SharingMode, Tracer};
use scanshare_repro::storage::SimDuration;
use scanshare_repro::tpch::{generate, q6, staggered_workload, TpchConfig};

fn main() {
    let cfg = TpchConfig {
        scale: 0.3,
        ..TpchConfig::default()
    };
    println!("generating database (scale {}) ...", cfg.scale);
    let db = generate(&cfg);
    let q = q6(cfg.months as i64, cfg.seed);

    let spec = staggered_workload(
        &db,
        &q,
        4,
        SimDuration::from_millis(40),
        SharingMode::ScanSharing(SharingConfig::new(0)),
    );
    let tracer = Tracer::new(10_000);
    let report = run_workload_traced(&db, &spec, tracer.clone()).expect("run");

    println!("\n--- event log ---");
    print!("{}", tracer.render());
    println!("--- end of log ({} events) ---\n", tracer.records().len());

    println!(
        "run finished in {:.2}s: {} pages read, {} seeks, {} joins, {} throttle waits",
        report.makespan.as_secs_f64(),
        report.disk.pages_read,
        report.disk.seeks,
        report.sharing.scans_joined + report.sharing.scans_joined_finished,
        report.sharing.waits_injected
    );
}
