//! Quickstart: build a table, run two concurrent scans with and without
//! scan sharing, and watch the physical I/O drop.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scanshare_repro::core::SharingConfig;
use scanshare_repro::engine::{
    run_workload, Access, AggSpec, CpuClass, Database, EngineConfig, Pred, Query, ScanSpec,
    SharingMode, Stream, WorkloadSpec,
};
use scanshare_repro::relstore::{ColType, Column, Schema, Value};
use scanshare_repro::storage::SimDuration;

fn main() {
    // 1. Load a table: 200k rows in a plain heap file (~400 pages).
    let mut db = Database::new(16);
    let schema = Schema::new(vec![
        Column::new("id", ColType::Int64),
        Column::new("amount", ColType::Float64),
    ]);
    db.create_heap_table(
        "sales",
        schema,
        (0..200_000).map(|i| vec![Value::I64(i), Value::F64(1.0)]),
    )
    .expect("load");
    let pages = db.table("sales").unwrap().num_pages();
    println!("loaded 'sales': {pages} pages, 200000 rows");

    // 2. A full-table aggregation query.
    let query = Query::single(
        "sum_sales",
        ScanSpec {
            table: "sales".into(),
            access: Access::FullTable,
            pred: Pred::True,
            agg: AggSpec::sums(vec![1]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        },
    );

    // 3. Three users fire the same query moments apart, against a buffer
    //    pool that holds only ~15% of the table.
    let streams: Vec<Stream> = (0..3)
        .map(|i| Stream {
            queries: vec![query.clone()],
            start_offset: SimDuration::from_millis(150 * i),
        })
        .collect();
    let spec = |mode| WorkloadSpec {
        streams: streams.clone(),
        pool_pages: 64,
        engine: EngineConfig::default(),
        mode,
        faults: Default::default(),
        slo: Default::default(),
    };

    let base = run_workload(&db, &spec(SharingMode::Base)).expect("base");
    let ss = run_workload(&db, &spec(SharingMode::ScanSharing(SharingConfig::new(0)))).expect("ss");

    // 4. Same answers, less disk.
    println!("\n              {:>12} {:>14}", "base", "scan-sharing");
    println!(
        "answer (sum)  {:>12.0} {:>14.0}",
        base.queries[0].result.sums[0], ss.queries[0].result.sums[0]
    );
    println!(
        "elapsed       {:>11.2}s {:>13.2}s",
        base.makespan.as_secs_f64(),
        ss.makespan.as_secs_f64()
    );
    println!(
        "pages read    {:>12} {:>14}",
        base.disk.pages_read, ss.disk.pages_read
    );
    println!(
        "seeks         {:>12} {:>14}",
        base.disk.seeks, ss.disk.seeks
    );
    println!(
        "\nscan-sharing decisions: {} scans joined an ongoing scan,",
        ss.sharing.scans_joined
    );
    println!(
        "{} waits injected to keep the group together.",
        ss.sharing.waits_injected
    );
    assert_eq!(base.queries[0].result.sums[0], ss.queries[0].result.sums[0]);
    assert!(ss.disk.pages_read <= base.disk.pages_read);
}
