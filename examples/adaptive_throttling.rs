//! Watch the sharing manager work: two scans of very different speeds on
//! the same table, with the manager's grouping, roles, and throttling
//! decisions traced step by step.
//!
//! This drives the `scanshare` core library directly (no engine), the
//! way a database integrator would: register scans, report locations
//! every extent, obey the returned waits and priorities.
//!
//! ```sh
//! cargo run --release --example adaptive_throttling
//! ```

use scanshare_repro::core::{
    Location, ObjectId, PagePriority, Role, ScanDesc, ScanKind, ScanSharingManager, SharingConfig,
};
use scanshare_repro::storage::{SimDuration, SimTime};

fn main() {
    let mgr = ScanSharingManager::new(SharingConfig::new(2_000));
    let table = ObjectId(0);
    let desc = |secs: u64| ScanDesc {
        kind: ScanKind::Table,
        object: table,
        start_key: 0,
        end_key: 9_999,
        est_pages: 10_000,
        est_time: SimDuration::from_secs(secs),
        priority: Default::default(),
    };

    // A fast scan starts; a slow one follows and is placed at its
    // position.
    let (fast, d1) = mgr.start_scan(desc(10), SimTime::ZERO);
    println!("fast scan registered: {d1:?}");
    let mut t = SimTime::ZERO;
    let mut fast_pos: u64 = 0;
    // Let the fast scan get going.
    for _ in 0..4 {
        t += SimDuration::from_millis(16);
        fast_pos += 16;
        mgr.update_location(fast, t, Location::new(fast_pos as i64, fast_pos), 16);
    }
    let (slow, d2) = mgr.start_scan(desc(40), t);
    let mut slow_pos = d2.join_location().map(|l| l.pos).unwrap_or(0);
    println!("slow scan registered: joined at page {slow_pos}\n");

    println!(
        "{:>8} {:>9} {:>9} {:>6} {:>10} {:>9} {:>9}",
        "time", "fast@", "slow@", "gap", "fast role", "wait(ms)", "fast prio"
    );
    let mut throttles = 0;
    for step in 0..40 {
        // Fast scan: 1000 pages/s -> 16 pages per 16ms.
        // Slow scan: 250 pages/s -> 16 pages per 64ms.
        t += SimDuration::from_millis(16);
        fast_pos += 16;
        let out_fast = mgr.update_location(fast, t, Location::new(fast_pos as i64, fast_pos), 16);
        if step % 4 == 3 {
            slow_pos += 16;
            mgr.update_location(slow, t, Location::new(slow_pos as i64, slow_pos), 16);
        }
        if out_fast.wait > SimDuration::ZERO {
            throttles += 1;
            // Obey the wait: the fast scan pauses (its position holds).
            t += out_fast.wait;
        }
        if step % 4 == 0 || out_fast.wait > SimDuration::ZERO {
            println!(
                "{:>8} {:>9} {:>9} {:>6} {:>10?} {:>9.1} {:>9?}",
                format!("{:.2}s", t.as_secs_f64()),
                fast_pos,
                slow_pos,
                fast_pos - slow_pos,
                out_fast.role,
                out_fast.wait.as_secs_f64() * 1e3,
                out_fast.priority,
            );
        }
    }

    println!("\n{throttles} throttle waits were injected into the fast scan.");
    let groups = mgr.groups();
    println!("final groups:");
    for g in &groups {
        println!(
            "  anchor {:?}: {} member(s), extent {} pages (trailer {:?}, leader {:?})",
            g.anchor,
            g.members.len(),
            g.extent,
            g.trailer(),
            g.leader()
        );
    }
    let stats = mgr.stats();
    println!(
        "manager stats: {} joins, {} waits, {:.1}ms total wait",
        stats.scans_joined,
        stats.waits_injected,
        stats.total_wait.as_secs_f64() * 1e3
    );
    assert!(throttles > 0, "the fast leader must get throttled");
    // Once grouped, the leader releases pages with high priority and the
    // trailer with low priority.
    assert_eq!(mgr.page_priority(fast), PagePriority::High);
    assert_eq!(mgr.page_priority(slow), PagePriority::Low);
    let _ = Role::Leader;
}
