//! A miniature TPC-H throughput run: N concurrent streams of the full
//! 22-query mix, base vs scan-sharing — the setup behind the paper's
//! Table 1.
//!
//! ```sh
//! cargo run --release --example throughput_streams          # 3 streams
//! cargo run --release --example throughput_streams -- 5     # 5 streams
//! ```

use scanshare_repro::core::SharingConfig;
use scanshare_repro::engine::{run_workload, SharingMode};
use scanshare_repro::tpch::{generate, throughput_workload, TpchConfig};

fn main() {
    let n_streams: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let cfg = TpchConfig {
        scale: 0.5,
        ..TpchConfig::default()
    };
    println!("generating database (scale {}) ...", cfg.scale);
    let db = generate(&cfg);
    let months = cfg.months as i64;

    println!("running {n_streams}-stream throughput, base ...");
    let base = run_workload(
        &db,
        &throughput_workload(&db, n_streams, months, cfg.seed, SharingMode::Base),
    )
    .expect("base");
    println!("running {n_streams}-stream throughput, scan-sharing ...");
    let ss = run_workload(
        &db,
        &throughput_workload(
            &db,
            n_streams,
            months,
            cfg.seed,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        ),
    )
    .expect("ss");

    let gain = |b: f64, s: f64| (1.0 - s / b) * 100.0;
    println!(
        "\n{:<22} {:>12} {:>14} {:>8}",
        "metric", "base", "scan-sharing", "gain"
    );
    println!(
        "{:<22} {:>11.1}s {:>13.1}s {:>7.1}%",
        "end-to-end",
        base.makespan.as_secs_f64(),
        ss.makespan.as_secs_f64(),
        gain(base.makespan.as_secs_f64(), ss.makespan.as_secs_f64())
    );
    println!(
        "{:<22} {:>12} {:>14} {:>7.1}%",
        "pages read",
        base.disk.pages_read,
        ss.disk.pages_read,
        gain(base.disk.pages_read as f64, ss.disk.pages_read as f64)
    );
    println!(
        "{:<22} {:>12} {:>14} {:>7.1}%",
        "disk seeks",
        base.disk.seeks,
        ss.disk.seeks,
        gain(base.disk.seeks as f64, ss.disk.seeks as f64)
    );
    println!(
        "{:<22} {:>11.1}% {:>13.1}%",
        "pool hit ratio",
        base.pool.hit_ratio() * 100.0,
        ss.pool.hit_ratio() * 100.0
    );

    println!("\nper-stream elapsed:");
    for i in 0..n_streams {
        let b = base.stream_elapsed[i].as_secs_f64();
        let s = ss.stream_elapsed[i].as_secs_f64();
        println!(
            "  stream {i}: {b:>7.1}s -> {s:>6.1}s ({:+.1}%)",
            -gain(b, s)
        );
    }
    println!(
        "\nsharing: {} joins / {} fresh starts / {} throttle waits ({:.2}s total wait)",
        ss.sharing.scans_joined + ss.sharing.scans_joined_finished,
        ss.sharing.scans_from_start,
        ss.sharing.waits_injected,
        ss.sharing.total_wait.as_secs_f64()
    );
}
