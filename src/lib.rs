//! `scanshare-repro` — top-level facade of the reproduction of
//! *"Increasing Buffer-Locality for Multiple Relational Table Scans
//! through Grouping and Throttling"* (ICDE 2007) and its VLDB 2007
//! index-scan companion.
//!
//! The workspace splits into layers (see `DESIGN.md`):
//!
//! * [`storage`] — virtual clock, seek-accounting disk model, buffer pool
//!   with priority-aware replacement,
//! * [`relstore`] — tuples, slotted heap files, a paged B+ tree, and
//!   MDC-style block-clustered tables,
//! * [`core`] — **the paper**: the scan-sharing manager (grouping,
//!   leader/trailer throttling, page re-prioritization, placement),
//! * [`engine`] — a deterministic discrete-event executor running
//!   multi-stream scan workloads with and without sharing,
//! * [`tpch`] — the TPC-H-shaped data generator and 22-query workload.
//!
//! ```
//! use scanshare_repro::tpch::{generate, q6, staggered_workload, TpchConfig};
//! use scanshare_repro::engine::{run_workload, SharingMode};
//! use scanshare_repro::core::SharingConfig;
//! use scanshare_repro::storage::SimDuration;
//!
//! // Small database, three overlapping Q6 queries.
//! let cfg = TpchConfig::tiny();
//! let db = generate(&cfg);
//! let q = q6(cfg.months as i64, 1);
//! let stagger = SimDuration::from_millis(50);
//!
//! let base = staggered_workload(&db, &q, 3, stagger, SharingMode::Base);
//! let ss = staggered_workload(
//!     &db, &q, 3, stagger,
//!     SharingMode::ScanSharing(SharingConfig::new(0)),
//! );
//! let rb = run_workload(&db, &base).unwrap();
//! let rs = run_workload(&db, &ss).unwrap();
//!
//! // Sharing never reads more and computes the same answers.
//! assert!(rs.disk.pages_read <= rb.disk.pages_read);
//! assert_eq!(rb.queries[0].result.count, rs.queries[0].result.count);
//! ```

/// The scan-sharing manager (the paper's contribution).
pub use scanshare as core;
/// The discrete-event query executor.
pub use scanshare_engine as engine;
/// Relational storage: heap files, B+ tree, MDC tables.
pub use scanshare_relstore as relstore;
/// Storage substrate: clock, disk model, buffer pool.
pub use scanshare_storage as storage;
/// TPC-H-shaped data and workload.
pub use scanshare_tpch as tpch;
