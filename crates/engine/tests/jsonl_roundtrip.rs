//! Property-style JSONL round-trip tests for the two event-log layers:
//! the engine's `Tracer` and the core `DecisionLog`. Random records are
//! generated with the repo's deterministic PRNG, serialized to JSON
//! lines, parsed back, and compared — including the capped case, where
//! the `dropped` count must account for every eviction.

use scanshare::anchor::AnchorId;
use scanshare::{
    decision, DecisionEvent, DecisionLog, DecisionRecord, Location, ObjectId, PagePriority,
    PlacementCandidate, Role, ScanId,
};
use scanshare_engine::trace::{records_from_jsonl, records_to_jsonl, TraceEvent, Tracer};
use scanshare_engine::TraceRecord;
use scanshare_prng::Rng;
use scanshare_storage::{SimDuration, SimTime};

fn random_trace_event(rng: &mut Rng) -> TraceEvent {
    match rng.bounded_u64(4) {
        0 => TraceEvent::ScanStarted {
            scan: ScanId(rng.bounded_u64(100)),
            query: format!("Q{}", rng.bounded_u64(22) + 1),
            stream: rng.bounded_u64(8) as usize,
            placement: ["fresh", "join scan 3", "join leftovers"][rng.bounded_u64(3) as usize]
                .to_string(),
        },
        1 => TraceEvent::ScanWrapped {
            scan: ScanId(rng.bounded_u64(100)),
        },
        2 => TraceEvent::Throttled {
            scan: ScanId(rng.bounded_u64(100)),
            wait: SimDuration::from_micros(rng.bounded_u64(500_000)),
            role: ["leader", "middle", "trailer"][rng.bounded_u64(3) as usize].to_string(),
        },
        _ => TraceEvent::ScanFinished {
            scan: ScanId(rng.bounded_u64(100)),
        },
    }
}

fn random_candidate(rng: &mut Rng) -> PlacementCandidate {
    PlacementCandidate {
        scan: if rng.bounded_u64(4) == 0 {
            None
        } else {
            Some(ScanId(rng.bounded_u64(100)))
        },
        location: Location::new(rng.bounded_u64(10_000) as i64, rng.bounded_u64(10_000)),
        saving_pages: (rng.bounded_u64(4_000) as f64) / 4.0,
        score: (rng.bounded_u64(1_000) as f64) / 1_000.0,
        speed: (rng.bounded_u64(100_000) as f64) / 10.0,
    }
}

fn random_decision_event(rng: &mut Rng) -> DecisionEvent {
    let scan = ScanId(rng.bounded_u64(100));
    let roles = [Role::Leader, Role::Middle, Role::Trailer, Role::Singleton];
    let prios = [PagePriority::Low, PagePriority::Normal, PagePriority::High];
    match rng.bounded_u64(7) {
        0 => DecisionEvent::GroupStart {
            scan,
            object: ObjectId(rng.bounded_u64(16)),
            candidates: (0..rng.bounded_u64(4))
                .map(|_| random_candidate(rng))
                .collect(),
            threshold_pages: rng.bounded_u64(64) as f64,
        },
        1 => DecisionEvent::GroupJoin {
            scan,
            object: ObjectId(rng.bounded_u64(16)),
            joined: if rng.bounded_u64(3) == 0 {
                None
            } else {
                Some(ScanId(rng.bounded_u64(100)))
            },
            location: Location::new(rng.bounded_u64(10_000) as i64, rng.bounded_u64(10_000)),
            back_up_pages: rng.bounded_u64(256),
            candidates: (1..=rng.bounded_u64(3) + 1)
                .map(|_| random_candidate(rng))
                .collect(),
            threshold_pages: rng.bounded_u64(64) as f64,
        },
        2 => DecisionEvent::Throttle {
            scan,
            group: AnchorId(rng.bounded_u64(8)),
            distance_pages: rng.bounded_u64(1_000),
            threshold_pages: 32,
            wait: SimDuration::from_micros(rng.bounded_u64(500_000)),
            accumulated_slowdown: SimDuration::from_micros(rng.bounded_u64(5_000_000)),
            slowdown_budget: SimDuration::from_micros(rng.bounded_u64(50_000_000) + 1),
            fairness_cap: 0.8,
            trailer: ScanId(rng.bounded_u64(100)),
            trailer_speed: (rng.bounded_u64(100_000) as f64) / 10.0,
        },
        3 => DecisionEvent::Unthrottle {
            scan,
            group: AnchorId(rng.bounded_u64(8)),
            distance_pages: rng.bounded_u64(32),
            threshold_pages: 32,
        },
        4 => DecisionEvent::SlowdownCapHit {
            scan,
            accumulated_slowdown: SimDuration::from_micros(rng.bounded_u64(5_000_000)),
            slowdown_budget: SimDuration::from_micros(rng.bounded_u64(5_000_000)),
            fairness_cap: 0.8,
        },
        5 => DecisionEvent::RoleChange {
            scan,
            group: AnchorId(rng.bounded_u64(8)),
            from: roles[rng.bounded_u64(4) as usize],
            to: roles[rng.bounded_u64(4) as usize],
            group_extent: rng.bounded_u64(2_000),
            members: rng.bounded_u64(6) as usize + 1,
        },
        _ => DecisionEvent::PageReprioritize {
            scan,
            role: roles[rng.bounded_u64(4) as usize],
            from: prios[rng.bounded_u64(3) as usize],
            to: prios[rng.bounded_u64(3) as usize],
        },
    }
}

#[test]
fn trace_jsonl_round_trips_random_records() {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    for trial in 0..20 {
        let n = rng.bounded_u64(60) as usize + 1;
        let records: Vec<TraceRecord> = (0..n)
            .map(|i| TraceRecord {
                at: SimTime::from_micros(i as u64 * 1_000 + rng.bounded_u64(999)),
                event: random_trace_event(&mut rng),
            })
            .collect();
        let jsonl = records_to_jsonl(&records);
        let back = records_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, records, "trial {trial} lost data in the round trip");
    }
}

#[test]
fn capped_tracer_drops_oldest_and_survivors_round_trip() {
    let mut rng = Rng::seed_from_u64(7);
    for trial in 0..10 {
        let cap = rng.bounded_u64(20) as usize + 1;
        let total = cap + rng.bounded_u64(50) as usize;
        let tracer = Tracer::new(cap);
        let mut all = Vec::new();
        for i in 0..total {
            let ev = random_trace_event(&mut rng);
            tracer.record(SimTime::from_micros(i as u64), ev.clone());
            all.push(ev);
        }
        let retained = tracer.records();
        // Every eviction is accounted for...
        assert_eq!(
            tracer.dropped() as usize + retained.len(),
            total,
            "trial {trial}: dropped + retained != recorded"
        );
        assert_eq!(retained.len(), cap.min(total));
        // ...the survivors are exactly the newest records, in order...
        for (r, ev) in retained.iter().zip(&all[total - retained.len()..]) {
            assert_eq!(&r.event, ev);
        }
        // ...and they survive JSONL unchanged.
        let back = records_from_jsonl(&tracer.to_jsonl()).unwrap();
        assert_eq!(back, retained);
    }
}

#[test]
fn decision_jsonl_round_trips_random_records() {
    let mut rng = Rng::seed_from_u64(0xDECADE);
    for trial in 0..20 {
        let n = rng.bounded_u64(60) as usize + 1;
        let records: Vec<DecisionRecord> = (0..n)
            .map(|i| DecisionRecord {
                at: SimTime::from_micros(i as u64 * 1_000 + rng.bounded_u64(999)),
                event: random_decision_event(&mut rng),
            })
            .collect();
        let jsonl = decision::decisions_to_jsonl(&records);
        let back = decision::decisions_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, records, "trial {trial} lost data in the round trip");
    }
}

#[test]
fn capped_decision_log_drops_oldest_and_survivors_round_trip() {
    let mut rng = Rng::seed_from_u64(99);
    for trial in 0..10 {
        let cap = rng.bounded_u64(20) as usize + 1;
        let total = cap + rng.bounded_u64(50) as usize;
        let log = DecisionLog::new(cap);
        let mut all = Vec::new();
        for i in 0..total {
            let ev = random_decision_event(&mut rng);
            log.record(SimTime::from_micros(i as u64), ev.clone());
            all.push(ev);
        }
        let retained = log.records();
        assert_eq!(
            log.dropped() as usize + retained.len(),
            total,
            "trial {trial}: dropped + retained != recorded"
        );
        assert_eq!(retained.len(), cap.min(total));
        for (r, ev) in retained.iter().zip(&all[total - retained.len()..]) {
            assert_eq!(&r.event, ev);
        }
        let back = decision::decisions_from_jsonl(&log.to_jsonl()).unwrap();
        assert_eq!(back, retained);
    }
}

#[test]
fn malformed_lines_name_their_line_number() {
    let err = records_from_jsonl("\n{\"at\":0}\n").unwrap_err();
    assert!(err.contains("trace line 2"), "got: {err}");
    let err = decision::decisions_from_jsonl("\n\n{nope}\n").unwrap_err();
    assert!(err.contains("decision line 3"), "got: {err}");
}
