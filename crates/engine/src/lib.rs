#![warn(missing_docs)]
//! Discrete-event query executor for the `scanshare` reproduction.
//!
//! The engine plays the role DB2 UDB plays in the papers: it runs
//! multi-stream decision-support workloads whose queries are table scans
//! and (block) index scans, against the storage substrate of
//! `scanshare-storage`/`scanshare-relstore`, optionally coordinated by the
//! scan-sharing manager of `scanshare`.
//!
//! Execution is a deterministic discrete-event simulation over virtual
//! time: each scan advances one extent (16 pages) per step, paying
//!
//! * **I/O time** through the single-head FIFO disk model (misses only —
//!   buffer pool hits are free except for CPU),
//! * **CPU time** through a bounded CPU server (`n_cpus`), so CPU-heavy
//!   queries contend like the paper's Q1 streams,
//! * **system time** per physical read request (the "fewer system read
//!   calls" effect visible in the paper's Figure 16),
//! * **throttle waits** injected by the sharing manager.
//!
//! The same workload can be run in *base* mode (no sharing, plain LRU —
//! "vanilla DB2") and *scan-sharing* mode; both produce identical query
//! answers (asserted in tests) and a [`metrics::RunReport`] with the
//! iostat-style measurements the papers report.

pub mod cost;
pub mod db;
pub mod error;
pub mod exec;
pub mod faults;
pub mod metrics;
pub mod par_runs;
pub mod persist;
pub mod push;
pub mod query;
pub mod scan_exec;
pub mod slo;
pub mod trace;
pub mod workload;

pub use cost::{CpuClass, EngineConfig};
pub use db::Database;
pub use error::{EngineError, EngineResult};
pub use faults::{FaultSummary, FaultsConfig};
pub use metrics::{Breakdown, PushSummary, QueryRecord, RunReport};
pub use par_runs::{par_map, run_workloads};
pub use query::{Access, AggSpec, Pred, Query, QueryResult, ScanSpec};
pub use slo::{SloConfig, SloOp, SloRule, SloVerdict};
pub use trace::{TraceEvent, TraceRecord, Tracer};
pub use workload::{
    run_workload, run_workload_hooked, run_workload_traced, RunHooks, SharingMode, Stream,
    WatchFrame, WatchObserver, WorkloadSpec,
};
