//! Declarative service-level objectives evaluated at end of run.
//!
//! A workload spec may carry an `slo` section: a list of rules, each
//! comparing one observable of the finished run against a threshold
//! (`"p99_stretch <= 1.5"`, `"hit_ratio >= 0.6"`, …). Rules are
//! evaluated by [`evaluate`] after the report is assembled, entirely
//! from virtual-time quantities — verdicts are deterministic and
//! byte-stable across hosts and `--jobs` counts.
//!
//! # Metric grammar
//!
//! The `metric` field of a rule is a compact string:
//!
//! | metric | meaning |
//! |---|---|
//! | `hit_ratio` | end-of-run buffer-pool hit ratio in `[0, 1]` |
//! | `pages_per_sec` | logical pages consumed per *virtual* second |
//! | `p99_stretch` (or `stretch_p99`) | quantile of per-query stretch |
//! | `hist:<name>:p99` | quantile of a report histogram (e.g. `hist:disk.read_us:p99`) |
//! | `series:<name>:last` | final sample of a report series |
//! | `series:<name>:max` | largest sample of a report series |
//!
//! *Stretch* is a query's elapsed time divided by the fastest elapsed
//! time among runs of the same-named query in the same report — 1.0 for
//! the fastest instance, 2.0 for one that took twice as long. It is the
//! natural fairness measure for the paper's throttled groups: a leader
//! throttled into a group should stretch a little, a starved trailer
//! stretches a lot.
//!
//! A rule whose metric does not parse, or names a histogram/series the
//! run did not record, fails closed: the verdict is a breach with a
//! `note` explaining what was wrong, so typos cannot silently pass.

use serde::{Deserialize, Serialize};

use crate::metrics::RunReport;

/// The `slo` section of a workload spec: zero or more rules to check.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// The rules, checked in order.
    #[serde(default)]
    pub rules: Vec<SloRule>,
}

impl SloConfig {
    /// True when the section declares no rules (the default), in which
    /// case runs carry no `slo` report section at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// One declarative objective: `metric op value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloRule {
    /// Rule name, echoed in the verdict (e.g. `"tail latency"`).
    pub name: String,
    /// What to measure — see the module docs for the grammar.
    pub metric: String,
    /// Comparison direction.
    pub op: SloOp,
    /// Threshold the observed value is compared against.
    pub value: f64,
}

/// Comparison direction of a rule. Serialized as `"<="` / `">="`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// Observed must be `<=` the threshold (caps: latency, stretch).
    Le,
    /// Observed must be `>=` the threshold (floors: hit ratio, throughput).
    Ge,
}

impl SloOp {
    /// The comparison as an operator token.
    pub fn symbol(&self) -> &'static str {
        match self {
            SloOp::Le => "<=",
            SloOp::Ge => ">=",
        }
    }

    /// Apply the comparison.
    pub fn holds(&self, observed: f64, threshold: f64) -> bool {
        match self {
            SloOp::Le => observed <= threshold,
            SloOp::Ge => observed >= threshold,
        }
    }
}

impl Serialize for SloOp {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::String(self.symbol().to_string())
    }
}

impl Deserialize for SloOp {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v.as_str() {
            Some("<=") | Some("le") => Ok(SloOp::Le),
            Some(">=") | Some("ge") => Ok(SloOp::Ge),
            _ => Err(serde::__private::unexpected("\"<=\" or \">=\"", v)),
        }
    }
}

/// The outcome of checking one [`SloRule`] against a finished run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// The rule's name.
    pub rule: String,
    /// The rule's metric string.
    pub metric: String,
    /// Comparison direction.
    pub op: SloOp,
    /// The rule's threshold.
    pub threshold: f64,
    /// What the run actually measured (0.0 when the metric could not be
    /// evaluated — see `note`).
    pub observed: f64,
    /// Whether the objective held.
    pub passed: bool,
    /// Empty when the metric evaluated cleanly; otherwise why it could
    /// not be (unknown metric, missing histogram/series, no queries).
    #[serde(default)]
    pub note: String,
}

/// Evaluate every rule of `cfg` against `report`, in order.
pub fn evaluate(cfg: &SloConfig, report: &RunReport) -> Vec<SloVerdict> {
    cfg.rules
        .iter()
        .map(|rule| {
            let (observed, note) = match measure(&rule.metric, report) {
                Ok(v) => (v, String::new()),
                Err(e) => (0.0, e),
            };
            let passed = note.is_empty() && rule.op.holds(observed, rule.value);
            SloVerdict {
                rule: rule.name.clone(),
                metric: rule.metric.clone(),
                op: rule.op,
                threshold: rule.value,
                observed,
                passed,
                note,
            }
        })
        .collect()
}

/// True when any verdict is a breach — the CLI turns this into a
/// nonzero exit code.
pub fn any_breach(verdicts: &[SloVerdict]) -> bool {
    verdicts.iter().any(|v| !v.passed)
}

/// Evaluate one metric string against the report.
fn measure(metric: &str, report: &RunReport) -> Result<f64, String> {
    if metric == "hit_ratio" {
        return Ok(report.pool.hit_ratio());
    }
    if metric == "pages_per_sec" {
        let secs = report.makespan.as_micros() as f64 / 1e6;
        if secs == 0.0 {
            return Err("makespan is zero".to_string());
        }
        return Ok(report.pool.logical_reads as f64 / secs);
    }
    if let Some(q) = parse_stretch(metric) {
        return stretch_quantile(report, q);
    }
    if let Some(rest) = metric.strip_prefix("hist:") {
        let (name, spec) = rest
            .rsplit_once(':')
            .ok_or_else(|| format!("malformed histogram metric `{metric}`"))?;
        let q = parse_quantile(spec)
            .ok_or_else(|| format!("malformed quantile `{spec}` in `{metric}`"))?;
        let h = report
            .metrics
            .histogram(name)
            .ok_or_else(|| format!("histogram `{name}` not recorded by this run"))?;
        return Ok(h.quantile(q) as f64);
    }
    if let Some(rest) = metric.strip_prefix("series:") {
        let (name, agg) = rest
            .rsplit_once(':')
            .ok_or_else(|| format!("malformed series metric `{metric}`"))?;
        let s = report
            .metrics
            .series(name)
            .ok_or_else(|| format!("series `{name}` not recorded by this run"))?;
        if s.points.is_empty() {
            return Err(format!("series `{name}` is empty"));
        }
        return match agg {
            "last" => Ok(s.points[s.points.len() - 1].value),
            "max" => Ok(s.values().fold(f64::NEG_INFINITY, f64::max)),
            _ => Err(format!("unknown series aggregate `{agg}` in `{metric}`")),
        };
    }
    Err(format!("unknown metric `{metric}`"))
}

/// `p99_stretch` / `stretch_p99` → `0.99`.
fn parse_stretch(metric: &str) -> Option<f64> {
    if let Some(q) = metric.strip_suffix("_stretch") {
        return parse_quantile(q);
    }
    if let Some(q) = metric.strip_prefix("stretch_") {
        return parse_quantile(q);
    }
    None
}

/// `p50`/`p99` → quantile in `[0, 1]`.
fn parse_quantile(spec: &str) -> Option<f64> {
    let pct: u32 = spec.strip_prefix('p')?.parse().ok()?;
    if pct > 100 {
        return None;
    }
    Some(pct as f64 / 100.0)
}

/// Nearest-rank quantile of per-query stretch (elapsed over the minimum
/// elapsed among same-name queries).
fn stretch_quantile(report: &RunReport, q: f64) -> Result<f64, String> {
    if report.queries.is_empty() {
        return Err("run executed no queries".to_string());
    }
    let mut stretches: Vec<f64> = Vec::with_capacity(report.queries.len());
    for name in report.query_names() {
        let times: Vec<u64> = report
            .queries
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.elapsed().as_micros())
            .collect();
        let fastest = *times.iter().min().expect("name came from queries");
        for t in times {
            if fastest == 0 {
                stretches.push(1.0);
            } else {
                stretches.push(t as f64 / fastest as f64);
            }
        }
    }
    stretches.sort_by(|a, b| a.partial_cmp(b).expect("stretches are finite"));
    let rank = ((q.clamp(0.0, 1.0) * stretches.len() as f64).ceil() as usize).max(1);
    Ok(stretches[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Breakdown, QueryRecord};
    use crate::query::QueryResult;
    use scanshare_storage::{SimDuration, SimTime};

    fn query(name: &str, start_us: u64, end_us: u64) -> QueryRecord {
        QueryRecord {
            name: name.to_string(),
            stream: 0,
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            cpu: SimDuration::ZERO,
            io_wait: SimDuration::ZERO,
            throttle_wait: SimDuration::ZERO,
            logical_reads: 0,
            physical_reads: 0,
            result: QueryResult::default(),
        }
    }

    fn report() -> RunReport {
        let pool = scanshare_storage::PoolStats {
            logical_reads: 1000,
            hits: 750,
            misses: 250,
            ..Default::default()
        };
        RunReport {
            makespan: SimDuration::from_secs(2),
            stream_elapsed: vec![],
            queries: vec![
                query("Q6", 0, 100_000),
                query("Q6", 0, 150_000),
                query("Q6", 0, 200_000),
                query("Q1", 0, 50_000),
            ],
            breakdown: Breakdown::default(),
            disk: Default::default(),
            read_series: Default::default(),
            seek_series: Default::default(),
            seek_distance_series: Default::default(),
            pool,
            sharing: Default::default(),
            metrics: Default::default(),
            trace: vec![],
            decisions: vec![],
            faults: Default::default(),
            policy: None,
            profile: None,
            slo: vec![],
            push: None,
        }
    }

    fn rule(metric: &str, op: SloOp, value: f64) -> SloRule {
        SloRule {
            name: metric.to_string(),
            metric: metric.to_string(),
            op,
            value,
        }
    }

    #[test]
    fn hit_ratio_and_throughput_metrics() {
        let r = report();
        assert_eq!(measure("hit_ratio", &r).unwrap(), 0.75);
        assert_eq!(measure("pages_per_sec", &r).unwrap(), 500.0);
    }

    #[test]
    fn stretch_is_relative_to_the_fastest_same_name_query() {
        let r = report();
        // Q6 stretches: 1.0, 1.5, 2.0; Q1: 1.0. Sorted: 1.0 1.0 1.5 2.0.
        assert_eq!(measure("p99_stretch", &r).unwrap(), 2.0);
        assert_eq!(measure("stretch_p50", &r).unwrap(), 1.0);
        assert_eq!(measure("p75_stretch", &r).unwrap(), 1.5);
    }

    #[test]
    fn verdicts_respect_the_operator() {
        let cfg = SloConfig {
            rules: vec![
                rule("hit_ratio", SloOp::Ge, 0.6),
                rule("p99_stretch", SloOp::Le, 1.5),
            ],
        };
        let v = evaluate(&cfg, &report());
        assert!(v[0].passed, "0.75 >= 0.6");
        assert!(!v[1].passed, "2.0 > 1.5");
        assert!(any_breach(&v));
        assert_eq!(v[1].observed, 2.0);
        assert!(v[1].note.is_empty());
    }

    #[test]
    fn unknown_metrics_fail_closed_with_a_note() {
        let cfg = SloConfig {
            rules: vec![
                rule("hti_ratio", SloOp::Ge, 0.0),
                rule("hist:no.such:p99", SloOp::Le, 1e9),
                rule("series:no.such:last", SloOp::Le, 1e9),
            ],
        };
        let v = evaluate(&cfg, &report());
        for verdict in &v {
            assert!(!verdict.passed, "{verdict:?}");
            assert!(!verdict.note.is_empty(), "{verdict:?}");
        }
        assert!(v[0].note.contains("unknown metric"));
        assert!(v[1].note.contains("not recorded"));
    }

    #[test]
    fn rules_round_trip_through_json() {
        let cfg = SloConfig {
            rules: vec![rule("hit_ratio", SloOp::Ge, 0.6)],
        };
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("\">=\""), "{json}");
        let back: SloConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // Lowercase aliases parse too.
        let lax: SloOp = serde_json::from_str("\"le\"").unwrap();
        assert_eq!(lax, SloOp::Le);
    }

    #[test]
    fn empty_config_is_default_and_empty() {
        assert!(SloConfig::default().is_empty());
        let cfg: SloConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(cfg, SloConfig::default());
    }
}
