//! Cost model of the simulated machine.

use scanshare_storage::{DiskConfig, SimDuration};
use serde::{Deserialize, Serialize};

/// Per-row/per-page CPU cost of a scan — the knob that makes a query
/// CPU-intensive (TPC-H Q1, heavy aggregation) or I/O-intensive (Q6,
/// a cheap predicate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuClass {
    /// CPU time per row visited.
    pub per_row: SimDuration,
    /// CPU time per page visited (decode, latching, bookkeeping).
    pub per_page: SimDuration,
}

impl CpuClass {
    /// A cheap, I/O-bound scan (Q6-like): predicate evaluation only.
    /// ~180µs CPU per 150-row page against ~450µs of cold I/O — alone it
    /// is I/O-bound, but three such scans sharing one page stream become
    /// CPU-bound, which is exactly the Figure 15 shift.
    pub fn io_bound() -> Self {
        CpuClass {
            per_row: SimDuration::from_micros(1),
            per_page: SimDuration::from_micros(30),
        }
    }

    /// A CPU-bound scan (Q1-like): heavy per-row aggregation, ~2x the
    /// cold I/O cost per page.
    pub fn cpu_bound() -> Self {
        CpuClass {
            per_row: SimDuration::from_micros(6),
            per_page: SimDuration::from_micros(30),
        }
    }

    /// A moderate mix, near parity with cold I/O.
    pub fn balanced() -> Self {
        CpuClass {
            per_row: SimDuration::from_micros(3),
            per_page: SimDuration::from_micros(30),
        }
    }

    /// Total CPU time for an extent of `pages` pages and `rows` rows.
    pub fn extent_cost(&self, pages: u64, rows: u64) -> SimDuration {
        SimDuration::from_micros(
            self.per_row.as_micros() * rows + self.per_page.as_micros() * pages,
        )
    }
}

/// Machine-level engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of CPUs (the paper's boxes have 4).
    pub n_cpus: u32,
    /// Pages per extent — the scan advance unit and the location-update
    /// cadence ("we perform calls to updateSISCANLocation at every extent
    /// boundary").
    pub extent_pages: u32,
    /// Kernel/system CPU time charged per physical read request.
    pub sys_per_request: SimDuration,
    /// Disk cost model.
    pub disk: DiskConfig,
    /// Disks in the striped array (the paper's AIX box has 16 SSA
    /// disks). 1 = the calibrated single-disk baseline.
    pub n_disks: u32,
    /// Extents to prefetch ahead of a sequential scan (0 = off). With
    /// prefetch on, the next extent's disk read is issued as soon as the
    /// current one arrives, overlapping I/O with row processing — how
    /// the paper's DB2 actually reads ("prefetch extents" are its unit
    /// of throttling distance). Off by default so the headline
    /// experiments stay at the calibrated baseline; `exp_prefetch`
    /// re-runs Table 1 with it on.
    pub prefetch_extents: u32,
    /// Ring size (in pages) through which an *unshared* large scan
    /// cycles its buffers, mirroring vanilla engines' scan-resistant
    /// buffer management (e.g. PostgreSQL's ring buffer). Applies to
    /// scans larger than a quarter of the pool; `0` disables the ring.
    pub seq_ring_pages: u32,
    /// Let table scans participate in sharing (the ICDE 2007 scope).
    pub share_table_scans: bool,
    /// Let index scans participate in sharing (the VLDB 2007 extension).
    pub share_index_scans: bool,
    /// Virtual-time interval at which the run's observability sampler
    /// records pool hit-ratio, eviction, seek-distance, per-group
    /// distance, and per-scan slowdown series into the metrics registry.
    /// Zero disables interval sampling (aggregates are still recorded).
    #[serde(default = "default_metrics_interval")]
    pub metrics_interval: SimDuration,
}

/// Serde default for [`EngineConfig::metrics_interval`], so specs written
/// before the observability layer still deserialize.
fn default_metrics_interval() -> SimDuration {
    SimDuration::from_millis(100)
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_cpus: 4,
            extent_pages: 16,
            sys_per_request: SimDuration::from_micros(80),
            disk: DiskConfig::default(),
            n_disks: 1,
            prefetch_extents: 0,
            seq_ring_pages: 32,
            share_table_scans: true,
            share_index_scans: true,
            metrics_interval: default_metrics_interval(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_cost_combines_rows_and_pages() {
        let c = CpuClass {
            per_row: SimDuration::from_micros(2),
            per_page: SimDuration::from_micros(10),
        };
        assert_eq!(c.extent_cost(16, 100).as_micros(), 2 * 100 + 10 * 16);
    }

    #[test]
    fn classes_are_ordered_by_cpu_weight() {
        let rows_per_extent = 16 * 150;
        let io = CpuClass::io_bound().extent_cost(16, rows_per_extent);
        let mid = CpuClass::balanced().extent_cost(16, rows_per_extent);
        let cpu = CpuClass::cpu_bound().extent_cost(16, rows_per_extent);
        assert!(io < mid && mid < cpu);
    }

    #[test]
    fn default_engine_config_matches_the_papers() {
        let c = EngineConfig::default();
        assert_eq!(c.n_cpus, 4);
        assert_eq!(c.extent_pages, 16);
    }
}
