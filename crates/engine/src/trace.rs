//! Execution tracing: a structured event log of every sharing decision.
//!
//! Attached to a run via [`crate::workload::WorkloadSpec`]'s engine
//! config, the trace records placements, wraps, throttle waits, and scan
//! lifecycles with their virtual timestamps — the raw material for
//! debugging a sharing decision ("why did scan 7 start in the middle?")
//! and for the `adaptive_throttling`-style walkthroughs.

use scanshare::{Role, ScanId, StartDecision};
use scanshare_storage::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// One traced event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A scan registered with the manager.
    ScanStarted {
        /// Manager-assigned id.
        scan: ScanId,
        /// Query name.
        query: String,
        /// Stream index.
        stream: usize,
        /// Whether placement joined another scan ("join") or started at
        /// the range beginning ("fresh").
        placement: String,
    },
    /// A scan entered its second (wrap-around) phase.
    ScanWrapped {
        /// The wrapping scan.
        scan: ScanId,
    },
    /// The manager injected a throttle wait into a leader.
    Throttled {
        /// The throttled scan.
        scan: ScanId,
        /// Injected wait.
        wait: SimDuration,
        /// The scan's role at that moment.
        role: String,
    },
    /// A scan finished its range.
    ScanFinished {
        /// The finished scan.
        scan: ScanId,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// Shared, thread-safe event sink with a bounded buffer (oldest events
/// are dropped past the cap, so long runs cannot exhaust memory).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

#[derive(Debug)]
struct TracerInner {
    records: Vec<TraceRecord>,
    cap: usize,
    dropped: u64,
}

impl Tracer {
    /// Create a tracer retaining at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                records: Vec::new(),
                cap: cap.max(1),
                dropped: 0,
            })),
        }
    }

    /// Record an event.
    pub fn record(&self, at: SimTime, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("tracer lock");
        if inner.records.len() >= inner.cap {
            inner.records.remove(0);
            inner.dropped += 1;
        }
        inner.records.push(TraceRecord { at, event });
    }

    /// Snapshot of the retained events, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.lock().expect("tracer lock").records.clone()
    }

    /// Events dropped due to the cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("tracer lock").dropped
    }

    /// Human-readable rendering of the retained events.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            use std::fmt::Write;
            let _ = match &r.event {
                TraceEvent::ScanStarted {
                    scan,
                    query,
                    stream,
                    placement,
                } => writeln!(
                    out,
                    "{} scan {:>3} start   {query} (stream {stream}, {placement})",
                    r.at, scan.0
                ),
                TraceEvent::ScanWrapped { scan } => {
                    writeln!(out, "{} scan {:>3} wrap", r.at, scan.0)
                }
                TraceEvent::Throttled { scan, wait, role } => writeln!(
                    out,
                    "{} scan {:>3} throttle {wait} ({role})",
                    r.at, scan.0
                ),
                TraceEvent::ScanFinished { scan } => {
                    writeln!(out, "{} scan {:>3} finish", r.at, scan.0)
                }
            };
        }
        out
    }
}

/// Helper: describe a placement decision for the trace.
pub fn placement_label(d: &StartDecision) -> String {
    match d {
        StartDecision::FromStart => "fresh".to_string(),
        StartDecision::JoinAt {
            scan: Some(s),
            location,
            ..
        } => format!("join scan {} @ key {}", s.0, location.key),
        StartDecision::JoinAt {
            scan: None,
            location,
            back_up_pages,
        } => format!(
            "join finished @ key {} (-{} pages)",
            location.key, back_up_pages
        ),
    }
}

/// Helper: describe a role for the trace.
pub fn role_label(r: Role) -> &'static str {
    match r {
        Role::Leader => "leader",
        Role::Trailer => "trailer",
        Role::Middle => "middle",
        Role::Singleton => "singleton",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_events() {
        let t = Tracer::new(16);
        t.record(
            SimTime::from_millis(5),
            TraceEvent::ScanStarted {
                scan: ScanId(1),
                query: "Q6".into(),
                stream: 0,
                placement: "fresh".into(),
            },
        );
        t.record(
            SimTime::from_millis(9),
            TraceEvent::Throttled {
                scan: ScanId(1),
                wait: SimDuration::from_millis(3),
                role: "leader".into(),
            },
        );
        t.record(SimTime::from_millis(20), TraceEvent::ScanFinished { scan: ScanId(1) });
        let records = t.records();
        assert_eq!(records.len(), 3);
        assert!(records.windows(2).all(|w| w[0].at <= w[1].at));
        let text = t.render();
        assert!(text.contains("Q6"));
        assert!(text.contains("throttle"));
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn cap_drops_oldest() {
        let t = Tracer::new(2);
        for i in 0..5 {
            t.record(
                SimTime::from_millis(i),
                TraceEvent::ScanFinished { scan: ScanId(i) },
            );
        }
        let r = t.records();
        assert_eq!(r.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(
            r[0].event,
            TraceEvent::ScanFinished { scan: ScanId(3) }
        );
    }

    #[test]
    fn labels_describe_decisions() {
        use scanshare::Location;
        assert_eq!(placement_label(&StartDecision::FromStart), "fresh");
        let j = StartDecision::JoinAt {
            location: Location::new(7, 9),
            scan: Some(ScanId(4)),
            back_up_pages: 0,
        };
        assert_eq!(placement_label(&j), "join scan 4 @ key 7");
        let f = StartDecision::JoinAt {
            location: Location::new(7, 9),
            scan: None,
            back_up_pages: 320,
        };
        assert!(placement_label(&f).contains("finished"));
        assert_eq!(role_label(Role::Leader), "leader");
    }

    #[test]
    fn tracer_is_cheap_to_clone_and_share() {
        let t = Tracer::new(8);
        let t2 = t.clone();
        t2.record(SimTime::ZERO, TraceEvent::ScanFinished { scan: ScanId(0) });
        assert_eq!(t.records().len(), 1);
    }
}
