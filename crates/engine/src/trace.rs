//! Execution tracing: a structured event log of every sharing decision.
//!
//! Attached to a run via [`crate::workload::WorkloadSpec`]'s engine
//! config, the trace records placements, wraps, throttle waits, and scan
//! lifecycles with their virtual timestamps — the raw material for
//! debugging a sharing decision ("why did scan 7 start in the middle?")
//! and for the `adaptive_throttling`-style walkthroughs.

use scanshare::{Role, ScanId, StartDecision};
use scanshare_storage::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One traced event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A scan registered with the manager.
    ScanStarted {
        /// Manager-assigned id.
        scan: ScanId,
        /// Query name.
        query: String,
        /// Stream index.
        stream: usize,
        /// Whether placement joined another scan ("join") or started at
        /// the range beginning ("fresh").
        placement: String,
    },
    /// A scan entered its second (wrap-around) phase.
    ScanWrapped {
        /// The wrapping scan.
        scan: ScanId,
    },
    /// The manager injected a throttle wait into a leader.
    Throttled {
        /// The throttled scan.
        scan: ScanId,
        /// Injected wait.
        wait: SimDuration,
        /// The scan's role at that moment.
        role: String,
    },
    /// A scan finished its range.
    ScanFinished {
        /// The finished scan.
        scan: ScanId,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// Shared, thread-safe event sink with a bounded buffer (oldest events
/// are dropped past the cap, so long runs cannot exhaust memory).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

#[derive(Debug)]
struct TracerInner {
    /// Ring buffer: O(1) drop-oldest once the cap is reached.
    records: VecDeque<TraceRecord>,
    cap: usize,
    dropped: u64,
}

impl Tracer {
    /// Create a tracer retaining at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                records: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
            })),
        }
    }

    /// Record an event.
    pub fn record(&self, at: SimTime, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("tracer lock");
        if inner.records.len() >= inner.cap {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(TraceRecord { at, event });
    }

    /// Snapshot of the retained events, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner
            .lock()
            .expect("tracer lock")
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Events dropped due to the cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("tracer lock").dropped
    }

    /// The retained events as JSON lines, one event object per line —
    /// parse back with [`records_from_jsonl`].
    pub fn to_jsonl(&self) -> String {
        records_to_jsonl(&self.records())
    }

    /// Human-readable rendering of the retained events. Ends with a
    /// `(dropped N older events)` line when the cap was exceeded.
    pub fn render(&self) -> String {
        let mut out = render_records(&self.records());
        let dropped = self.dropped();
        if dropped > 0 {
            use std::fmt::Write;
            let _ = writeln!(out, "(dropped {dropped} older events)");
        }
        out
    }
}

/// Serialize records as JSON lines (one `TraceRecord` object per line).
pub fn records_to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("trace record serializes"));
        out.push('\n');
    }
    out
}

/// Parse a JSON-lines trace back into records. Blank lines are skipped;
/// the error names the offending line.
pub fn records_from_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

/// Human-readable rendering of a record slice.
pub fn render_records(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        use std::fmt::Write;
        let _ = match &r.event {
            TraceEvent::ScanStarted {
                scan,
                query,
                stream,
                placement,
            } => writeln!(
                out,
                "{} scan {:>3} start   {query} (stream {stream}, {placement})",
                r.at, scan.0
            ),
            TraceEvent::ScanWrapped { scan } => {
                writeln!(out, "{} scan {:>3} wrap", r.at, scan.0)
            }
            TraceEvent::Throttled { scan, wait, role } => {
                writeln!(out, "{} scan {:>3} throttle {wait} ({role})", r.at, scan.0)
            }
            TraceEvent::ScanFinished { scan } => {
                writeln!(out, "{} scan {:>3} finish", r.at, scan.0)
            }
        };
    }
    out
}

/// One scan's lifecycle, reassembled from its trace events: a span from
/// start to finish with the wraps and throttle waits attributed to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanSpan {
    /// The scan.
    pub scan: ScanId,
    /// Query name, from the start event.
    pub query: String,
    /// Stream index, from the start event.
    pub stream: usize,
    /// Placement label, from the start event.
    pub placement: String,
    /// When the scan started (`None` if the start event was dropped).
    pub start: Option<SimTime>,
    /// When the scan finished (`None` if still running or dropped).
    pub finish: Option<SimTime>,
    /// Times the scan wrapped to its second phase.
    pub wraps: Vec<SimTime>,
    /// Number of throttle waits injected.
    pub throttles: u64,
    /// Total injected throttle wait.
    pub throttle_wait: SimDuration,
}

impl ScanSpan {
    /// Start-to-finish duration, when both ends were traced.
    pub fn elapsed(&self) -> Option<SimDuration> {
        Some(self.finish?.since(self.start?))
    }

    fn empty(scan: ScanId) -> Self {
        ScanSpan {
            scan,
            query: String::new(),
            stream: 0,
            placement: String::new(),
            start: None,
            finish: None,
            wraps: Vec::new(),
            throttles: 0,
            throttle_wait: SimDuration::ZERO,
        }
    }
}

/// Reassemble per-scan spans from an event log, in scan-id order.
pub fn spans(records: &[TraceRecord]) -> Vec<ScanSpan> {
    let mut by_scan: Vec<ScanSpan> = Vec::new();
    let span_of = |id: ScanId, by_scan: &mut Vec<ScanSpan>| -> usize {
        if let Some(i) = by_scan.iter().position(|s| s.scan == id) {
            return i;
        }
        by_scan.push(ScanSpan::empty(id));
        by_scan.len() - 1
    };
    for r in records {
        match &r.event {
            TraceEvent::ScanStarted {
                scan,
                query,
                stream,
                placement,
            } => {
                let i = span_of(*scan, &mut by_scan);
                let s = &mut by_scan[i];
                s.query = query.clone();
                s.stream = *stream;
                s.placement = placement.clone();
                s.start = Some(r.at);
            }
            TraceEvent::ScanWrapped { scan } => {
                let i = span_of(*scan, &mut by_scan);
                by_scan[i].wraps.push(r.at);
            }
            TraceEvent::Throttled { scan, wait, .. } => {
                let i = span_of(*scan, &mut by_scan);
                by_scan[i].throttles += 1;
                by_scan[i].throttle_wait += *wait;
            }
            TraceEvent::ScanFinished { scan } => {
                let i = span_of(*scan, &mut by_scan);
                by_scan[i].finish = Some(r.at);
            }
        }
    }
    by_scan.sort_by_key(|s| s.scan);
    by_scan
}

/// Helper: describe a placement decision for the trace.
pub fn placement_label(d: &StartDecision) -> String {
    match d {
        StartDecision::FromStart => "fresh".to_string(),
        StartDecision::JoinAt {
            scan: Some(s),
            location,
            ..
        } => format!("join scan {} @ key {}", s.0, location.key),
        StartDecision::JoinAt {
            scan: None,
            location,
            back_up_pages,
        } => format!(
            "join finished @ key {} (-{} pages)",
            location.key, back_up_pages
        ),
    }
}

/// Helper: describe a role for the trace.
pub fn role_label(r: Role) -> &'static str {
    match r {
        Role::Leader => "leader",
        Role::Trailer => "trailer",
        Role::Middle => "middle",
        Role::Singleton => "singleton",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_events() {
        let t = Tracer::new(16);
        t.record(
            SimTime::from_millis(5),
            TraceEvent::ScanStarted {
                scan: ScanId(1),
                query: "Q6".into(),
                stream: 0,
                placement: "fresh".into(),
            },
        );
        t.record(
            SimTime::from_millis(9),
            TraceEvent::Throttled {
                scan: ScanId(1),
                wait: SimDuration::from_millis(3),
                role: "leader".into(),
            },
        );
        t.record(
            SimTime::from_millis(20),
            TraceEvent::ScanFinished { scan: ScanId(1) },
        );
        let records = t.records();
        assert_eq!(records.len(), 3);
        assert!(records.windows(2).all(|w| w[0].at <= w[1].at));
        let text = t.render();
        assert!(text.contains("Q6"));
        assert!(text.contains("throttle"));
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn cap_drops_oldest() {
        let t = Tracer::new(2);
        for i in 0..5 {
            t.record(
                SimTime::from_millis(i),
                TraceEvent::ScanFinished { scan: ScanId(i) },
            );
        }
        let r = t.records();
        assert_eq!(r.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(r[0].event, TraceEvent::ScanFinished { scan: ScanId(3) });
    }

    #[test]
    fn labels_describe_decisions() {
        use scanshare::Location;
        assert_eq!(placement_label(&StartDecision::FromStart), "fresh");
        let j = StartDecision::JoinAt {
            location: Location::new(7, 9),
            scan: Some(ScanId(4)),
            back_up_pages: 0,
        };
        assert_eq!(placement_label(&j), "join scan 4 @ key 7");
        let f = StartDecision::JoinAt {
            location: Location::new(7, 9),
            scan: None,
            back_up_pages: 320,
        };
        assert!(placement_label(&f).contains("finished"));
        assert_eq!(role_label(Role::Leader), "leader");
    }

    #[test]
    fn render_surfaces_the_dropped_count() {
        let t = Tracer::new(2);
        for i in 0..5 {
            t.record(
                SimTime::from_millis(i),
                TraceEvent::ScanFinished { scan: ScanId(i) },
            );
        }
        let text = t.render();
        assert!(text.contains("(dropped 3 older events)"), "got: {text}");
        // An un-capped tracer renders no dropped line.
        assert!(!Tracer::new(16).render().contains("dropped"));
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let t = Tracer::new(16);
        t.record(
            SimTime::from_millis(1),
            TraceEvent::ScanStarted {
                scan: ScanId(0),
                query: "Q6".into(),
                stream: 2,
                placement: "join scan 1 @ key 42".into(),
            },
        );
        t.record(
            SimTime::from_millis(2),
            TraceEvent::ScanWrapped { scan: ScanId(0) },
        );
        t.record(
            SimTime::from_millis(3),
            TraceEvent::Throttled {
                scan: ScanId(0),
                wait: SimDuration::from_micros(1234),
                role: "leader".into(),
            },
        );
        t.record(
            SimTime::from_millis(4),
            TraceEvent::ScanFinished { scan: ScanId(0) },
        );
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        let back = records_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, t.records());
        // Blank lines are tolerated; garbage is reported with its line.
        assert_eq!(records_from_jsonl("\n\n").unwrap(), vec![]);
        let err = records_from_jsonl("{not json}").unwrap_err();
        assert!(err.contains("line 1"), "got: {err}");
    }

    #[test]
    fn spans_reassemble_scan_lifecycles() {
        let t = Tracer::new(64);
        t.record(
            SimTime::from_millis(10),
            TraceEvent::ScanStarted {
                scan: ScanId(1),
                query: "Q6".into(),
                stream: 0,
                placement: "fresh".into(),
            },
        );
        t.record(
            SimTime::from_millis(12),
            TraceEvent::ScanStarted {
                scan: ScanId(2),
                query: "Q6".into(),
                stream: 1,
                placement: "join scan 1 @ key 5".into(),
            },
        );
        t.record(
            SimTime::from_millis(20),
            TraceEvent::Throttled {
                scan: ScanId(1),
                wait: SimDuration::from_millis(3),
                role: "leader".into(),
            },
        );
        t.record(
            SimTime::from_millis(30),
            TraceEvent::Throttled {
                scan: ScanId(1),
                wait: SimDuration::from_millis(2),
                role: "leader".into(),
            },
        );
        t.record(
            SimTime::from_millis(40),
            TraceEvent::ScanWrapped { scan: ScanId(2) },
        );
        t.record(
            SimTime::from_millis(50),
            TraceEvent::ScanFinished { scan: ScanId(1) },
        );
        t.record(
            SimTime::from_millis(60),
            TraceEvent::ScanFinished { scan: ScanId(2) },
        );
        let spans = spans(&t.records());
        assert_eq!(spans.len(), 2);
        let s1 = &spans[0];
        assert_eq!(s1.scan, ScanId(1));
        assert_eq!(s1.query, "Q6");
        assert_eq!(s1.throttles, 2);
        assert_eq!(s1.throttle_wait, SimDuration::from_millis(5));
        assert_eq!(s1.elapsed(), Some(SimDuration::from_millis(40)));
        assert!(s1.wraps.is_empty());
        let s2 = &spans[1];
        assert_eq!(s2.wraps, vec![SimTime::from_millis(40)]);
        assert_eq!(s2.stream, 1);
        assert!(s2.placement.contains("join"));
    }

    #[test]
    fn spans_tolerate_dropped_start_events() {
        // Only a finish survived the cap: the span exists but has no
        // start, so elapsed is unknown.
        let records = vec![TraceRecord {
            at: SimTime::from_millis(9),
            event: TraceEvent::ScanFinished { scan: ScanId(7) },
        }];
        let s = spans(&records);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].start, None);
        assert_eq!(s[0].elapsed(), None);
        assert_eq!(s[0].finish, Some(SimTime::from_millis(9)));
    }

    #[test]
    fn tracer_is_cheap_to_clone_and_share() {
        let t = Tracer::new(8);
        let t2 = t.clone();
        t2.record(SimTime::ZERO, TraceEvent::ScanFinished { scan: ScanId(0) });
        assert_eq!(t.records().len(), 1);
    }
}
