//! Push-based shared-scan delivery: one pool fix per page per group.
//!
//! In pull mode every scan of a cohort steps its own cursor and fixes
//! its own pages — N scans over the same table cost ≈ N pool fixes per
//! shared page, and the sharing manager spends its effort keeping the
//! cursors close enough that those fixes are hits. Push mode removes
//! the N cursors altogether: per (table, range) cohort a single *group
//! driver* cursor performs `fetch_extent` → fix → unpin exactly once
//! per extent and hands a borrowed view of the fixed pages to every
//! attached consumer's compiled row pipeline before release.
//!
//! The driver is not a task of its own: the event loop stays one event
//! per stream, and the *owning* consumer's events advance the shared
//! cursor. Riders park on the driver's next wake-up and pay only their
//! CPU share. A late joiner replays the prefix it missed through a
//! private, unmanaged pull cursor (`Plan::prefix`) driven by its own
//! stream events, concurrently with riding the ongoing lap — push's
//! analogue of the pull executor's wrap phase.
//!
//! Throttling throttles the *driver*: each extent's `update_location`
//! calls report every consumer at the same location (so groups, roles
//! and provenance stay meaningful), but only the owner's returned wait
//! and release priority are applied — there is no leader-trailer drift
//! to arbitrate inside a cohort, because there is only one cursor.
//!
//! Fault handling mirrors pull's graceful degradation. A read fault on
//! the shared cursor evicts the owner (partial answer, same eviction
//! reason format) and hands the cursor to the first surviving rider —
//! recorded as a [`scanshare::DecisionEvent::DriverHandoff`] — so the
//! cohort keeps its single-fix property across the failure. A fault on
//! a private catch-up cursor evicts only that consumer.

use std::collections::HashMap;

use scanshare::{ObjectId, PagePriority, ScanId, ScanKind};
use scanshare_storage::{FileId, PageId, SimTime, StorageError};

use crate::cost::CpuClass;
use crate::db::Database;
use crate::error::EngineResult;
use crate::exec::ExecWorld;
use crate::metrics::PushSummary;
use crate::query::{QueryResult, ScanSpec};
use crate::scan_exec::{
    consume_all_rows, plan_scan, AggState, Plan, PlannedScan, RowPipeline, ScanMetrics,
};

/// Handle of one admitted push consumer (index into the engine's
/// registry). Handed back to the stream task in place of a pull
/// [`crate::scan_exec::ScanExec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsumerId(usize);

/// Identity of a shareable page stream: same object, access kind and
/// key range ⇒ same stream of extents. Like pull-mode grouping, one key
/// may have several live drivers (the policy can refuse late attaches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DriverKey {
    object: u64,
    kind: u8,
    start_key: i64,
    end_key: i64,
}

/// One shared cursor: the *advance the cursor* half of a whole cohort.
#[derive(Debug)]
struct GroupDriver {
    plan: Plan,
    file: FileId,
    object: ObjectId,
    /// Consumer whose stream events step the cursor.
    owner: usize,
    /// Riding consumers, in attach order (owner excluded).
    attached: Vec<usize>,
    /// When the cursor next advances — what parked riders wait on.
    next_wake: SimTime,
    /// The lap is over (or the cohort died out); consumers finalize at
    /// their next event.
    done: bool,
}

/// One admitted scan: the *consume rows* half, plus its catch-up state.
struct Consumer {
    scan: ScanId,
    driver: usize,
    pipeline: RowPipeline,
    width: usize,
    cpu: CpuClass,
    agg: AggState,
    metrics: ScanMetrics,
    /// When this consumer's share of the last delivered extent is
    /// processed; it cannot finish (or absorb the next extent) earlier.
    ready_at: SimTime,
    /// Private pull cursor over the prefix missed before attaching.
    catchup: Option<Plan>,
    /// Died to a fault: finished with a partial answer.
    aborted: bool,
    /// Placement narration for the trace (`push-driver`, `push-rider`).
    label: String,
}

/// The per-run push-delivery engine: driver registry, consumer registry
/// and the run-level [`PushSummary`] counters. Owned by the workload
/// driver; one instance serves every stream of the run.
#[derive(Default)]
pub struct PushEngine {
    drivers: Vec<GroupDriver>,
    consumers: Vec<Consumer>,
    by_key: HashMap<DriverKey, Vec<usize>>,
    summary: PushSummary,
    // Reusable step buffers (drivers and catch-up cursors never step
    // concurrently within one call).
    ids: Vec<PageId>,
    rids: Vec<(PageId, u16)>,
    pages: Vec<(PageId, u32)>,
    prefetch: Vec<PageId>,
    faults: Vec<crate::faults::FaultEvent>,
}

impl PushEngine {
    /// An engine with no drivers yet.
    pub fn new() -> PushEngine {
        PushEngine::default()
    }

    /// Run-level counters so far (stamped into the report at the end).
    pub fn summary(&self) -> PushSummary {
        self.summary.clone()
    }

    /// The manager id of an admitted consumer.
    pub fn scan_id(&self, id: ConsumerId) -> ScanId {
        self.consumers[id.0].scan
    }

    /// How the consumer joined its cohort (for tracing).
    pub fn placement_label(&self, id: ConsumerId) -> &str {
        &self.consumers[id.0].label
    }

    /// The finished consumer's answer and measurements.
    pub fn take_result(&mut self, id: ConsumerId) -> (QueryResult, ScanMetrics) {
        let c = &mut self.consumers[id.0];
        (c.agg.result(), std::mem::take(&mut c.metrics))
    }

    /// Try to admit `spec` into push delivery at time `now`. Returns
    /// `None` when the spec is not push-shareable — RID fetches (their
    /// page sets are per-predicate, not a shareable linear range),
    /// order-requiring scans, and kinds excluded by the scope toggles —
    /// in which case the caller falls back to a pull [`crate::scan_exec::ScanExec`].
    ///
    /// Placement is *not* consulted: attaching to a driver replaces the
    /// start-location decision (the driver's cursor is the location).
    /// The policy still arbitrates via
    /// [`scanshare::ScanSharingManager::attach_push`]: a joiner that
    /// missed too much of the ongoing lap founds a second driver
    /// instead, exactly like pull mode's multiple groups per table.
    pub fn admit(
        &mut self,
        db: &Database,
        world: &mut ExecWorld<'_>,
        spec: &ScanSpec,
        now: SimTime,
    ) -> EngineResult<Option<ConsumerId>> {
        let Some(mgr) = world.mgr.clone() else {
            return Ok(None);
        };
        let shareable = !spec.require_order
            && match &spec.access {
                crate::query::Access::FullTable => world.cfg.share_table_scans,
                crate::query::Access::IndexRange { .. } => world.cfg.share_index_scans,
                crate::query::Access::RidRange { .. } => false,
            };
        if !shareable {
            return Ok(None);
        }
        let PlannedScan {
            file,
            schema,
            plan,
            desc,
        } = plan_scan(db, world, spec)?;
        if plan.is_rid() {
            return Ok(None);
        }
        let key = DriverKey {
            object: desc.object.0,
            kind: match desc.kind {
                ScanKind::Table => 0,
                ScanKind::Index => 1,
            },
            start_key: desc.start_key,
            end_key: desc.end_key,
        };
        let object = desc.object;
        let (scan, _placement) = mgr.start_scan(desc, now);

        // First live driver on this stream the policy lets us attach to;
        // otherwise found another one.
        let cid = self.consumers.len();
        let mut joined = None;
        for &di in self.by_key.get(&key).into_iter().flatten() {
            let drv = &self.drivers[di];
            if drv.done {
                continue;
            }
            let missed = drv.plan.visited_pages();
            if mgr.attach_push(missed, drv.plan.total_pages()) {
                joined = Some((di, missed));
                break;
            }
        }
        let (driver, label, catchup) = match joined {
            Some((di, missed)) => {
                let drv = &mut self.drivers[di];
                drv.attached.push(cid);
                self.summary.attaches += 1;
                let owner_scan = self.consumers[drv.owner].scan;
                let label = format!("push-rider(driver s{}, catch-up {missed}p)", owner_scan.0);
                let catchup = (missed > 0).then(|| drv.plan.prefix());
                mgr.note_driver_attach(
                    scan,
                    owner_scan,
                    object,
                    now,
                    missed,
                    drv.attached.len() + 1,
                );
                (di, label, catchup)
            }
            None => {
                let di = self.drivers.len();
                self.drivers.push(GroupDriver {
                    plan,
                    file,
                    object,
                    owner: cid,
                    attached: Vec::new(),
                    next_wake: now,
                    done: false,
                });
                self.by_key.entry(key).or_default().push(di);
                self.summary.drivers += 1;
                mgr.note_driver_attach(scan, scan, object, now, 0, 1);
                (di, "push-driver".to_string(), None)
            }
        };
        self.consumers.push(Consumer {
            scan,
            driver,
            pipeline: RowPipeline::compile(&spec.pred, &spec.agg, &schema),
            width: schema.row_width(),
            cpu: spec.cpu,
            agg: AggState::new(spec.agg.sum_cols.len()),
            metrics: ScanMetrics::default(),
            ready_at: now,
            catchup,
            aborted: false,
            label,
        });
        Ok(Some(ConsumerId(cid)))
    }

    /// Advance consumer `id` by one event. Mirrors
    /// [`crate::scan_exec::ScanExec::step`]'s contract: the time of the
    /// consumer's next event, or `None` once it has finished (the
    /// manager is deregistered at that point and
    /// [`PushEngine::take_result`] yields the answer).
    pub fn step_consumer(
        &mut self,
        world: &mut ExecWorld<'_>,
        id: ConsumerId,
        now: SimTime,
    ) -> EngineResult<Option<SimTime>> {
        let ci = id.0;
        if self.consumers[ci].aborted {
            return Ok(None);
        }
        let di = self.consumers[ci].driver;
        let driving = self.drivers[di].owner == ci && !self.drivers[di].done;
        if driving {
            return self.step_driver(world, di, now);
        }
        // Catch-up first: the missed prefix replays while the lap goes
        // on (the owner interleaves its catch-up after the lap is done).
        if self.consumers[ci].catchup.is_some() {
            return self.step_catchup(world, ci, now);
        }
        let c = &self.consumers[ci];
        if self.drivers[di].done && now >= c.ready_at {
            return Ok(self.finish_consumer(world, ci, now));
        }
        // Parked: wake when the cursor next moves or our CPU share of
        // the last extent completes, whichever is later. The +1µs floor
        // guarantees forward progress on ties (heap order breaks the
        // tie by sequence, and the driver may advance at exactly
        // `next_wake`).
        let wake = self.drivers[di]
            .next_wake
            .max(c.ready_at)
            .max(now + scanshare_storage::SimDuration::from_micros(1));
        Ok(Some(wake))
    }

    /// One extent of the shared cursor, driven by the owner's event.
    fn step_driver(
        &mut self,
        world: &mut ExecWorld<'_>,
        di: usize,
        now: SimTime,
    ) -> EngineResult<Option<SimTime>> {
        let oi = self.drivers[di].owner;
        if self.drivers[di].plan.done() {
            // Lap over: riders finalize at their next wake; the owner
            // replays its own catch-up (if it inherited one via a
            // handoff... no: via attach then promotion) before ending.
            self.drivers[di].done = true;
            return self.step_consumer(world, ConsumerId(oi), now);
        }

        // Gather + fetch once for the whole cohort.
        let mut ids = std::mem::take(&mut self.ids);
        let mut rids = std::mem::take(&mut self.rids);
        let mut pages = std::mem::take(&mut self.pages);
        ids.clear();
        rids.clear();
        let (work, location, units, _wrap) = self.drivers[di].plan.gather(
            self.drivers[di].file,
            world.cfg.extent_pages,
            &mut ids,
            &mut rids,
        );
        let fetched = world.fetch_extent(now, &ids, &mut pages);
        self.report_faults(world, oi, now);
        let fetch = match fetched {
            Ok(f) => f,
            Err(StorageError::ReadFault {
                device,
                addr,
                transient,
            }) => {
                self.ids = ids;
                self.rids = rids;
                self.pages = pages;
                self.abort_owner(world, di, now, device, addr, transient);
                return Ok(None);
            }
            Err(e) => {
                self.ids = ids;
                self.rids = rids;
                self.pages = pages;
                return Err(e.into());
            }
        };
        let n_pages = ids.len() as u64;
        self.summary.extents_delivered += 1;
        self.summary.pages_delivered += n_pages;
        {
            let o = &mut self.consumers[oi];
            o.metrics.io_wait += fetch.ready.since(now);
            o.metrics.logical_reads += n_pages;
            o.metrics.physical_reads += fetch.misses;
        }

        // Every attached consumer's pipeline runs over the fixed pages
        // before release: owner first, then riders in attach order. Each
        // pays its own CPU share; the shared pool fix is paid once above.
        let pages_advanced = self.drivers[di].plan.pages_advanced(work, units);
        let mgr = world.mgr.clone();
        let mut owner_next = fetch.ready;
        let mut priority = PagePriority::Normal;
        let n_attached = self.drivers[di].attached.len();
        for k in 0..=n_attached {
            let ci = if k == 0 {
                oi
            } else {
                self.drivers[di].attached[k - 1]
            };
            let c = &mut self.consumers[ci];
            let rows = consume_all_rows(&world.pool, &pages, c.width, &c.pipeline, &mut c.agg)?;
            let cost = c.cpu.extent_cost(n_pages, rows);
            let done = world.run_cpu(fetch.ready, cost);
            c.metrics.cpu += cost;
            c.ready_at = done;
            self.summary.consumer_pages += n_pages;
            // Lockstep location updates keep the manager's groups, roles
            // and provenance meaningful; distance stays 0 inside the
            // cohort, and only the owner's wait/priority are applied —
            // throttling throttles the driver.
            if let Some(mgr) = &mgr {
                let out = mgr.update_location(c.scan, done, location, pages_advanced);
                if k == 0 {
                    let wait = out.wait;
                    priority = out.priority;
                    owner_next = done + wait;
                    if wait > scanshare_storage::SimDuration::ZERO {
                        c.metrics.throttle_wait += wait;
                        world.throttle_hist.record(wait.as_micros());
                        if let Some(tr) = &world.tracer {
                            tr.record(
                                done,
                                crate::trace::TraceEvent::Throttled {
                                    scan: c.scan,
                                    wait,
                                    role: crate::trace::role_label(out.role).to_string(),
                                },
                            );
                        }
                    }
                }
            } else if k == 0 {
                owner_next = done;
            }
        }
        world.release_pages(&pages, priority)?;

        // Advance and prefetch the next extent, exactly like pull.
        self.drivers[di].plan.advance(units);
        if self.drivers[di].plan.done() {
            self.drivers[di].done = true;
        } else if world.cfg.prefetch_extents > 0 {
            let mut pf = std::mem::take(&mut self.prefetch);
            pf.clear();
            self.drivers[di].plan.peek_next_pages(
                self.drivers[di].file,
                world.cfg.extent_pages,
                &mut pf,
            );
            if !pf.is_empty() {
                world.prefetch(fetch.ready, &pf)?;
            }
            self.prefetch = pf;
        }
        self.drivers[di].next_wake = owner_next;
        self.ids = ids;
        self.rids = rids;
        self.pages = pages;
        Ok(Some(owner_next))
    }

    /// One extent of a private catch-up cursor: a plain unmanaged pull
    /// step (no `update_location` — the consumer's managed location is
    /// the driver's, and a second moving location would corrupt the
    /// lockstep the cohort reports).
    fn step_catchup(
        &mut self,
        world: &mut ExecWorld<'_>,
        ci: usize,
        now: SimTime,
    ) -> EngineResult<Option<SimTime>> {
        // The consumer cannot absorb catch-up work before its share of
        // the last delivered extent is processed.
        let ready = self.consumers[ci].ready_at;
        if now < ready {
            return Ok(Some(ready));
        }
        let plan = self.consumers[ci].catchup.as_mut().expect("catch-up plan");
        if plan.done() {
            self.consumers[ci].catchup = None;
            return self.step_consumer(world, ConsumerId(ci), now);
        }
        let mut ids = std::mem::take(&mut self.ids);
        let mut rids = std::mem::take(&mut self.rids);
        let mut pages = std::mem::take(&mut self.pages);
        ids.clear();
        rids.clear();
        let file = self.drivers[self.consumers[ci].driver].file;
        let plan = self.consumers[ci].catchup.as_mut().expect("catch-up plan");
        let (_work, _location, units, _wrap) =
            plan.gather(file, world.cfg.extent_pages, &mut ids, &mut rids);
        let fetched = world.fetch_extent(now, &ids, &mut pages);
        self.report_faults(world, ci, now);
        let fetch = match fetched {
            Ok(f) => f,
            Err(StorageError::ReadFault {
                device,
                addr,
                transient,
            }) => {
                self.ids = ids;
                self.rids = rids;
                self.pages = pages;
                self.abort_rider(world, ci, now, device, addr, transient);
                return Ok(None);
            }
            Err(e) => {
                self.ids = ids;
                self.rids = rids;
                self.pages = pages;
                return Err(e.into());
            }
        };
        let n_pages = ids.len() as u64;
        self.summary.catchup_pages += n_pages;
        let c = &mut self.consumers[ci];
        c.metrics.io_wait += fetch.ready.since(now);
        c.metrics.logical_reads += n_pages;
        c.metrics.physical_reads += fetch.misses;
        let rows = consume_all_rows(&world.pool, &pages, c.width, &c.pipeline, &mut c.agg)?;
        let cost = c.cpu.extent_cost(n_pages, rows);
        let done = world.run_cpu(fetch.ready, cost);
        c.metrics.cpu += cost;
        c.ready_at = done;
        c.catchup.as_mut().expect("catch-up plan").advance(units);
        world.release_pages(&pages, PagePriority::Normal)?;
        self.ids = ids;
        self.rids = rids;
        self.pages = pages;
        Ok(Some(done))
    }

    /// Deregister a consumer whose lap (and catch-up) is complete.
    fn finish_consumer(
        &mut self,
        world: &mut ExecWorld<'_>,
        ci: usize,
        now: SimTime,
    ) -> Option<SimTime> {
        let scan = self.consumers[ci].scan;
        if let Some(mgr) = world.mgr.clone() {
            mgr.end_scan(scan, now);
        }
        if let Some(tr) = &world.tracer {
            tr.record(now, crate::trace::TraceEvent::ScanFinished { scan });
        }
        None
    }

    /// The shared cursor's read died for good. Evict the owner (partial
    /// answer, same reason format as pull) and hand the cursor to the
    /// first surviving rider so the cohort keeps going; with no
    /// survivors the driver ends.
    fn abort_owner(
        &mut self,
        world: &mut ExecWorld<'_>,
        di: usize,
        now: SimTime,
        device: u32,
        addr: u64,
        transient: bool,
    ) {
        let oi = self.drivers[di].owner;
        self.evict_consumer(world, oi, now, device, addr, transient);
        match self.drivers[di].attached.first().copied() {
            Some(heir) => {
                self.drivers[di].attached.retain(|&c| c != heir);
                self.drivers[di].owner = heir;
                self.summary.handoffs += 1;
                let remaining =
                    self.drivers[di].plan.total_pages() - self.drivers[di].plan.visited_pages();
                if let Some(mgr) = &world.mgr {
                    mgr.note_driver_handoff(
                        self.consumers[heir].scan,
                        self.consumers[oi].scan,
                        self.drivers[di].object,
                        now,
                        remaining,
                        self.drivers[di].attached.len() + 1,
                    );
                }
                // The heir retries the extent at its next parked event.
                self.drivers[di].next_wake = now + scanshare_storage::SimDuration::from_micros(1);
            }
            None => self.drivers[di].done = true,
        }
    }

    /// A private catch-up read died for good: evict that consumer only;
    /// the driver and the other riders are untouched.
    fn abort_rider(
        &mut self,
        world: &mut ExecWorld<'_>,
        ci: usize,
        now: SimTime,
        device: u32,
        addr: u64,
        transient: bool,
    ) {
        self.evict_consumer(world, ci, now, device, addr, transient);
        let di = self.consumers[ci].driver;
        self.drivers[di].attached.retain(|&c| c != ci);
    }

    fn evict_consumer(
        &mut self,
        world: &mut ExecWorld<'_>,
        ci: usize,
        now: SimTime,
        device: u32,
        addr: u64,
        transient: bool,
    ) {
        let kind = if transient {
            "exhausted retries on a transient"
        } else {
            "permanent"
        };
        let reason = format!("{kind} read fault on device {device} at page {addr}");
        let scan = self.consumers[ci].scan;
        if let Some(mgr) = world.mgr.clone() {
            mgr.evict_scan(scan, now, &reason);
        }
        if let Some(tr) = &world.tracer {
            tr.record(now, crate::trace::TraceEvent::ScanFinished { scan });
        }
        world.note_scan_aborted();
        self.consumers[ci].aborted = true;
        self.consumers[ci].catchup = None;
    }

    /// Attribute fault events observed during this consumer's I/O
    /// (including transient faults a retry absorbed) to the decision log.
    fn report_faults(&mut self, world: &mut ExecWorld<'_>, ci: usize, now: SimTime) {
        if !world.faults_enabled() {
            return;
        }
        self.faults.clear();
        let mut events = std::mem::take(&mut self.faults);
        world.take_fault_events(&mut events);
        if let Some(mgr) = &world.mgr {
            let scan = self.consumers[ci].scan;
            for e in events.iter() {
                mgr.note_fault(scan, now, e.device, e.addr, e.transient, e.attempt);
            }
        }
        self.faults = events;
    }
}
