//! Multi-stream workload execution.
//!
//! A workload is a set of streams, each an ordered list of queries with a
//! start offset (the papers stagger some starts by 10 s). The driver is a
//! discrete-event loop: at every event one stream advances its current
//! scan by one extent. The entire run is deterministic — two runs of the
//! same spec produce identical reports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use scanshare::{ScanSharingManager, SharingConfig};
use scanshare_storage::{BufferPool, PoolConfig, ReplacementPolicy, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::cost::EngineConfig;
use crate::db::Database;
use crate::error::EngineResult;
use crate::exec::ExecWorld;
use crate::metrics::{QueryRecord, RunReport};
use crate::query::{Query, QueryResult};
use crate::scan_exec::{ScanExec, ScanMetrics};

/// Whether a run coordinates its scans.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SharingMode {
    /// "Vanilla DB2": no manager, plain LRU pool.
    Base,
    /// No manager, but a different replacement policy (e.g. LRU-2) — the
    /// related-work baselines of the paper's §2.
    BasePolicy(ReplacementPolicy),
    /// The prototype: a scan-sharing manager with this configuration
    /// (its `pool_pages` is overridden with the run's pool size), and a
    /// priority-aware pool when `enable_priorities` is set.
    ScanSharing(SharingConfig),
}

/// One query stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stream {
    /// Queries, run back to back.
    pub queries: Vec<Query>,
    /// When the stream starts relative to the run origin.
    pub start_offset: SimDuration,
}

/// A complete workload specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The streams to run concurrently.
    pub streams: Vec<Stream>,
    /// Buffer pool size in pages (the papers use ~5 % of the database).
    pub pool_pages: usize,
    /// Machine model.
    pub engine: EngineConfig,
    /// Base or scan-sharing.
    pub mode: SharingMode,
}

/// Progress of one stream through its queries.
struct StreamTask<'q> {
    stream_idx: usize,
    queries: &'q [Query],
    qpos: usize,
    scan_pos: usize,
    /// Executions of the current scan so far (for `ScanSpec::repeat`).
    rep: u32,
    current: Option<ScanExec>,
    qstart: SimTime,
    qresult: QueryResult,
    qmetrics: ScanMetrics,
    records: Vec<QueryRecord>,
    finish: SimTime,
}

impl<'q> StreamTask<'q> {
    fn new(stream_idx: usize, queries: &'q [Query]) -> Self {
        StreamTask {
            stream_idx,
            queries,
            qpos: 0,
            scan_pos: 0,
            rep: 0,
            current: None,
            qstart: SimTime::ZERO,
            qresult: QueryResult::default(),
            qmetrics: ScanMetrics::default(),
            records: Vec::new(),
            finish: SimTime::ZERO,
        }
    }

    /// Advance by one scan extent; `None` when the stream has finished.
    fn step(
        &mut self,
        db: &Database,
        world: &mut ExecWorld<'_>,
        now: SimTime,
    ) -> EngineResult<Option<SimTime>> {
        loop {
            if self.current.is_none() {
                let Some(q) = self.queries.get(self.qpos) else {
                    self.finish = now;
                    return Ok(None);
                };
                if self.scan_pos == 0 && self.rep == 0 {
                    self.qstart = now;
                    self.qresult = QueryResult::default();
                    self.qmetrics = ScanMetrics::default();
                }
                if self.scan_pos < q.scans.len() && self.rep >= q.scans[self.scan_pos].repeat.max(1)
                {
                    self.scan_pos += 1;
                    self.rep = 0;
                }
                if self.scan_pos >= q.scans.len() {
                    self.records.push(QueryRecord {
                        name: q.name.clone(),
                        stream: self.stream_idx,
                        start: self.qstart,
                        end: now,
                        cpu: self.qmetrics.cpu,
                        io_wait: self.qmetrics.io_wait,
                        throttle_wait: self.qmetrics.throttle_wait,
                        logical_reads: self.qmetrics.logical_reads,
                        physical_reads: self.qmetrics.physical_reads,
                        result: std::mem::take(&mut self.qresult),
                    });
                    self.qpos += 1;
                    self.scan_pos = 0;
                    self.rep = 0;
                    continue;
                }
                let scan = ScanExec::start(db, world, &q.scans[self.scan_pos], now)?;
                if let (Some(tr), Some(id)) = (&world.tracer, scan.scan_id()) {
                    tr.record(
                        now,
                        crate::trace::TraceEvent::ScanStarted {
                            scan: id,
                            query: q.name.clone(),
                            stream: self.stream_idx,
                            placement: scan.placement_label().to_string(),
                        },
                    );
                }
                self.current = Some(scan);
            }
            let scan = self.current.as_mut().expect("just set");
            match scan.step(world, now)? {
                Some(next) => return Ok(Some(next)),
                None => {
                    let scan = self.current.take().expect("present");
                    self.qresult.absorb(scan.result());
                    let m = &scan.metrics;
                    self.qmetrics.cpu += m.cpu;
                    self.qmetrics.io_wait += m.io_wait;
                    self.qmetrics.throttle_wait += m.throttle_wait;
                    self.qmetrics.logical_reads += m.logical_reads;
                    self.qmetrics.physical_reads += m.physical_reads;
                    self.rep += 1;
                }
            }
        }
    }
}

/// Run a workload to completion and report the measurements.
pub fn run_workload(db: &Database, spec: &WorkloadSpec) -> EngineResult<RunReport> {
    run_inner(db, spec, None)
}

/// Like [`run_workload`], but with a [`crate::trace::Tracer`] attached;
/// the caller keeps the tracer handle and reads the event log afterwards.
pub fn run_workload_traced(
    db: &Database,
    spec: &WorkloadSpec,
    tracer: crate::trace::Tracer,
) -> EngineResult<RunReport> {
    run_inner(db, spec, Some(tracer))
}

fn run_inner(
    db: &Database,
    spec: &WorkloadSpec,
    tracer: Option<crate::trace::Tracer>,
) -> EngineResult<RunReport> {
    let (policy, mgr) = match &spec.mode {
        SharingMode::Base => (ReplacementPolicy::Lru, None),
        SharingMode::BasePolicy(p) => (*p, None),
        SharingMode::ScanSharing(cfg) => {
            let cfg = SharingConfig {
                pool_pages: spec.pool_pages as u64,
                extent_pages: spec.engine.extent_pages as u64,
                ..cfg.clone()
            };
            let policy = if cfg.enable_priorities {
                ReplacementPolicy::PriorityLru
            } else {
                ReplacementPolicy::Lru
            };
            (policy, Some(Arc::new(ScanSharingManager::new(cfg))))
        }
    };
    let pool = BufferPool::new(PoolConfig::new(spec.pool_pages, policy));
    let mut world = ExecWorld::new(db.store(), pool, spec.engine.clone(), mgr.clone());
    world.tracer = tracer;

    let mut tasks: Vec<StreamTask<'_>> = spec
        .streams
        .iter()
        .enumerate()
        .map(|(i, s)| StreamTask::new(i, &s.queries))
        .collect();

    // Event queue: (wake time, sequence for FIFO ties, task index).
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, s) in spec.streams.iter().enumerate() {
        heap.push(Reverse((s.start_offset.as_micros(), seq, i)));
        seq += 1;
    }
    let mut makespan = SimTime::ZERO;
    while let Some(Reverse((t_us, _, i))) = heap.pop() {
        let now = SimTime::from_micros(t_us);
        match tasks[i].step(db, &mut world, now)? {
            Some(next) => {
                heap.push(Reverse((next.as_micros(), seq, i)));
                seq += 1;
            }
            None => makespan = makespan.max(now),
        }
    }

    let stream_elapsed: Vec<SimDuration> = tasks
        .iter()
        .zip(&spec.streams)
        .map(|(t, s)| t.finish.since(SimTime::ZERO + s.start_offset))
        .collect();
    let mut queries: Vec<QueryRecord> = Vec::new();
    for t in &mut tasks {
        queries.append(&mut t.records);
    }
    queries.sort_by_key(|q| (q.end, q.stream));

    let breakdown = world.breakdown(makespan.since(SimTime::ZERO));
    Ok(RunReport {
        makespan: makespan.since(SimTime::ZERO),
        stream_elapsed,
        queries,
        breakdown,
        disk: world.disk.stats(),
        read_series: world.disk.read_series(),
        seek_series: world.disk.seek_series(),
        pool: world.pool.stats().clone(),
        sharing: mgr.map(|m| m.stats()).unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CpuClass;
    use crate::query::{Access, AggSpec, Pred, ScanSpec};
    use scanshare_relstore::{ColType, Column, Schema, Value};

    fn build_db() -> Database {
        let mut db = Database::new(16);
        let schema = Schema::new(vec![
            Column::new("month", ColType::Int32),
            Column::new("amount", ColType::Float64),
        ]);
        db.create_mdc_table(
            "lineitem",
            schema.clone(),
            16,
            (0..120_000).map(|i| ((i % 12) as i64, vec![Value::I32(i % 12), Value::F64(1.0)])),
        )
        .unwrap();
        db.create_heap_table(
            "orders",
            schema,
            (0..30_000).map(|i| vec![Value::I32(i % 12), Value::F64(0.5)]),
        )
        .unwrap();
        db
    }

    fn q6_like(name: &str, lo: i64, hi: i64) -> Query {
        Query::single(
            name,
            ScanSpec {
                table: "lineitem".into(),
                access: Access::IndexRange { lo, hi },
                pred: Pred::True,
                agg: AggSpec::sums(vec![1]),
                cpu: CpuClass::io_bound(),
                require_order: false,
                query_priority: Default::default(),
                repeat: 1,
            },
        )
    }

    fn table_q(name: &str) -> Query {
        Query::single(
            name,
            ScanSpec {
                table: "orders".into(),
                access: Access::FullTable,
                pred: Pred::True,
                agg: AggSpec::sums(vec![1]),
                cpu: CpuClass::io_bound(),
                require_order: false,
                query_priority: Default::default(),
                repeat: 1,
            },
        )
    }

    fn spec(db: &Database, streams: Vec<Stream>, mode: SharingMode) -> WorkloadSpec {
        WorkloadSpec {
            streams,
            pool_pages: (db.total_table_pages() / 20).max(64) as usize, // 5%
            engine: EngineConfig::default(),
            mode,
        }
    }

    fn three_staggered(q: &Query) -> Vec<Stream> {
        // Close enough that the three scans overlap in time (a full
        // lineitem index scan takes a few hundred virtual milliseconds).
        (0..3)
            .map(|i| Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::from_millis(i * 100),
            })
            .collect()
    }

    #[test]
    fn answers_are_identical_across_modes() {
        let db = build_db();
        let q = q6_like("Q6", 3, 8);
        let base = run_workload(&db, &spec(&db, three_staggered(&q), SharingMode::Base)).unwrap();
        let ss = run_workload(
            &db,
            &spec(
                &db,
                three_staggered(&q),
                SharingMode::ScanSharing(SharingConfig::new(0)),
            ),
        )
        .unwrap();
        assert_eq!(base.queries.len(), 3);
        assert_eq!(ss.queries.len(), 3);
        for (b, s) in base.queries.iter().zip(&ss.queries) {
            assert_eq!(b.result.count, s.result.count);
            for (x, y) in b.result.sums.iter().zip(&s.result.sums) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sharing_reduces_physical_io_for_overlapping_scans() {
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let base = run_workload(&db, &spec(&db, three_staggered(&q), SharingMode::Base)).unwrap();
        let ss = run_workload(
            &db,
            &spec(
                &db,
                three_staggered(&q),
                SharingMode::ScanSharing(SharingConfig::new(0)),
            ),
        )
        .unwrap();
        assert!(
            ss.disk.pages_read < base.disk.pages_read,
            "sharing must reduce physical reads: ss={} base={}",
            ss.disk.pages_read,
            base.disk.pages_read
        );
        assert!(
            ss.makespan < base.makespan,
            "sharing must reduce end-to-end time: ss={} base={}",
            ss.makespan,
            base.makespan
        );
        assert!(ss.sharing.scans_started == 3);
    }

    #[test]
    fn table_scans_share_too() {
        // A big heap table (~400 pages) against a 64-page pool, with
        // closely staggered streams: base re-reads everything, sharing
        // groups the scans.
        let mut db = Database::new(16);
        let schema = Schema::new(vec![
            Column::new("month", ColType::Int32),
            Column::new("amount", ColType::Float64),
        ]);
        db.create_heap_table(
            "orders",
            schema,
            (0..200_000).map(|i| vec![Value::I32(i % 12), Value::F64(0.5)]),
        )
        .unwrap();
        let q = table_q("TQ");
        let streams: Vec<Stream> = (0..3)
            .map(|i| Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::from_millis(i * 200),
            })
            .collect();
        let mk = |mode| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode,
        };
        let base = run_workload(&db, &mk(SharingMode::Base)).unwrap();
        let ss = run_workload(&db, &mk(SharingMode::ScanSharing(SharingConfig::new(0)))).unwrap();
        assert!(
            ss.disk.pages_read < base.disk.pages_read,
            "ss={} base={}",
            ss.disk.pages_read,
            base.disk.pages_read
        );
        assert_eq!(ss.queries[0].result.count, 200_000);
    }

    #[test]
    fn runs_are_deterministic() {
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let s = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let r1 = run_workload(&db, &s).unwrap();
        let r2 = run_workload(&db, &s).unwrap();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.disk.pages_read, r2.disk.pages_read);
        assert_eq!(r1.disk.seeks, r2.disk.seeks);
    }

    #[test]
    fn staggered_streams_start_at_their_offsets() {
        let db = build_db();
        let q = q6_like("Q6", 0, 3);
        let streams = vec![
            Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::ZERO,
            },
            Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::from_secs(10),
            },
        ];
        let r = run_workload(&db, &spec(&db, streams, SharingMode::Base)).unwrap();
        let q1 = r.queries.iter().find(|r| r.stream == 1).unwrap();
        assert!(q1.start >= SimTime::from_secs(10));
    }

    #[test]
    fn multi_scan_queries_run_their_scans_sequentially() {
        let db = build_db();
        let q = Query {
            name: "J".into(),
            scans: vec![
                table_q("x").scans[0].clone(),
                q6_like("y", 0, 2).scans[0].clone(),
            ],
        };
        let r = run_workload(
            &db,
            &spec(
                &db,
                vec![Stream {
                    queries: vec![q],
                    start_offset: SimDuration::ZERO,
                }],
                SharingMode::Base,
            ),
        )
        .unwrap();
        assert_eq!(r.queries.len(), 1);
        // Counts from both scans are absorbed.
        assert_eq!(r.queries[0].result.count, 30_000 + 30_000);
        assert_eq!(r.queries[0].result.sums.len(), 2);
    }

    #[test]
    fn repeated_inner_scans_run_n_times_and_share_leftovers() {
        let db = build_db();
        // A nested-loop-ish query: the inner index scan runs 4 times.
        let mut q = q6_like("NL", 0, 5);
        q.scans[0].repeat = 4;
        let streams = vec![Stream {
            queries: vec![q],
            start_offset: SimDuration::ZERO,
        }];
        let mk = |mode| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 256,
            engine: EngineConfig::default(),
            mode,
        };
        let base = run_workload(&db, &mk(SharingMode::Base)).unwrap();
        let ss = run_workload(&db, &mk(SharingMode::ScanSharing(SharingConfig::new(0)))).unwrap();
        // All 4 repeats' rows are aggregated.
        assert_eq!(base.queries[0].result.count, 4 * 60_000);
        assert_eq!(ss.queries[0].result.count, 4 * 60_000);
        // Sharing mode re-joins the finished scan's leftovers each
        // repeat; base (ringed) re-reads almost everything.
        assert!(
            ss.disk.pages_read < base.disk.pages_read,
            "ss {} base {}",
            ss.disk.pages_read,
            base.disk.pages_read
        );
    }

    #[test]
    fn tracer_captures_sharing_decisions() {
        use crate::trace::{TraceEvent, Tracer};
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let spec = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let tracer = Tracer::new(1024);
        run_workload_traced(&db, &spec, tracer.clone()).unwrap();
        let records = tracer.records();
        let starts = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ScanStarted { .. }))
            .count();
        let finishes = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ScanFinished { .. }))
            .count();
        assert_eq!(starts, 3);
        assert_eq!(finishes, 3);
        // At least one scan joined another (captured in the label).
        assert!(records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::ScanStarted { placement, .. } if placement.contains("join")
        )));
        // Rendering mentions the query.
        assert!(tracer.render().contains("Q6"));
    }

    #[test]
    fn empty_workload_is_empty_report() {
        let db = build_db();
        let r = run_workload(&db, &spec(&db, vec![], SharingMode::Base)).unwrap();
        assert_eq!(r.queries.len(), 0);
        assert_eq!(r.makespan, SimDuration::ZERO);
    }

    #[test]
    fn report_helpers_aggregate_per_query() {
        let db = build_db();
        let q = q6_like("Q6", 0, 5);
        let r = run_workload(&db, &spec(&db, three_staggered(&q), SharingMode::Base)).unwrap();
        assert_eq!(r.query_names(), vec!["Q6".to_string()]);
        assert!(r.avg_query_time("Q6").unwrap() > SimDuration::ZERO);
        assert!(r.avg_query_time("nope").is_none());
    }
}
