//! Multi-stream workload execution.
//!
//! A workload is a set of streams, each an ordered list of queries with a
//! start offset (the papers stagger some starts by 10 s). The driver is a
//! discrete-event loop: at every event one stream advances its current
//! scan by one extent. The entire run is deterministic — two runs of the
//! same spec produce identical reports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use scanshare::{
    DecisionLog, ManagerProbe, MetricsRegistry, ScanSharingManager, SharingConfig, SpanProfiler,
    Track,
};
use scanshare_storage::{
    BufferPool, DiskStats, PoolConfig, PoolStats, ReplacementPolicy, ResidentPage, SimDuration,
    SimTime,
};
use serde::{Deserialize, Serialize};

use crate::cost::EngineConfig;
use crate::db::Database;
use crate::error::EngineResult;
use crate::exec::ExecWorld;
use crate::faults::FaultsConfig;
use crate::metrics::{QueryRecord, RunReport};
use crate::push::{ConsumerId, PushEngine};
use crate::query::{Query, QueryResult};
use crate::scan_exec::{ScanExec, ScanMetrics};

/// Whether a run coordinates its scans.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SharingMode {
    /// "Vanilla DB2": no manager, plain LRU pool.
    Base,
    /// No manager, but a different replacement policy (e.g. LRU-2) — the
    /// related-work baselines of the paper's §2.
    BasePolicy(ReplacementPolicy),
    /// The prototype: a scan-sharing manager with this configuration
    /// (its `pool_pages` is overridden with the run's pool size), and a
    /// priority-aware pool when `enable_priorities` is set.
    ScanSharing(SharingConfig),
}

/// One query stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stream {
    /// Queries, run back to back.
    pub queries: Vec<Query>,
    /// When the stream starts relative to the run origin.
    pub start_offset: SimDuration,
}

/// A complete workload specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The streams to run concurrently.
    pub streams: Vec<Stream>,
    /// Buffer pool size in pages (the papers use ~5 % of the database).
    pub pool_pages: usize,
    /// Machine model.
    pub engine: EngineConfig,
    /// Base or scan-sharing.
    pub mode: SharingMode,
    /// Fault injection: storage-layer plan plus engine retry policy.
    /// Defaults to no faults, which leaves the run (and its report
    /// bytes) identical to a spec without this section.
    #[serde(default)]
    pub faults: FaultsConfig,
    /// Service-level objectives checked after the run. Defaults to no
    /// rules, which leaves the run (and its report bytes) identical to
    /// a spec without this section.
    #[serde(default)]
    pub slo: crate::slo::SloConfig,
}

/// The stream's in-flight scan: its own pull cursor, or a consumer slot
/// in the run's push-delivery engine.
enum CurScan {
    Pull(Box<ScanExec>),
    Push(ConsumerId),
}

/// Progress of one stream through its queries.
struct StreamTask<'q> {
    stream_idx: usize,
    queries: &'q [Query],
    qpos: usize,
    scan_pos: usize,
    /// Executions of the current scan so far (for `ScanSpec::repeat`).
    rep: u32,
    current: Option<CurScan>,
    qstart: SimTime,
    qresult: QueryResult,
    qmetrics: ScanMetrics,
    records: Vec<QueryRecord>,
    finish: SimTime,
}

impl<'q> StreamTask<'q> {
    fn new(stream_idx: usize, queries: &'q [Query]) -> Self {
        StreamTask {
            stream_idx,
            queries,
            qpos: 0,
            scan_pos: 0,
            rep: 0,
            current: None,
            qstart: SimTime::ZERO,
            qresult: QueryResult::default(),
            qmetrics: ScanMetrics::default(),
            records: Vec::new(),
            finish: SimTime::ZERO,
        }
    }

    /// Advance by one scan extent; `None` when the stream has finished.
    fn step(
        &mut self,
        db: &Database,
        world: &mut ExecWorld<'_>,
        push: &mut Option<PushEngine>,
        now: SimTime,
    ) -> EngineResult<Option<SimTime>> {
        loop {
            if self.current.is_none() {
                let Some(q) = self.queries.get(self.qpos) else {
                    self.finish = now;
                    return Ok(None);
                };
                if self.scan_pos == 0 && self.rep == 0 {
                    self.qstart = now;
                    self.qresult = QueryResult::default();
                    self.qmetrics = ScanMetrics::default();
                }
                if self.scan_pos < q.scans.len() && self.rep >= q.scans[self.scan_pos].repeat.max(1)
                {
                    self.scan_pos += 1;
                    self.rep = 0;
                }
                if self.scan_pos >= q.scans.len() {
                    self.records.push(QueryRecord {
                        name: q.name.clone(),
                        stream: self.stream_idx,
                        start: self.qstart,
                        end: now,
                        cpu: self.qmetrics.cpu,
                        io_wait: self.qmetrics.io_wait,
                        throttle_wait: self.qmetrics.throttle_wait,
                        logical_reads: self.qmetrics.logical_reads,
                        physical_reads: self.qmetrics.physical_reads,
                        result: std::mem::take(&mut self.qresult),
                    });
                    self.qpos += 1;
                    self.scan_pos = 0;
                    self.rep = 0;
                    continue;
                }
                let spec = &q.scans[self.scan_pos];
                // Push delivery first; specs it cannot share (RID
                // fetches, order-requiring scans) fall back to pull.
                let cur = match push.as_mut().map(|pe| pe.admit(db, world, spec, now)) {
                    Some(admitted) => admitted?.map(CurScan::Push),
                    None => None,
                };
                let cur = match cur {
                    Some(cur) => {
                        if let (Some(tr), Some(pe)) = (&world.tracer, push.as_ref()) {
                            let CurScan::Push(cid) = &cur else {
                                unreachable!("just admitted")
                            };
                            tr.record(
                                now,
                                crate::trace::TraceEvent::ScanStarted {
                                    scan: pe.scan_id(*cid),
                                    query: q.name.clone(),
                                    stream: self.stream_idx,
                                    placement: pe.placement_label(*cid).to_string(),
                                },
                            );
                        }
                        cur
                    }
                    None => {
                        let scan = ScanExec::start(db, world, spec, now)?;
                        if let (Some(tr), Some(id)) = (&world.tracer, scan.scan_id()) {
                            tr.record(
                                now,
                                crate::trace::TraceEvent::ScanStarted {
                                    scan: id,
                                    query: q.name.clone(),
                                    stream: self.stream_idx,
                                    placement: scan.placement_label().to_string(),
                                },
                            );
                        }
                        CurScan::Pull(Box::new(scan))
                    }
                };
                self.current = Some(cur);
            }
            let stepped = match self.current.as_mut().expect("just set") {
                CurScan::Pull(scan) => scan.step(world, now)?,
                CurScan::Push(cid) => push
                    .as_mut()
                    .expect("push scan implies push engine")
                    .step_consumer(world, *cid, now)?,
            };
            match stepped {
                Some(next) => return Ok(Some(next)),
                None => {
                    let (result, m) = match self.current.take().expect("present") {
                        CurScan::Pull(scan) => (scan.result(), scan.metrics.clone()),
                        CurScan::Push(cid) => push.as_mut().expect("push engine").take_result(cid),
                    };
                    self.qresult.absorb(result);
                    self.qmetrics.cpu += m.cpu;
                    self.qmetrics.io_wait += m.io_wait;
                    self.qmetrics.throttle_wait += m.throttle_wait;
                    self.qmetrics.logical_reads += m.logical_reads;
                    self.qmetrics.physical_reads += m.physical_reads;
                    self.rep += 1;
                }
            }
        }
    }
}

/// A point-in-time view of a running workload, delivered to the
/// [`RunHooks::observer`] callback at every metrics-sample tick — the
/// data source for `scanshare watch`.
#[derive(Debug, Clone)]
pub struct WatchFrame {
    /// Virtual time of the sample.
    pub at: SimTime,
    /// Sharing-manager introspection (groups, per-scan throttle state);
    /// `None` in base mode.
    pub probe: Option<ManagerProbe>,
    /// Buffer pool counters so far.
    pub pool: PoolStats,
    /// Pool capacity in pages (for residency percentages).
    pub pool_capacity: usize,
    /// Every resident page with its priority and pin state, sorted by
    /// page id — the residency heatmap.
    pub resident: Vec<ResidentPage>,
    /// Disk counters so far.
    pub disk: DiskStats,
    /// Queries completed so far across all streams.
    pub queries_done: usize,
}

/// Shareable observer callback invoked with each [`WatchFrame`].
pub type WatchObserver = Arc<dyn Fn(&WatchFrame) + Send + Sync>;

/// Optional instrumentation attached to a run. All hooks compose: a run
/// can be traced, decision-logged, and watched at the same time.
#[derive(Default)]
pub struct RunHooks {
    /// Event tracer; its retained records are embedded in the report.
    pub tracer: Option<crate::trace::Tracer>,
    /// Decision-provenance log handed to the sharing manager. When
    /// `None`, sharing-mode runs still attach a fresh log (capacity
    /// [`DEFAULT_DECISION_CAP`]) so every report can be explained.
    pub decisions: Option<DecisionLog>,
    /// Callback invoked at every metrics-sample tick and once at the
    /// makespan, in event-loop order.
    pub observer: Option<WatchObserver>,
    /// Span profiler threaded through the run (`engine.run`, per-extent
    /// `scan.step` trees, manager and I/O annotations). When `None` —
    /// the default — no span machinery runs at all and the report stays
    /// byte-identical to pre-profiling builds.
    pub profiler: Option<SpanProfiler>,
}

/// Decision-log capacity used when no explicit log is hooked in.
pub const DEFAULT_DECISION_CAP: usize = 1 << 16;

/// Run a workload to completion and report the measurements.
pub fn run_workload(db: &Database, spec: &WorkloadSpec) -> EngineResult<RunReport> {
    run_inner(db, spec, RunHooks::default())
}

/// Like [`run_workload`], but with a [`crate::trace::Tracer`] attached;
/// the caller keeps the tracer handle and reads the event log afterwards.
pub fn run_workload_traced(
    db: &Database,
    spec: &WorkloadSpec,
    tracer: crate::trace::Tracer,
) -> EngineResult<RunReport> {
    run_inner(
        db,
        spec,
        RunHooks {
            tracer: Some(tracer),
            ..RunHooks::default()
        },
    )
}

/// Like [`run_workload`], but with arbitrary [`RunHooks`] attached —
/// what `scanshare watch` uses to stream [`WatchFrame`]s off the run.
pub fn run_workload_hooked(
    db: &Database,
    spec: &WorkloadSpec,
    hooks: RunHooks,
) -> EngineResult<RunReport> {
    run_inner(db, spec, hooks)
}

fn run_inner(db: &Database, spec: &WorkloadSpec, hooks: RunHooks) -> EngineResult<RunReport> {
    let (policy, mgr) = match &spec.mode {
        SharingMode::Base => (ReplacementPolicy::Lru, None),
        SharingMode::BasePolicy(p) => (*p, None),
        SharingMode::ScanSharing(cfg) => {
            let cfg = SharingConfig {
                pool_pages: spec.pool_pages as u64,
                extent_pages: spec.engine.extent_pages as u64,
                ..cfg.clone()
            };
            let policy = if cfg.enable_priorities {
                ReplacementPolicy::PriorityLru
            } else {
                ReplacementPolicy::Lru
            };
            let mgr = Arc::new(ScanSharingManager::new(cfg));
            // Always record provenance in sharing mode: a saved report
            // should be explainable even when nobody hooked a log in.
            mgr.attach_decision_log(
                hooks
                    .decisions
                    .clone()
                    .unwrap_or_else(|| DecisionLog::new(DEFAULT_DECISION_CAP)),
            );
            (policy, Some(mgr))
        }
    };
    let observer = hooks.observer;
    let profiler = hooks.profiler;
    let pool = BufferPool::new(PoolConfig::new(spec.pool_pages, policy));
    let mut world = ExecWorld::new(db.store(), pool, spec.engine.clone(), mgr.clone());
    world.tracer = hooks.tracer;
    if let Some(p) = &profiler {
        world.profiler = Some(p.clone());
        if let Some(m) = &mgr {
            m.attach_profiler(p.clone());
        }
    }
    if !spec.faults.is_empty() {
        world.enable_faults(&spec.faults);
    }
    // Push delivery rides on the sharing manager; base modes and pull
    // configs run the exact pre-push code path (and report bytes).
    let mut push: Option<PushEngine> = match &spec.mode {
        SharingMode::ScanSharing(cfg) if cfg.delivery == scanshare::DeliveryMode::Push => {
            Some(PushEngine::new())
        }
        _ => None,
    };

    let mut tasks: Vec<StreamTask<'_>> = spec
        .streams
        .iter()
        .enumerate()
        .map(|(i, s)| StreamTask::new(i, &s.queries))
        .collect();

    // Event queue: (wake time, sequence for FIFO ties, task index).
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, s) in spec.streams.iter().enumerate() {
        heap.push(Reverse((s.start_offset.as_micros(), seq, i)));
        seq += 1;
    }
    let mut makespan = SimTime::ZERO;
    let interval = spec.engine.metrics_interval;
    let mut next_sample = SimTime::ZERO + interval;
    // The engine's root span: every scan.step tree nests beneath it.
    let run_span = profiler
        .as_ref()
        .map(|p| p.begin(Track::Driver, "engine.run", SimTime::ZERO));
    while let Some(Reverse((t_us, _, i))) = heap.pop() {
        let now = SimTime::from_micros(t_us);
        if interval > SimDuration::ZERO {
            // Sample state *before* processing the event, so each point
            // reflects the world as of its nominal timestamp.
            while next_sample <= now {
                sample_metrics(&world, mgr.as_deref(), next_sample);
                if let Some(obs) = &observer {
                    obs(&watch_frame(&world, mgr.as_deref(), &tasks, next_sample));
                }
                next_sample += interval;
            }
        }
        // One extent of progress = one scan.step span on the stream's
        // track; the executor opens fetch/cpu/throttle children and the
        // manager parents its placement instants beneath it.
        let step_span = profiler.as_ref().map(|p| {
            let s = p.begin(Track::Stream(i), "scan.step", now);
            p.attr(s, "stream", i.to_string());
            s
        });
        let stepped = tasks[i].step(db, &mut world, &mut push, now);
        match &stepped {
            Ok(Some(next)) => {
                if let (Some(p), Some(s)) = (&profiler, step_span) {
                    p.end(s, *next);
                }
            }
            // Stream finished (or the run is aborting): the step
            // consumed no further virtual time.
            Ok(None) | Err(_) => {
                if let (Some(p), Some(s)) = (&profiler, step_span) {
                    p.end(s, now);
                }
            }
        }
        match stepped? {
            Some(next) => {
                heap.push(Reverse((next.as_micros(), seq, i)));
                seq += 1;
            }
            None => makespan = makespan.max(now),
        }
    }
    if let (Some(p), Some(s)) = (&profiler, run_span) {
        p.end(s, makespan);
    }
    // One closing sample so every series extends to the makespan.
    sample_metrics(&world, mgr.as_deref(), makespan);
    if let Some(obs) = &observer {
        obs(&watch_frame(&world, mgr.as_deref(), &tasks, makespan));
    }

    let stream_elapsed: Vec<SimDuration> = tasks
        .iter()
        .zip(&spec.streams)
        .map(|(t, s)| t.finish.since(SimTime::ZERO + s.start_offset))
        .collect();
    let mut queries: Vec<QueryRecord> = Vec::new();
    for t in &mut tasks {
        queries.append(&mut t.records);
    }
    queries.sort_by_key(|q| (q.end, q.stream));

    let breakdown = world.breakdown(makespan.since(SimTime::ZERO));
    // When fault injection was armed, mirror its counters into the
    // registry so they land in the snapshot alongside everything else.
    // Fault-free runs register nothing, keeping their snapshot (and
    // report bytes) untouched.
    let faults = world.fault_summary().unwrap_or_default();
    if world.faults_enabled() {
        let reg = &world.metrics;
        reg.counter("faults.transient_errors")
            .add(faults.transient_errors);
        reg.counter("faults.permanent_errors")
            .add(faults.permanent_errors);
        reg.counter("faults.delays_injected")
            .add(faults.delays_injected);
        reg.counter("faults.retries").add(faults.retries);
        reg.counter("faults.timeouts").add(faults.timeouts);
        reg.counter("faults.scans_aborted")
            .add(faults.scans_aborted);
    }
    let trace = world
        .tracer
        .as_ref()
        .map(|t| t.records())
        .unwrap_or_default();
    let mut report = RunReport {
        makespan: makespan.since(SimTime::ZERO),
        stream_elapsed,
        queries,
        breakdown,
        disk: world.disk.stats(),
        read_series: world.disk.read_series(),
        seek_series: world.disk.seek_series(),
        seek_distance_series: world.disk.seek_distance_series(),
        pool: world.pool.stats().clone(),
        sharing: mgr.as_ref().map(|m| m.stats()).unwrap_or_default(),
        metrics: world.metrics.snapshot(makespan),
        trace,
        decisions: mgr
            .as_ref()
            .and_then(|m| m.decision_log())
            .map(|d| d.records())
            .unwrap_or_default(),
        faults,
        // Only a non-default policy is stamped into the report, so
        // default-policy artifacts keep their pre-framework bytes.
        policy: world
            .sharing_policy()
            .filter(|p| *p != scanshare::SharingPolicyKind::default()),
        // The profiler's owner embeds the summary once *its* root span
        // closes (the engine only sees the middle of the span tree).
        profile: None,
        slo: Vec::new(),
        push: push.as_ref().map(|pe| pe.summary()),
    };
    if !spec.slo.is_empty() {
        report.slo = crate::slo::evaluate(&spec.slo, &report);
    }
    Ok(report)
}

/// Assemble the [`WatchFrame`] for one sample tick.
fn watch_frame(
    world: &ExecWorld<'_>,
    mgr: Option<&ScanSharingManager>,
    tasks: &[StreamTask<'_>],
    at: SimTime,
) -> WatchFrame {
    WatchFrame {
        at,
        probe: mgr.map(|m| m.probe()),
        pool: world.pool.stats().clone(),
        pool_capacity: world.pool.capacity(),
        resident: world.pool.resident_pages(),
        disk: world.disk.stats(),
        queries_done: tasks.iter().map(|t| t.records.len()).sum(),
    }
}

/// Record one observation of every sampled signal at virtual time `at`:
/// pool hit ratio and evictions, cumulative disk seek distance, and —
/// when a sharing manager is attached — the group count, active-scan
/// count, each group's leader-trailer distance
/// (`group.<anchor>.distance_pages`) and each scan's accumulated slowdown
/// as a fraction of its fairness-cap budget (`scan.<id>.slowdown_frac`).
fn sample_metrics(world: &ExecWorld<'_>, mgr: Option<&ScanSharingManager>, at: SimTime) {
    let reg: &MetricsRegistry = &world.metrics;
    let pool = world.pool.stats();
    reg.series("pool.hit_ratio").push(at, pool.hit_ratio());
    reg.series("pool.evictions").push(at, pool.evictions as f64);
    reg.series("disk.seek_distance")
        .push(at, world.disk.stats().seek_distance_pages as f64);
    let Some(mgr) = mgr else { return };
    let probe = mgr.probe();
    reg.gauge("mgr.groups").set(probe.groups.len() as f64);
    reg.gauge("mgr.active_scans").set(probe.scans.len() as f64);
    reg.series("mgr.shared_groups")
        .push(at, probe.shared_groups() as f64);
    for g in &probe.groups {
        reg.series(&format!("group.{}.distance_pages", g.anchor.0))
            .push(at, g.extent as f64);
    }
    for s in &probe.scans {
        reg.series(&format!("scan.{}.slowdown_frac", s.id.0))
            .push(at, s.slowdown_frac);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CpuClass;
    use crate::query::{Access, AggSpec, Pred, ScanSpec};
    use scanshare_relstore::{ColType, Column, Schema, Value};

    fn build_db() -> Database {
        let mut db = Database::new(16);
        let schema = Schema::new(vec![
            Column::new("month", ColType::Int32),
            Column::new("amount", ColType::Float64),
        ]);
        db.create_mdc_table(
            "lineitem",
            schema.clone(),
            16,
            (0..120_000).map(|i| ((i % 12) as i64, vec![Value::I32(i % 12), Value::F64(1.0)])),
        )
        .unwrap();
        db.create_heap_table(
            "orders",
            schema,
            (0..30_000).map(|i| vec![Value::I32(i % 12), Value::F64(0.5)]),
        )
        .unwrap();
        db
    }

    fn q6_like(name: &str, lo: i64, hi: i64) -> Query {
        Query::single(
            name,
            ScanSpec {
                table: "lineitem".into(),
                access: Access::IndexRange { lo, hi },
                pred: Pred::True,
                agg: AggSpec::sums(vec![1]),
                cpu: CpuClass::io_bound(),
                require_order: false,
                query_priority: Default::default(),
                repeat: 1,
            },
        )
    }

    fn table_q(name: &str) -> Query {
        Query::single(
            name,
            ScanSpec {
                table: "orders".into(),
                access: Access::FullTable,
                pred: Pred::True,
                agg: AggSpec::sums(vec![1]),
                cpu: CpuClass::io_bound(),
                require_order: false,
                query_priority: Default::default(),
                repeat: 1,
            },
        )
    }

    fn spec(db: &Database, streams: Vec<Stream>, mode: SharingMode) -> WorkloadSpec {
        WorkloadSpec {
            streams,
            pool_pages: (db.total_table_pages() / 20).max(64) as usize, // 5%
            engine: EngineConfig::default(),
            mode,
            faults: Default::default(),
            slo: Default::default(),
        }
    }

    fn three_staggered(q: &Query) -> Vec<Stream> {
        // Close enough that the three scans overlap in time (a full
        // lineitem index scan takes a few hundred virtual milliseconds).
        (0..3)
            .map(|i| Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::from_millis(i * 100),
            })
            .collect()
    }

    #[test]
    fn answers_are_identical_across_modes() {
        let db = build_db();
        let q = q6_like("Q6", 3, 8);
        let base = run_workload(&db, &spec(&db, three_staggered(&q), SharingMode::Base)).unwrap();
        let ss = run_workload(
            &db,
            &spec(
                &db,
                three_staggered(&q),
                SharingMode::ScanSharing(SharingConfig::new(0)),
            ),
        )
        .unwrap();
        assert_eq!(base.queries.len(), 3);
        assert_eq!(ss.queries.len(), 3);
        for (b, s) in base.queries.iter().zip(&ss.queries) {
            assert_eq!(b.result.count, s.result.count);
            for (x, y) in b.result.sums.iter().zip(&s.result.sums) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sharing_reduces_physical_io_for_overlapping_scans() {
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let base = run_workload(&db, &spec(&db, three_staggered(&q), SharingMode::Base)).unwrap();
        let ss = run_workload(
            &db,
            &spec(
                &db,
                three_staggered(&q),
                SharingMode::ScanSharing(SharingConfig::new(0)),
            ),
        )
        .unwrap();
        assert!(
            ss.disk.pages_read < base.disk.pages_read,
            "sharing must reduce physical reads: ss={} base={}",
            ss.disk.pages_read,
            base.disk.pages_read
        );
        assert!(
            ss.makespan < base.makespan,
            "sharing must reduce end-to-end time: ss={} base={}",
            ss.makespan,
            base.makespan
        );
        assert!(ss.sharing.scans_started == 3);
    }

    #[test]
    fn table_scans_share_too() {
        // A big heap table (~400 pages) against a 64-page pool, with
        // closely staggered streams: base re-reads everything, sharing
        // groups the scans.
        let mut db = Database::new(16);
        let schema = Schema::new(vec![
            Column::new("month", ColType::Int32),
            Column::new("amount", ColType::Float64),
        ]);
        db.create_heap_table(
            "orders",
            schema,
            (0..200_000).map(|i| vec![Value::I32(i % 12), Value::F64(0.5)]),
        )
        .unwrap();
        let q = table_q("TQ");
        let streams: Vec<Stream> = (0..3)
            .map(|i| Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::from_millis(i * 200),
            })
            .collect();
        let mk = |mode| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode,
            faults: Default::default(),
            slo: Default::default(),
        };
        let base = run_workload(&db, &mk(SharingMode::Base)).unwrap();
        let ss = run_workload(&db, &mk(SharingMode::ScanSharing(SharingConfig::new(0)))).unwrap();
        assert!(
            ss.disk.pages_read < base.disk.pages_read,
            "ss={} base={}",
            ss.disk.pages_read,
            base.disk.pages_read
        );
        assert_eq!(ss.queries[0].result.count, 200_000);
    }

    #[test]
    fn push_delivery_matches_pull_answers_and_fixes_pages_once() {
        use scanshare::DeliveryMode;
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        // Tighter stagger than three_staggered: the default policy only
        // accepts riders whose missed prefix is at most a fifth of the
        // lap, and 100ms into this scan is already past that budget.
        // 10ms apart keeps the catch-up replays short enough to attach
        // while still being late enough that catch-up pages are paid.
        let streams: Vec<Stream> = (0..3)
            .map(|i| Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::from_millis(i * 10),
            })
            .collect();
        let mk = |delivery| {
            let mut cfg = SharingConfig::new(0);
            cfg.delivery = delivery;
            spec(&db, streams.clone(), SharingMode::ScanSharing(cfg))
        };
        let pull = run_workload(&db, &mk(DeliveryMode::Pull)).unwrap();
        let push = run_workload(&db, &mk(DeliveryMode::Push)).unwrap();
        // Same answers, per query.
        assert_eq!(pull.queries.len(), push.queries.len());
        for (a, b) in pull.queries.iter().zip(&push.queries) {
            assert_eq!(a.result.count, b.result.count);
            for (x, y) in a.result.sums.iter().zip(&b.result.sums) {
                assert!((x - y).abs() < 1e-6);
            }
        }
        // Pull reports carry no push section; push reports do, with the
        // one-fix-per-page property: driver fixes plus catch-up replays,
        // never one fix per consumer.
        assert!(pull.push.is_none());
        let ps = push.push.as_ref().expect("push summary");
        assert!(ps.drivers >= 1, "no driver founded: {ps:?}");
        assert!(ps.attaches >= 1, "nobody rode along: {ps:?}");
        assert!(ps.extents_delivered > 0);
        assert!(ps.consumer_pages > ps.pages_delivered, "{ps:?}");
        assert!(
            ps.fixes_per_page() < 2.0,
            "catch-up replays exceeded a full second lap: {ps:?}"
        );
        // Provenance narrates the cohort: one DriverAttach per consumer.
        use scanshare::DecisionEvent;
        let attaches = push
            .decisions
            .iter()
            .filter(|d| matches!(d.event, DecisionEvent::DriverAttach { .. }))
            .count();
        assert_eq!(attaches as u64, ps.drivers + ps.attaches);
        // The driver pays the pool fixes; riders pay none beyond their
        // private catch-up cursors.
        let fixes: u64 = push.queries.iter().map(|q| q.logical_reads).sum();
        assert_eq!(fixes, ps.pages_delivered + ps.catchup_pages);
    }

    #[test]
    fn push_runs_are_deterministic() {
        use scanshare::DeliveryMode;
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let mut cfg = SharingConfig::new(0);
        cfg.delivery = DeliveryMode::Push;
        let s = spec(&db, three_staggered(&q), SharingMode::ScanSharing(cfg));
        let r1 = run_workload(&db, &s).unwrap();
        let r2 = run_workload(&db, &s).unwrap();
        assert_eq!(
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let s = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let r1 = run_workload(&db, &s).unwrap();
        let r2 = run_workload(&db, &s).unwrap();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.disk.pages_read, r2.disk.pages_read);
        assert_eq!(r1.disk.seeks, r2.disk.seeks);
    }

    #[test]
    fn staggered_streams_start_at_their_offsets() {
        let db = build_db();
        let q = q6_like("Q6", 0, 3);
        let streams = vec![
            Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::ZERO,
            },
            Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::from_secs(10),
            },
        ];
        let r = run_workload(&db, &spec(&db, streams, SharingMode::Base)).unwrap();
        let q1 = r.queries.iter().find(|r| r.stream == 1).unwrap();
        assert!(q1.start >= SimTime::from_secs(10));
    }

    #[test]
    fn multi_scan_queries_run_their_scans_sequentially() {
        let db = build_db();
        let q = Query {
            name: "J".into(),
            scans: vec![
                table_q("x").scans[0].clone(),
                q6_like("y", 0, 2).scans[0].clone(),
            ],
        };
        let r = run_workload(
            &db,
            &spec(
                &db,
                vec![Stream {
                    queries: vec![q],
                    start_offset: SimDuration::ZERO,
                }],
                SharingMode::Base,
            ),
        )
        .unwrap();
        assert_eq!(r.queries.len(), 1);
        // Counts from both scans are absorbed.
        assert_eq!(r.queries[0].result.count, 30_000 + 30_000);
        assert_eq!(r.queries[0].result.sums.len(), 2);
    }

    #[test]
    fn repeated_inner_scans_run_n_times_and_share_leftovers() {
        let db = build_db();
        // A nested-loop-ish query: the inner index scan runs 4 times.
        let mut q = q6_like("NL", 0, 5);
        q.scans[0].repeat = 4;
        let streams = vec![Stream {
            queries: vec![q],
            start_offset: SimDuration::ZERO,
        }];
        let mk = |mode| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 256,
            engine: EngineConfig::default(),
            mode,
            faults: Default::default(),
            slo: Default::default(),
        };
        let base = run_workload(&db, &mk(SharingMode::Base)).unwrap();
        let ss = run_workload(&db, &mk(SharingMode::ScanSharing(SharingConfig::new(0)))).unwrap();
        // All 4 repeats' rows are aggregated.
        assert_eq!(base.queries[0].result.count, 4 * 60_000);
        assert_eq!(ss.queries[0].result.count, 4 * 60_000);
        // Sharing mode re-joins the finished scan's leftovers each
        // repeat; base (ringed) re-reads almost everything.
        assert!(
            ss.disk.pages_read < base.disk.pages_read,
            "ss {} base {}",
            ss.disk.pages_read,
            base.disk.pages_read
        );
    }

    #[test]
    fn tracer_captures_sharing_decisions() {
        use crate::trace::{TraceEvent, Tracer};
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let spec = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let tracer = Tracer::new(1024);
        run_workload_traced(&db, &spec, tracer.clone()).unwrap();
        let records = tracer.records();
        let starts = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ScanStarted { .. }))
            .count();
        let finishes = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ScanFinished { .. }))
            .count();
        assert_eq!(starts, 3);
        assert_eq!(finishes, 3);
        // At least one scan joined another (captured in the label).
        assert!(records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::ScanStarted { placement, .. } if placement.contains("join")
        )));
        // Rendering mentions the query.
        assert!(tracer.render().contains("Q6"));
    }

    #[test]
    fn shared_run_reports_observability_series_and_histograms() {
        let db = build_db();
        // A fast I/O-bound scan grouped with a slow CPU-bound one over
        // the same range: the fast leader runs ahead and gets throttled.
        let fast = q6_like("fast", 0, 11);
        let mut slow = q6_like("slow", 0, 11);
        slow.scans[0].cpu = CpuClass::cpu_bound();
        let streams = vec![
            Stream {
                queries: vec![fast],
                start_offset: SimDuration::ZERO,
            },
            Stream {
                queries: vec![slow],
                start_offset: SimDuration::from_millis(10),
            },
        ];
        let spec = spec(
            &db,
            streams,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let r = run_workload(&db, &spec).unwrap();
        let m = &r.metrics;
        assert_eq!(m.at, SimTime::ZERO + r.makespan);
        // The disk read-latency histogram saw every physical request.
        let h = m.histogram("disk.read_us").expect("read histogram");
        assert_eq!(h.count, r.disk.requests);
        assert!(h.p50 > 0 && h.p50 <= h.p99);
        // Interval sampling produced pool and disk series.
        assert!(m.series("pool.hit_ratio").expect("hit ratio").points.len() > 1);
        let seek = m.series("disk.seek_distance").expect("seek distance");
        assert_eq!(
            seek.points.last().map(|p| p.value as u64),
            Some(r.disk.seek_distance_pages)
        );
        // The overlapping scans formed at least one group with a
        // nonzero leader-trailer distance at some sample...
        let dists: Vec<_> = m.series_with_prefix("group.").collect();
        assert!(!dists.is_empty(), "no per-group distance series");
        assert!(dists.iter().any(|s| s.max_value() > 0.0));
        // ...and at least one trailer accumulated slowdown against its
        // fairness-cap budget.
        let slow: Vec<_> = m.series_with_prefix("scan.").collect();
        assert!(!slow.is_empty(), "no per-scan slowdown series");
        assert!(slow.iter().any(|s| s.max_value() > 0.0));
        assert!(slow.iter().all(|s| s.max_value() <= 1.0));
        // Throttle waits were recorded as a histogram too.
        let t = m.histogram("throttle.wait_us").expect("throttle histogram");
        assert!(t.count > 0);
        // The seek-distance series rode along in the report.
        assert_eq!(r.seek_distance_series.total(), r.disk.seek_distance_pages);
    }

    #[test]
    fn metrics_interval_zero_disables_interval_sampling() {
        let db = build_db();
        let q = q6_like("Q6", 0, 5);
        let mut spec = spec(&db, three_staggered(&q), SharingMode::Base);
        spec.engine.metrics_interval = SimDuration::ZERO;
        let r = run_workload(&db, &spec).unwrap();
        // Only the single closing sample at the makespan remains.
        let hit = r.metrics.series("pool.hit_ratio").expect("hit ratio");
        assert_eq!(hit.points.len(), 1);
        assert_eq!(hit.points[0].at_us, r.makespan.as_micros());
    }

    #[test]
    fn traced_run_embeds_its_events_in_the_report() {
        use crate::trace::{spans, Tracer};
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let spec = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let tracer = Tracer::new(4096);
        let r = run_workload_traced(&db, &spec, tracer.clone()).unwrap();
        assert_eq!(r.trace.len(), tracer.records().len());
        assert!(!r.trace.is_empty());
        let spans = spans(&r.trace);
        assert_eq!(spans.len(), 3);
        assert!(spans
            .iter()
            .all(|s| s.start.is_some() && s.finish.is_some()));
        // An untraced run embeds nothing.
        let quiet = run_workload(&db, &spec).unwrap();
        assert!(quiet.trace.is_empty());
    }

    #[test]
    fn shared_run_embeds_decision_provenance() {
        use scanshare::DecisionEvent;
        let db = build_db();
        // Fast leader + slow trailer over the same range, so the log
        // covers grouping, throttling, and page reprioritisation.
        let fast = q6_like("fast", 0, 11);
        let mut slow = q6_like("slow", 0, 11);
        slow.scans[0].cpu = CpuClass::cpu_bound();
        let streams = vec![
            Stream {
                queries: vec![fast],
                start_offset: SimDuration::ZERO,
            },
            Stream {
                queries: vec![slow],
                start_offset: SimDuration::from_millis(10),
            },
        ];
        let spec = spec(
            &db,
            streams,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let r = run_workload(&db, &spec).unwrap();
        assert!(!r.decisions.is_empty(), "sharing run must embed decisions");
        // Per-scan the log is time-ordered (the global log interleaves
        // streams whose steps complete at different times), and it
        // covers the decisive event kinds.
        for scan in r.decisions.iter().map(|d| d.event.scan()) {
            let times: Vec<_> = r
                .decisions
                .iter()
                .filter(|d| d.event.scan() == scan)
                .map(|d| d.at)
                .collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
        let has =
            |pred: &dyn Fn(&DecisionEvent) -> bool| r.decisions.iter().any(|d| pred(&d.event));
        assert!(has(&|e| matches!(e, DecisionEvent::GroupStart { .. })));
        assert!(has(&|e| matches!(e, DecisionEvent::GroupJoin { .. })));
        assert!(has(&|e| matches!(e, DecisionEvent::Throttle { .. })));
        assert!(has(&|e| matches!(e, DecisionEvent::RoleChange { .. })));
        // Base mode embeds none.
        let mut base_spec = spec.clone();
        base_spec.mode = SharingMode::Base;
        let base = run_workload(&db, &base_spec).unwrap();
        assert!(base.decisions.is_empty());
        // A caller-supplied log sees the same records the report embeds.
        let log = DecisionLog::new(1024);
        let hooked = run_workload_hooked(
            &db,
            &spec,
            RunHooks {
                decisions: Some(log.clone()),
                ..RunHooks::default()
            },
        )
        .unwrap();
        assert_eq!(hooked.decisions.len(), log.len());
        assert!(!hooked.decisions.is_empty());
    }

    #[test]
    fn watch_observer_streams_frames_in_time_order() {
        use std::sync::Mutex;
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let spec = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let frames: Arc<Mutex<Vec<WatchFrame>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = frames.clone();
        let r = run_workload_hooked(
            &db,
            &spec,
            RunHooks {
                observer: Some(Arc::new(move |f: &WatchFrame| {
                    sink.lock().unwrap().push(f.clone());
                })),
                ..RunHooks::default()
            },
        )
        .unwrap();
        let frames = frames.lock().unwrap();
        assert!(frames.len() > 1, "expected one frame per sample tick");
        assert!(frames.windows(2).all(|w| w[0].at <= w[1].at));
        // The closing frame reflects the finished run.
        let last = frames.last().unwrap();
        assert_eq!(last.at, SimTime::ZERO + r.makespan);
        assert_eq!(last.queries_done, r.queries.len());
        assert_eq!(last.pool_capacity, spec.pool_pages);
        assert!(last.resident.len() <= last.pool_capacity);
        // Sharing mode attaches a probe; mid-run some frame saw scans.
        assert!(frames.iter().all(|f| f.probe.is_some()));
        assert!(frames
            .iter()
            .any(|f| !f.probe.as_ref().unwrap().scans.is_empty()));
        // Residency never exceeds capacity and pages carry priorities.
        assert!(frames.iter().any(|f| !f.resident.is_empty()));
    }

    fn fault_plan(seed: u64, rules: Vec<scanshare_storage::FaultRule>) -> FaultsConfig {
        FaultsConfig {
            plan: scanshare_storage::FaultPlan { seed, rules },
            ..FaultsConfig::default()
        }
    }

    #[test]
    fn transient_fault_plan_preserves_answers_and_counts_retries() {
        use scanshare_storage::{FaultKind, FaultRule};
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let clean = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let mut faulty = clean.clone();
        faulty.faults = fault_plan(
            7,
            vec![FaultRule {
                device: None,
                pages: None,
                from_us: 0,
                until_us: None,
                fault: FaultKind::TransientError { probability: 0.01 },
            }],
        );
        let r0 = run_workload(&db, &clean).unwrap();
        let r = run_workload(&db, &faulty).unwrap();
        // Every retry absorbed its transient error: answers unchanged,
        // nothing aborted, and the delays only cost time.
        assert_eq!(r.queries.len(), r0.queries.len());
        for (a, b) in r0.queries.iter().zip(&r.queries) {
            assert_eq!(a.result.count, b.result.count);
        }
        assert!(
            r.faults.transient_errors > 0,
            "plan never fired: {:?}",
            r.faults
        );
        assert_eq!(r.faults.retries, r.faults.transient_errors);
        assert_eq!(r.faults.scans_aborted, 0);
        assert!(r.makespan >= r0.makespan);
        // The counters rode into the metrics snapshot.
        assert_eq!(r.metrics.counter("faults.retries"), Some(r.faults.retries));
        // The fault-free run registered none of them.
        assert_eq!(r0.metrics.counter("faults.retries"), None);
        assert!(r0.faults.is_empty());
    }

    #[test]
    fn permanent_fault_degrades_the_run_instead_of_failing_it() {
        use scanshare::DecisionEvent;
        use scanshare_storage::{FaultKind, FaultRule};
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let mut spec = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        // The device dies for good 100 virtual ms in: scans that already
        // grouped keep running on pool hits, then abort one by one as
        // they need fresh pages.
        spec.faults = fault_plan(
            0,
            vec![FaultRule {
                device: None,
                pages: None,
                from_us: 100_000,
                until_us: None,
                fault: FaultKind::PermanentError,
            }],
        );
        let r = run_workload(&db, &spec).unwrap();
        // The run completed and every query record exists, with partial
        // answers for the aborted scans.
        assert_eq!(r.queries.len(), 3);
        assert!(
            r.faults.scans_aborted > 0,
            "nothing aborted: {:?}",
            r.faults
        );
        assert!(r.faults.permanent_errors >= r.faults.scans_aborted);
        assert_eq!(
            r.metrics.counter("faults.scans_aborted"),
            Some(r.faults.scans_aborted)
        );
        // Provenance narrates the degradation: the injected faults, the
        // group evictions, and the degraded-mode transitions.
        let has =
            |pred: &dyn Fn(&DecisionEvent) -> bool| r.decisions.iter().any(|d| pred(&d.event));
        assert!(has(&|e| matches!(
            e,
            DecisionEvent::FaultInjected {
                transient: false,
                ..
            }
        )));
        assert!(has(&|e| matches!(e, DecisionEvent::ScanEvicted { .. })));
        assert!(has(&|e| matches!(e, DecisionEvent::DegradedMode { .. })));
        // Eviction reasons carry the failing device and page.
        assert!(r.decisions.iter().any(|d| matches!(
            &d.event,
            DecisionEvent::ScanEvicted { reason, .. } if reason.contains("permanent read fault")
        )));
    }

    #[test]
    fn empty_fault_section_is_byte_identical_to_no_section() {
        let db = build_db();
        let q = q6_like("Q6", 0, 5);
        let clean = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let mut armed = clean.clone();
        armed.faults = FaultsConfig::default();
        let a = run_workload(&db, &clean).unwrap();
        let b = run_workload(&db, &armed).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "an empty fault plan must not perturb the report"
        );
        // And the report JSON carries no faults section at all.
        assert!(!serde_json::to_string(&a).unwrap().contains("\"faults\""));
    }

    #[test]
    fn profiled_run_exports_a_valid_span_tree() {
        use scanshare::obs::span::validate_chrome_trace;
        let db = build_db();
        // Throttling workload (fast leader + slow trailer) so the span
        // tree covers fetch, cpu, throttle, and manager phases.
        let fast = q6_like("fast", 0, 11);
        let mut slow = q6_like("slow", 0, 11);
        slow.scans[0].cpu = CpuClass::cpu_bound();
        let streams = vec![
            Stream {
                queries: vec![fast],
                start_offset: SimDuration::ZERO,
            },
            Stream {
                queries: vec![slow],
                start_offset: SimDuration::from_millis(10),
            },
        ];
        let spec = spec(
            &db,
            streams,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let profiler = SpanProfiler::default();
        let r = run_workload_hooked(
            &db,
            &spec,
            RunHooks {
                profiler: Some(profiler.clone()),
                ..RunHooks::default()
            },
        )
        .unwrap();
        // The export is a valid Chrome trace.
        let trace = profiler.perfetto();
        validate_chrome_trace(&trace).expect("valid chrome trace");
        // The root engine.run span covers the whole makespan, and the
        // expected phases all appear.
        let sum = profiler.summary();
        let run = sum.phases.iter().find(|p| p.name == "engine.run").unwrap();
        assert_eq!(run.vt_incl_us, r.makespan.as_micros());
        for phase in ["scan.step", "extent.fetch", "cpu.process", "throttle.wait"] {
            assert!(
                sum.phases.iter().any(|p| p.name == phase),
                "missing phase {phase}"
            );
        }
        let records = profiler.records();
        assert!(records.iter().any(|s| s.name == "mgr.place"));
        assert!(records.iter().any(|s| s.name == "io.miss"
            && s.attrs.iter().any(|(k, _)| k == "device")
            && s.attrs.iter().any(|(k, _)| k == "seek_distance_pages")));
        // Virtual exclusive time measures aggregate stream-seconds: with
        // concurrently simulated streams it meets or exceeds the
        // makespan. Wall-clock exclusive time partitions the recording
        // exactly (the event loop is single-threaded on the host).
        let excl: u64 = sum.phases.iter().map(|p| p.vt_excl_us).sum();
        assert!(excl >= sum.total_vt_us, "{excl} < {}", sum.total_vt_us);
        let wall = sum.wall.as_ref().unwrap();
        let wall_excl: u64 = wall.phases.iter().map(|p| p.excl_ns).sum();
        assert_eq!(wall_excl, wall.total_ns);
        // The run itself reports no profile section (the profiler's
        // owner embeds it) and the profiled run's report matches an
        // unprofiled one byte for byte.
        let plain = run_workload(&db, &spec).unwrap();
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&r).unwrap(),
            "profiling must not perturb the report"
        );
    }

    #[test]
    fn unprofiled_report_has_no_profile_or_slo_section() {
        let db = build_db();
        let q = q6_like("Q6", 0, 5);
        let spec = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let json = serde_json::to_string(&run_workload(&db, &spec).unwrap()).unwrap();
        assert!(!json.contains("\"profile\""));
        assert!(!json.contains("\"slo\""));
    }

    #[test]
    fn slo_rules_are_evaluated_into_the_report() {
        use crate::slo::{SloOp, SloRule};
        let db = build_db();
        let q = q6_like("Q6", 0, 11);
        let mut s = spec(
            &db,
            three_staggered(&q),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        s.slo.rules = vec![
            SloRule {
                name: "pool locality".into(),
                metric: "hit_ratio".into(),
                op: SloOp::Ge,
                value: 0.01,
            },
            SloRule {
                name: "impossible".into(),
                metric: "hit_ratio".into(),
                op: SloOp::Ge,
                value: 2.0,
            },
        ];
        let r = run_workload(&db, &s).unwrap();
        assert_eq!(r.slo.len(), 2);
        assert!(r.slo[0].passed);
        assert!(!r.slo[1].passed);
        assert_eq!(r.slo[0].observed, r.pool.hit_ratio());
        // The section round-trips through the report JSON.
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"slo\""));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.slo, r.slo);
    }

    #[test]
    fn empty_workload_is_empty_report() {
        let db = build_db();
        let r = run_workload(&db, &spec(&db, vec![], SharingMode::Base)).unwrap();
        assert_eq!(r.queries.len(), 0);
        assert_eq!(r.makespan, SimDuration::ZERO);
    }

    #[test]
    fn report_helpers_aggregate_per_query() {
        let db = build_db();
        let q = q6_like("Q6", 0, 5);
        let r = run_workload(&db, &spec(&db, three_staggered(&q), SharingMode::Base)).unwrap();
        assert_eq!(r.query_names(), vec!["Q6".to_string()]);
        assert!(r.avg_query_time("Q6").unwrap() > SimDuration::ZERO);
        assert!(r.avg_query_time("nope").is_none());
    }
}
