//! Query descriptions: scans, predicates, aggregates.
//!
//! Queries in this engine are what the papers' workload needs them to be:
//! one or more scans, each with a row predicate, an aggregation, and a
//! CPU class. That covers TPC-H Q1/Q6 faithfully and parameterizes the
//! remaining templates.

use scanshare_relstore::RowRef;
use serde::{Deserialize, Serialize};

use crate::cost::CpuClass;

/// How a scan accesses its table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    /// Sequential scan over every page of a heap or MDC table.
    FullTable,
    /// Block index scan over clustering-key cells in `[lo, hi]`.
    IndexRange {
        /// Lowest cell key, inclusive.
        lo: i64,
        /// Highest cell key, inclusive.
        hi: i64,
    },
    /// RID index scan: traverse the secondary index over `[lo, hi]` and
    /// fetch each qualifying row by RID. Keys come back in order, but
    /// the underlying heap pages do not (§3.2 of the paper) — this is
    /// the seek-heavy general case of index scans.
    RidRange {
        /// Lowest key, inclusive.
        lo: i64,
        /// Highest key, inclusive.
        hi: i64,
    },
}

/// A row predicate. Column indexes refer to the table schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pred {
    /// Every row qualifies.
    True,
    /// `lo <= int32_col <= hi`.
    I32Between(usize, i32, i32),
    /// `float_col < x`.
    F64LessThan(usize, f64),
    /// `char_col == c`.
    CharEq(usize, u8),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
}

impl Pred {
    /// Evaluate against a row.
    pub fn eval(&self, row: &RowRef<'_>) -> bool {
        match self {
            Pred::True => true,
            Pred::I32Between(col, lo, hi) => {
                let v = row.get_i32(*col);
                *lo <= v && v <= *hi
            }
            Pred::F64LessThan(col, x) => row.get_f64(*col) < *x,
            Pred::CharEq(col, c) => row.get_char(*col) == *c,
            Pred::And(a, b) => a.eval(row) && b.eval(row),
        }
    }
}

/// What to aggregate over qualifying rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Float columns to sum.
    pub sum_cols: Vec<usize>,
    /// `Char` columns to group by (packed into one group key, one byte
    /// per column — TPC-H Q1's `GROUP BY l_returnflag, l_linestatus`).
    /// Empty = a single global group.
    #[serde(default)]
    pub group_by: Vec<usize>,
}

impl AggSpec {
    /// Count-only aggregation.
    pub fn count_only() -> Self {
        AggSpec {
            sum_cols: vec![],
            group_by: vec![],
        }
    }

    /// Sum the given float columns.
    pub fn sums(cols: Vec<usize>) -> Self {
        AggSpec {
            sum_cols: cols,
            group_by: vec![],
        }
    }

    /// Sum the given float columns per group of the given `Char` columns.
    pub fn grouped_sums(cols: Vec<usize>, group_by: Vec<usize>) -> Self {
        AggSpec {
            sum_cols: cols,
            group_by,
        }
    }

    /// Pack a row's group-by values into one key (one byte per column).
    pub fn group_key(&self, row: &RowRef<'_>) -> i64 {
        let mut key = 0i64;
        for &col in &self.group_by {
            key = (key << 8) | row.get_char(col) as i64;
        }
        key
    }
}

/// Per-group aggregation state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroupAgg {
    /// Qualifying rows in the group.
    pub count: u64,
    /// Column sums, in `sum_cols` order.
    pub sums: Vec<f64>,
}

/// One scan of a query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanSpec {
    /// Name of the table to scan.
    pub table: String,
    /// Access path.
    pub access: Access,
    /// Row predicate.
    pub pred: Pred,
    /// Aggregation over qualifying rows.
    pub agg: AggSpec,
    /// CPU weight of the scan.
    pub cpu: CpuClass,
    /// The plan requires rows in key order (e.g. to feed a merge join or
    /// an ordered group-by). §4.1 of the paper: "if the query optimizer
    /// decides to use an index scan for getting records ordered on the
    /// index key value, it can only use IXSCANs" — ordered scans never
    /// participate in sharing, because a SISCAN's two-phase traversal
    /// breaks key order.
    #[serde(default)]
    pub require_order: bool,
    /// Importance of the owning query, forwarded to the sharing manager
    /// for the dynamic-fairness extension.
    #[serde(default)]
    pub query_priority: scanshare::QueryPriority,
    /// Execute the scan this many times back to back (default 1). Models
    /// the inner of a nested-loop join, which §6.1 of the paper calls
    /// out as a scan "repeated multiple times" — a prime target for the
    /// last-finished-scan placement.
    #[serde(default = "default_repeat")]
    pub repeat: u32,
}

fn default_repeat() -> u32 {
    1
}

/// A named query: its scans run sequentially.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    /// Query name (e.g. "Q6").
    pub name: String,
    /// The scans, executed in order.
    pub scans: Vec<ScanSpec>,
}

impl Query {
    /// A single-scan query.
    pub fn single(name: impl Into<String>, scan: ScanSpec) -> Self {
        Query {
            name: name.into(),
            scans: vec![scan],
        }
    }
}

/// The numeric answer of a query — used to assert that base and
/// scan-sharing runs compute identical results.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryResult {
    /// Rows that qualified, across all scans.
    pub count: u64,
    /// Column sums, concatenated across scans in scan order.
    pub sums: Vec<f64>,
    /// Per-group aggregates, sorted by group key (empty unless a scan
    /// grouped). Keys from different scans are merged.
    #[serde(default)]
    pub groups: Vec<(i64, GroupAgg)>,
}

impl QueryResult {
    /// Merge another scan's result into this query result.
    pub fn absorb(&mut self, other: QueryResult) {
        self.count += other.count;
        self.sums.extend(other.sums);
        for (key, agg) in other.groups {
            match self.groups.binary_search_by_key(&key, |g| g.0) {
                Ok(i) => {
                    self.groups[i].1.count += agg.count;
                    if self.groups[i].1.sums.len() == agg.sums.len() {
                        for (a, b) in self.groups[i].1.sums.iter_mut().zip(&agg.sums) {
                            *a += b;
                        }
                    } else {
                        self.groups[i].1.sums.extend(agg.sums);
                    }
                }
                Err(i) => self.groups.insert(i, (key, agg)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_relstore::{ColType, Column, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", ColType::Int32),
            Column::new("b", ColType::Float64),
            Column::new("c", ColType::Char),
        ])
    }

    fn row_bytes(s: &Schema, a: i32, b: f64, c: u8) -> Vec<u8> {
        let mut buf = vec![0u8; s.row_width()];
        s.encode_row(&[Value::I32(a), Value::F64(b), Value::Ch(c)], &mut buf);
        buf
    }

    #[test]
    fn predicates_evaluate() {
        let s = schema();
        let bytes = row_bytes(&s, 5, 2.5, b'R');
        let row = RowRef {
            bytes: &bytes,
            schema: &s,
        };
        assert!(Pred::True.eval(&row));
        assert!(Pred::I32Between(0, 0, 10).eval(&row));
        assert!(!Pred::I32Between(0, 6, 10).eval(&row));
        assert!(Pred::F64LessThan(1, 3.0).eval(&row));
        assert!(!Pred::F64LessThan(1, 2.5).eval(&row));
        assert!(Pred::CharEq(2, b'R').eval(&row));
        assert!(Pred::And(
            Box::new(Pred::I32Between(0, 5, 5)),
            Box::new(Pred::CharEq(2, b'R'))
        )
        .eval(&row));
        assert!(!Pred::And(
            Box::new(Pred::I32Between(0, 5, 5)),
            Box::new(Pred::CharEq(2, b'X'))
        )
        .eval(&row));
    }

    #[test]
    fn result_absorb_concatenates() {
        let mut r = QueryResult {
            count: 2,
            sums: vec![1.0],
            groups: vec![],
        };
        r.absorb(QueryResult {
            count: 3,
            sums: vec![4.0, 5.0],
            groups: vec![],
        });
        assert_eq!(r.count, 5);
        assert_eq!(r.sums, vec![1.0, 4.0, 5.0]);
    }

    #[test]
    fn group_keys_pack_chars() {
        let s = schema();
        let bytes = row_bytes(&s, 1, 0.0, b'R');
        let row = RowRef {
            bytes: &bytes,
            schema: &s,
        };
        let agg = AggSpec::grouped_sums(vec![1], vec![2, 2]);
        assert_eq!(agg.group_key(&row), ((b'R' as i64) << 8) | b'R' as i64);
        assert_eq!(AggSpec::sums(vec![1]).group_key(&row), 0);
    }

    #[test]
    fn absorb_merges_groups_by_key() {
        let g = |count, sums: Vec<f64>| GroupAgg { count, sums };
        let mut r = QueryResult {
            count: 1,
            sums: vec![],
            groups: vec![(1, g(1, vec![10.0])), (3, g(2, vec![30.0]))],
        };
        r.absorb(QueryResult {
            count: 2,
            sums: vec![],
            groups: vec![(1, g(4, vec![1.0])), (2, g(5, vec![2.0]))],
        });
        assert_eq!(r.groups.len(), 3);
        assert_eq!(r.groups[0], (1, g(5, vec![11.0])));
        assert_eq!(r.groups[1], (2, g(5, vec![2.0])));
        assert_eq!(r.groups[2], (3, g(2, vec![30.0])));
    }
}
