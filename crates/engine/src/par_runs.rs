//! Parallel multi-run driver: fan independent simulations across threads.
//!
//! A single simulated run is inherently sequential — it is one
//! discrete-event loop over virtual time — but experiments rarely need
//! just one run. Sweeps (`exp_fairness`, `exp_disks`), the perf gate's
//! base/scan-sharing pair, and parameter studies all execute *independent*
//! `run_workload` invocations that only meet again at reporting time.
//! This module spreads those invocations over a bounded pool of scoped
//! threads.
//!
//! # Determinism
//!
//! Results are **bit-identical regardless of worker count**. Each run is
//! a pure function of `(db, spec)` — the simulator takes no wall-clock
//! input and shares no mutable state between runs — and [`par_map`]
//! returns results in input order, so `--jobs 8` produces byte-for-byte
//! the same reports as `--jobs 1`. Only the wall-clock time changes.
//!
//! Work is distributed by an atomic work-stealing index rather than
//! pre-chunking, so a long run (say the scan-sharing leg of a pair)
//! never strands short runs behind it on the same worker.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::db::Database;
use crate::error::EngineResult;
use crate::metrics::RunReport;
use crate::workload::{run_workload, WorkloadSpec};

/// Map `f` over `items` on up to `jobs` scoped worker threads, returning
/// results in input order.
///
/// `jobs` is clamped to `[1, items.len()]`; `jobs <= 1` runs inline on
/// the caller's thread with no spawning at all. `f` receives the item's
/// index alongside the item so callers can label work without capturing
/// mutable state.
///
/// # Panics
///
/// Propagates a panic from `f` after the remaining workers drain.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(move || {
                    let mut got: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        got.push((i, f(i, item)));
                    }
                    got
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("par_map worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Run every workload spec against `db` on up to `jobs` threads,
/// returning reports in spec order.
///
/// Runs are independent simulations: each builds its own buffer pool,
/// disk model, and (when sharing) manager, and reads the database
/// immutably, so fanning them out cannot change any simulated metric.
pub fn run_workloads(
    db: &Database,
    specs: &[WorkloadSpec],
    jobs: usize,
) -> Vec<EngineResult<RunReport>> {
    par_map(jobs, specs, |_, spec| run_workload(db, spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_keeps_input_order() {
        let items: Vec<u64> = (0..37).collect();
        let doubled = par_map(4, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_inline_when_single_job() {
        // jobs = 0 and jobs = 1 both run on the caller's thread.
        let caller = std::thread::current().id();
        for jobs in [0, 1] {
            let seen = par_map(jobs, &[10, 20], |_, &x| (std::thread::current().id(), x));
            assert!(seen.iter().all(|(t, _)| *t == caller));
            assert_eq!(seen.iter().map(|&(_, x)| x).collect::<Vec<_>>(), [10, 20]);
        }
    }

    #[test]
    fn par_map_handles_more_jobs_than_items() {
        let out = par_map(16, &[1, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<i32> = par_map(8, &[], |_, x: &i32| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn reports_are_bit_identical_across_worker_counts() {
        use crate::cost::{CpuClass, EngineConfig};
        use crate::query::{Access, AggSpec, Pred, Query, ScanSpec};
        use crate::workload::{SharingMode, Stream};
        use scanshare::SharingConfig;
        use scanshare_relstore::{ColType, Column, Schema, Value};
        use scanshare_storage::SimDuration;

        let mut db = Database::new(16);
        let schema = Schema::new(vec![
            Column::new("month", ColType::Int32),
            Column::new("amount", ColType::Float64),
        ]);
        db.create_mdc_table(
            "lineitem",
            schema,
            16,
            (0..60_000).map(|i| ((i % 12) as i64, vec![Value::I32(i % 12), Value::F64(1.0)])),
        )
        .unwrap();
        let q = Query::single(
            "Q6",
            ScanSpec {
                table: "lineitem".into(),
                access: Access::IndexRange { lo: 0, hi: 11 },
                pred: Pred::True,
                agg: AggSpec::sums(vec![1]),
                cpu: CpuClass::io_bound(),
                require_order: false,
                query_priority: Default::default(),
                repeat: 1,
            },
        );
        let streams: Vec<Stream> = (0..3)
            .map(|i| Stream {
                queries: vec![q.clone()],
                start_offset: SimDuration::from_millis(i * 50),
            })
            .collect();
        let spec = |mode| WorkloadSpec {
            streams: streams.clone(),
            pool_pages: 128,
            engine: EngineConfig::default(),
            mode,
            faults: Default::default(),
            slo: Default::default(),
        };
        // Include a faulted spec: retry/backoff bookkeeping must be as
        // schedule-independent as the clean runs.
        let faulted = {
            use crate::faults::FaultsConfig;
            use scanshare_storage::{FaultKind, FaultPlan, FaultRule};
            let mut s = spec(SharingMode::ScanSharing(SharingConfig::new(0)));
            s.faults = FaultsConfig {
                plan: FaultPlan {
                    seed: 7,
                    rules: vec![FaultRule {
                        device: None,
                        pages: None,
                        from_us: 0,
                        until_us: None,
                        fault: FaultKind::TransientError { probability: 0.02 },
                    }],
                },
                ..FaultsConfig::default()
            };
            s
        };
        let specs = vec![
            spec(SharingMode::Base),
            spec(SharingMode::ScanSharing(SharingConfig::new(0))),
            spec(SharingMode::Base),
            faulted,
        ];
        let render = |reports: Vec<EngineResult<RunReport>>| -> Vec<String> {
            reports
                .into_iter()
                .map(|r| serde_json::to_string(&r.unwrap()).unwrap())
                .collect()
        };
        let serial = render(run_workloads(&db, &specs, 1));
        for jobs in [2, 3, 8] {
            assert_eq!(render(run_workloads(&db, &specs, jobs)), serial);
        }

        // Profiled runs stay schedule-independent on the virtual clock:
        // each run records into its own profiler, and the virtual-time
        // projection of the summary is byte-identical for any `--jobs`.
        let profiled = |jobs: usize| -> Vec<String> {
            use crate::workload::{run_workload_hooked, RunHooks};
            use scanshare::SpanProfiler;
            par_map(jobs, &specs, |_, spec| {
                let profiler = SpanProfiler::default();
                let hooks = RunHooks {
                    profiler: Some(profiler.clone()),
                    ..RunHooks::default()
                };
                run_workload_hooked(&db, spec, hooks).unwrap();
                serde_json::to_string(&profiler.summary().virtual_only()).unwrap()
            })
        };
        let profiled_serial = profiled(1);
        for jobs in [2, 8] {
            assert_eq!(profiled(jobs), profiled_serial);
        }
    }
}
