//! Engine error type.

use std::fmt;

use scanshare_storage::StorageError;

/// Errors raised while planning or executing a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A storage-layer failure.
    Storage(StorageError),
    /// A query referenced a table that does not exist.
    UnknownTable(String),
    /// An index scan targeted a table that is not block-clustered.
    NotClustered(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            EngineError::NotClustered(t) => {
                write!(f, "table '{t}' has no block index (not MDC-clustered)")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: EngineError = StorageError::UnknownFile(scanshare_storage::FileId(3)).into();
        assert!(e.to_string().contains("storage error"));
        assert_eq!(
            EngineError::UnknownTable("x".into()).to_string(),
            "unknown table 'x'"
        );
    }
}
