//! The database facade: a page store plus a catalog of loaded tables.

use std::collections::HashMap;

use scanshare_relstore::{
    BTree, Entry, HeapWriter, MdcTableBuilder, Schema, TableKind, TableMeta, Value,
};
use scanshare_storage::{FileStore, StorageResult};

/// An in-memory database: the authoritative pages of every table plus
/// table metadata. Runs borrow it immutably — the executor only reads
/// table pages, all run-local state (pool, disk, manager) lives in the
/// run itself, so base and scan-sharing runs see identical data.
#[derive(Debug)]
pub struct Database {
    store: FileStore,
    tables: HashMap<String, TableMeta>,
}

impl Database {
    /// Create an empty database whose volume allocates `extent_pages`
    /// page runs.
    pub fn new(extent_pages: u32) -> Self {
        Database {
            store: FileStore::new(extent_pages),
            tables: HashMap::new(),
        }
    }

    /// The backing page store.
    pub fn store(&self) -> &FileStore {
        &self.store
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&TableMeta> {
        self.tables.get(name)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        names.sort();
        names
    }

    /// Bulk-load a heap table from rows in insertion order.
    pub fn create_heap_table<I>(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        rows: I,
    ) -> StorageResult<&TableMeta>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let name = name.into();
        let mut w = HeapWriter::create(&mut self.store, schema);
        for row in rows {
            w.append(&mut self.store, &row)?;
        }
        let heap = w.finish(&mut self.store)?;
        self.tables.insert(
            name.clone(),
            TableMeta {
                name: name.clone(),
                kind: TableKind::Heap(heap),
                rid_index: None,
            },
        );
        Ok(&self.tables[&name])
    }

    /// Bulk-load a heap table and build a secondary RID index on the
    /// `Int32` column `key_col`. This is the general index-scan substrate
    /// of the papers' §3.2: the index orders keys, but the RIDs behind a
    /// key range are scattered across the heap in insertion order, so a
    /// key-ordered scan seeks.
    pub fn create_heap_table_with_index<I>(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        key_col: usize,
        rows: I,
    ) -> StorageResult<&TableMeta>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let name = name.into();
        let mut w = HeapWriter::create(&mut self.store, schema);
        let mut entries: Vec<Entry> = Vec::new();
        for row in rows {
            let key = match row[key_col] {
                Value::I32(k) => k as i64,
                Value::I64(k) => k,
                _ => panic!("RID index key column must be an integer"),
            };
            let rid = w.append(&mut self.store, &row)?;
            entries.push(Entry::new(key, rid.pack()));
        }
        let heap = w.finish(&mut self.store)?;
        entries.sort();
        let index = BTree::bulk_load(&mut self.store, &entries)?;
        self.tables.insert(
            name.clone(),
            TableMeta {
                name: name.clone(),
                kind: TableKind::Heap(heap),
                rid_index: Some(index),
            },
        );
        Ok(&self.tables[&name])
    }

    /// Bulk-load an MDC table from `(cell key, row)` pairs in insertion
    /// order. Rows of different cells may arrive interleaved — that is
    /// what produces the realistic interleaved block layout.
    pub fn create_mdc_table<I>(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        block_pages: u32,
        rows: I,
    ) -> StorageResult<&TableMeta>
    where
        I: IntoIterator<Item = (i64, Vec<Value>)>,
    {
        let name = name.into();
        let mut b = MdcTableBuilder::create(&mut self.store, schema, block_pages);
        for (cell, row) in rows {
            b.append(&mut self.store, cell, &row)?;
        }
        let table = b.finish(&mut self.store)?;
        self.tables.insert(
            name.clone(),
            TableMeta {
                name: name.clone(),
                kind: TableKind::Mdc(table),
                rid_index: None,
            },
        );
        Ok(&self.tables[&name])
    }

    /// Reassemble a database from persisted parts (see
    /// [`crate::persist`]).
    pub fn from_parts(store: FileStore, tables: Vec<TableMeta>) -> Self {
        Database {
            store,
            tables: tables.into_iter().map(|t| (t.name.clone(), t)).collect(),
        }
    }

    /// Save this database to a file (see [`crate::persist::save`]).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> crate::error::EngineResult<()> {
        crate::persist::save(self, path)
    }

    /// Load a database from a file (see [`crate::persist::load`]).
    pub fn load(path: impl AsRef<std::path::Path>) -> crate::error::EngineResult<Database> {
        crate::persist::load(path)
    }

    /// Total table pages across the database (for sizing the pool at the
    /// paper's "bufferpool is about 5% of the database size").
    pub fn total_table_pages(&self) -> u64 {
        self.tables.values().map(|t| t.num_pages() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_relstore::{ColType, Column};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", ColType::Int32),
            Column::new("v", ColType::Float64),
        ])
    }

    #[test]
    fn heap_and_mdc_tables_register() {
        let mut db = Database::new(16);
        db.create_heap_table(
            "orders",
            schema(),
            (0..1000).map(|i| vec![Value::I32(i), Value::F64(i as f64)]),
        )
        .unwrap();
        db.create_mdc_table(
            "lineitem",
            schema(),
            4,
            (0..1000).map(|i| (i as i64 % 5, vec![Value::I32(i % 5), Value::F64(0.0)])),
        )
        .unwrap();
        assert_eq!(db.table_names(), vec!["lineitem", "orders"]);
        assert_eq!(db.table("orders").unwrap().num_rows(), 1000);
        assert!(db.table("lineitem").unwrap().as_mdc().is_some());
        assert!(db.total_table_pages() > 0);
        assert!(db.table("nope").is_none());
    }
}
