//! Run-level and query-level measurements — the engine's `iostat`.

use scanshare::MetricsSnapshot;
use scanshare_storage::{DiskStats, PoolStats, SimDuration, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::faults::FaultSummary;
use crate::trace::TraceRecord;

/// CPU usage breakdown over a run, mirroring the paper's Figures 15/16
/// ("distribution of CPU time spent in user time, system time, idling,
/// and in I/O wait").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Breakdown {
    /// Useful scan work (predicates, aggregation).
    pub user: SimDuration,
    /// Kernel time for read syscalls.
    pub system: SimDuration,
    /// CPU idle, not waiting for I/O.
    pub idle: SimDuration,
    /// CPU idle while tasks are blocked on the disk.
    pub io_wait: SimDuration,
}

impl Breakdown {
    /// Percentages `(user, system, idle, wait)` of total CPU capacity.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let total = (self.user + self.system + self.idle + self.io_wait).as_micros() as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.user.as_micros() as f64 / total * 100.0,
            self.system.as_micros() as f64 / total * 100.0,
            self.idle.as_micros() as f64 / total * 100.0,
            self.io_wait.as_micros() as f64 / total * 100.0,
        )
    }
}

/// Measurements of one executed query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Query name (e.g. "Q6").
    pub name: String,
    /// Stream that ran it.
    pub stream: usize,
    /// When it started.
    pub start: SimTime,
    /// When it finished.
    pub end: SimTime,
    /// CPU time spent.
    pub cpu: SimDuration,
    /// Time blocked on the disk.
    pub io_wait: SimDuration,
    /// Throttle wait injected by the sharing manager.
    pub throttle_wait: SimDuration,
    /// Buffer pool fixes.
    pub logical_reads: u64,
    /// Pages physically read on behalf of this query.
    pub physical_reads: u64,
    /// The query's numeric answers (for base-vs-shared equivalence).
    pub result: crate::query::QueryResult,
}

impl QueryRecord {
    /// Elapsed wall-clock (virtual) time.
    pub fn elapsed(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Counters of the push-delivery engine (one group-driver cursor per
/// (table, range) cohort). The headline buffer-locality claim reads off
/// these: `pages_delivered + catchup_pages` is every pool fix the push
/// cohorts performed, against `pages_delivered` distinct page deliveries
/// — a ratio near 1.0 means one pool fix per page per group, however
/// many consumers rode along.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushSummary {
    /// Group drivers founded (one per cohort lap).
    pub drivers: u64,
    /// Cursor handoffs after a driving consumer faulted mid-lap.
    pub handoffs: u64,
    /// Late joiners that attached to an ongoing driver (founders are not
    /// counted).
    pub attaches: u64,
    /// Extents fetched by group drivers.
    pub extents_delivered: u64,
    /// Pages fixed by group drivers — exactly once per page per lap.
    pub pages_delivered: u64,
    /// Page *consumptions* served from driver-fixed pages (each of the
    /// `pages_delivered` counts once per consumer riding at the time).
    pub consumer_pages: u64,
    /// Pages fixed by late joiners' private catch-up cursors.
    pub catchup_pages: u64,
}

impl PushSummary {
    /// Pool fixes per delivered page across all push cohorts: 1.0 is the
    /// ideal (every page fixed exactly once per group); the excess over
    /// 1.0 is the price of late joiners replaying missed prefixes.
    pub fn fixes_per_page(&self) -> f64 {
        if self.pages_delivered == 0 {
            return 0.0;
        }
        (self.pages_delivered + self.catchup_pages) as f64 / self.pages_delivered as f64
    }
}

/// Everything measured over one workload run.
///
/// `Serialize`/`Deserialize` are hand-written (see below) so the
/// `faults` section only appears in artifacts when something was
/// actually injected: fault-free runs stay byte-identical to artifacts
/// written before fault injection existed.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// End-to-end time of the run (last stream finish).
    pub makespan: SimDuration,
    /// Per-stream finish times, indexed by stream.
    pub stream_elapsed: Vec<SimDuration>,
    /// One record per executed query, in completion order.
    pub queries: Vec<QueryRecord>,
    /// CPU usage breakdown.
    pub breakdown: Breakdown,
    /// Disk counters.
    pub disk: DiskStats,
    /// Pages read per time bucket (Figure 17).
    pub read_series: TimeSeries,
    /// Seeks per time bucket (Figure 18).
    pub seek_series: TimeSeries,
    /// Head-travel distance per time bucket, in pages.
    pub seek_distance_series: TimeSeries,
    /// Buffer pool counters.
    pub pool: PoolStats,
    /// Sharing-manager decision counters (all zero in base mode).
    pub sharing: scanshare::SharingStats,
    /// Observability snapshot taken at the end of the run: counters,
    /// latency histograms, and the interval-sampled time series
    /// (per-group leader-trailer distance, per-scan slowdown vs the
    /// fairness cap, pool hit ratio, evictions, seek distance).
    pub metrics: MetricsSnapshot,
    /// The retained trace events, when a tracer was attached (empty
    /// otherwise) — what `scanshare trace` replays.
    pub trace: Vec<TraceRecord>,
    /// Decision-provenance events recorded by the sharing manager
    /// (empty in base mode and in older artifacts) — what `scanshare
    /// explain` narrates.
    pub decisions: Vec<scanshare::DecisionRecord>,
    /// Fault-injection and retry accounting (all zero — and omitted
    /// from artifacts — when the run carried no fault plan).
    pub faults: FaultSummary,
    /// The non-default sharing policy the run used, if any. `None` — and
    /// omitted from artifacts — for base runs and for the default
    /// grouping policy, so default-policy reports stay byte-identical to
    /// artifacts written before the policy framework existed.
    pub policy: Option<scanshare::SharingPolicyKind>,
    /// Span-profiler summary, present only when profiling was requested
    /// (`--profile-out` or an attached [`scanshare::SpanProfiler`]).
    /// Omitted from artifacts when `None`, so unprofiled reports stay
    /// byte-identical to artifacts written before profiling existed.
    pub profile: Option<scanshare::ProfileSummary>,
    /// SLO rule verdicts, one per rule in the workload spec's `slo`
    /// section (empty — and omitted from artifacts — when the spec
    /// declares no rules).
    pub slo: Vec<crate::slo::SloVerdict>,
    /// Push-delivery counters, present only when the run used
    /// `delivery: push`. `None` — and omitted from artifacts — for pull
    /// runs, so default-mode reports stay byte-identical to artifacts
    /// written before push delivery existed.
    pub push: Option<PushSummary>,
}

impl Serialize for RunReport {
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("makespan", self.makespan.to_json_value());
        m.insert("stream_elapsed", self.stream_elapsed.to_json_value());
        m.insert("queries", self.queries.to_json_value());
        m.insert("breakdown", self.breakdown.to_json_value());
        m.insert("disk", self.disk.to_json_value());
        m.insert("read_series", self.read_series.to_json_value());
        m.insert("seek_series", self.seek_series.to_json_value());
        m.insert(
            "seek_distance_series",
            self.seek_distance_series.to_json_value(),
        );
        m.insert("pool", self.pool.to_json_value());
        m.insert("sharing", self.sharing.to_json_value());
        m.insert("metrics", self.metrics.to_json_value());
        m.insert("trace", self.trace.to_json_value());
        m.insert("decisions", self.decisions.to_json_value());
        if !self.faults.is_empty() {
            m.insert("faults", self.faults.to_json_value());
        }
        if let Some(policy) = &self.policy {
            m.insert("policy", policy.to_json_value());
        }
        if let Some(profile) = &self.profile {
            m.insert("profile", profile.to_json_value());
        }
        if !self.slo.is_empty() {
            m.insert("slo", self.slo.to_json_value());
        }
        if let Some(push) = &self.push {
            m.insert("push", push.to_json_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for RunReport {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn req<T: Deserialize>(m: &serde::Map, field: &str) -> Result<T, serde::Error> {
            match m.get(field) {
                Some(v) => T::from_json_value(v),
                None => serde::__private::missing_field("RunReport", field),
            }
        }
        fn opt<T: Deserialize + Default>(m: &serde::Map, field: &str) -> Result<T, serde::Error> {
            match m.get(field) {
                Some(v) => T::from_json_value(v),
                None => Ok(T::default()),
            }
        }
        let m = v
            .as_object()
            .ok_or_else(|| serde::__private::unexpected("object", v))?;
        Ok(RunReport {
            makespan: req(m, "makespan")?,
            stream_elapsed: req(m, "stream_elapsed")?,
            queries: req(m, "queries")?,
            breakdown: req(m, "breakdown")?,
            disk: req(m, "disk")?,
            read_series: req(m, "read_series")?,
            seek_series: req(m, "seek_series")?,
            seek_distance_series: opt(m, "seek_distance_series")?,
            pool: req(m, "pool")?,
            sharing: req(m, "sharing")?,
            metrics: opt(m, "metrics")?,
            trace: opt(m, "trace")?,
            decisions: opt(m, "decisions")?,
            faults: opt(m, "faults")?,
            policy: opt(m, "policy")?,
            profile: opt(m, "profile")?,
            slo: opt(m, "slo")?,
            push: opt(m, "push")?,
        })
    }
}

impl RunReport {
    /// Mean elapsed time of all executions of query `name`.
    pub fn avg_query_time(&self, name: &str) -> Option<SimDuration> {
        let times: Vec<u64> = self
            .queries
            .iter()
            .filter(|q| q.name == name)
            .map(|q| q.elapsed().as_micros())
            .collect();
        if times.is_empty() {
            None
        } else {
            Some(SimDuration::from_micros(
                times.iter().sum::<u64>() / times.len() as u64,
            ))
        }
    }

    /// The distinct query names seen, in first-seen order.
    pub fn query_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for q in &self.queries {
            if !names.iter().any(|n| n == &q.name) {
                names.push(q.name.clone());
            }
        }
        names
    }
}

/// Relative improvement of `ss` over `base` (positive = ss is better),
/// e.g. `gain(100.0, 79.0) == 0.21`.
pub fn gain(base: f64, ss: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        1.0 - ss / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let b = Breakdown {
            user: SimDuration::from_secs(2),
            system: SimDuration::from_secs(1),
            idle: SimDuration::from_secs(3),
            io_wait: SimDuration::from_secs(4),
        };
        let (u, s, i, w) = b.percentages();
        assert!((u + s + i + w - 100.0).abs() < 1e-9);
        assert!((u - 20.0).abs() < 1e-9);
        assert!((w - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        assert_eq!(Breakdown::default().percentages(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn gain_is_relative_improvement() {
        assert!((gain(100.0, 79.0) - 0.21).abs() < 1e-12);
        assert_eq!(gain(0.0, 5.0), 0.0);
        assert!(gain(100.0, 120.0) < 0.0);
    }
}
