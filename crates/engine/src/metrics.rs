//! Run-level and query-level measurements — the engine's `iostat`.

use scanshare::MetricsSnapshot;
use scanshare_storage::{DiskStats, PoolStats, SimDuration, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::trace::TraceRecord;

/// CPU usage breakdown over a run, mirroring the paper's Figures 15/16
/// ("distribution of CPU time spent in user time, system time, idling,
/// and in I/O wait").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Breakdown {
    /// Useful scan work (predicates, aggregation).
    pub user: SimDuration,
    /// Kernel time for read syscalls.
    pub system: SimDuration,
    /// CPU idle, not waiting for I/O.
    pub idle: SimDuration,
    /// CPU idle while tasks are blocked on the disk.
    pub io_wait: SimDuration,
}

impl Breakdown {
    /// Percentages `(user, system, idle, wait)` of total CPU capacity.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let total = (self.user + self.system + self.idle + self.io_wait).as_micros() as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.user.as_micros() as f64 / total * 100.0,
            self.system.as_micros() as f64 / total * 100.0,
            self.idle.as_micros() as f64 / total * 100.0,
            self.io_wait.as_micros() as f64 / total * 100.0,
        )
    }
}

/// Measurements of one executed query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Query name (e.g. "Q6").
    pub name: String,
    /// Stream that ran it.
    pub stream: usize,
    /// When it started.
    pub start: SimTime,
    /// When it finished.
    pub end: SimTime,
    /// CPU time spent.
    pub cpu: SimDuration,
    /// Time blocked on the disk.
    pub io_wait: SimDuration,
    /// Throttle wait injected by the sharing manager.
    pub throttle_wait: SimDuration,
    /// Buffer pool fixes.
    pub logical_reads: u64,
    /// Pages physically read on behalf of this query.
    pub physical_reads: u64,
    /// The query's numeric answers (for base-vs-shared equivalence).
    pub result: crate::query::QueryResult,
}

impl QueryRecord {
    /// Elapsed wall-clock (virtual) time.
    pub fn elapsed(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Everything measured over one workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// End-to-end time of the run (last stream finish).
    pub makespan: SimDuration,
    /// Per-stream finish times, indexed by stream.
    pub stream_elapsed: Vec<SimDuration>,
    /// One record per executed query, in completion order.
    pub queries: Vec<QueryRecord>,
    /// CPU usage breakdown.
    pub breakdown: Breakdown,
    /// Disk counters.
    pub disk: DiskStats,
    /// Pages read per time bucket (Figure 17).
    pub read_series: TimeSeries,
    /// Seeks per time bucket (Figure 18).
    pub seek_series: TimeSeries,
    /// Head-travel distance per time bucket, in pages.
    #[serde(default)]
    pub seek_distance_series: TimeSeries,
    /// Buffer pool counters.
    pub pool: PoolStats,
    /// Sharing-manager decision counters (all zero in base mode).
    pub sharing: scanshare::SharingStats,
    /// Observability snapshot taken at the end of the run: counters,
    /// latency histograms, and the interval-sampled time series
    /// (per-group leader-trailer distance, per-scan slowdown vs the
    /// fairness cap, pool hit ratio, evictions, seek distance).
    #[serde(default)]
    pub metrics: MetricsSnapshot,
    /// The retained trace events, when a tracer was attached (empty
    /// otherwise) — what `scanshare trace` replays.
    #[serde(default)]
    pub trace: Vec<TraceRecord>,
    /// Decision-provenance events recorded by the sharing manager
    /// (empty in base mode and in older artifacts) — what `scanshare
    /// explain` narrates.
    #[serde(default)]
    pub decisions: Vec<scanshare::DecisionRecord>,
}

impl RunReport {
    /// Mean elapsed time of all executions of query `name`.
    pub fn avg_query_time(&self, name: &str) -> Option<SimDuration> {
        let times: Vec<u64> = self
            .queries
            .iter()
            .filter(|q| q.name == name)
            .map(|q| q.elapsed().as_micros())
            .collect();
        if times.is_empty() {
            None
        } else {
            Some(SimDuration::from_micros(
                times.iter().sum::<u64>() / times.len() as u64,
            ))
        }
    }

    /// The distinct query names seen, in first-seen order.
    pub fn query_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for q in &self.queries {
            if !names.iter().any(|n| n == &q.name) {
                names.push(q.name.clone());
            }
        }
        names
    }
}

/// Relative improvement of `ss` over `base` (positive = ss is better),
/// e.g. `gain(100.0, 79.0) == 0.21`.
pub fn gain(base: f64, ss: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        1.0 - ss / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let b = Breakdown {
            user: SimDuration::from_secs(2),
            system: SimDuration::from_secs(1),
            idle: SimDuration::from_secs(3),
            io_wait: SimDuration::from_secs(4),
        };
        let (u, s, i, w) = b.percentages();
        assert!((u + s + i + w - 100.0).abs() < 1e-9);
        assert!((u - 20.0).abs() < 1e-9);
        assert!((w - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        assert_eq!(Breakdown::default().percentages(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn gain_is_relative_improvement() {
        assert!((gain(100.0, 79.0) - 0.21).abs() < 1e-12);
        assert_eq!(gain(0.0, 5.0), 0.0);
        assert!(gain(100.0, 120.0) < 0.0);
    }
}
