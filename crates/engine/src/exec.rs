//! The execution world: disk + pool + CPUs + sharing manager, advanced
//! over virtual time.
//!
//! [`ExecWorld`] is the per-run mutable state. Scan operators call
//! [`ExecWorld::fetch_extent`] to bring an extent's pages into the pool
//! (paying disk time for misses and riding in-flight reads of other
//! scans), [`ExecWorld::run_cpu`] to occupy a CPU, and
//! [`ExecWorld::release_pages`] to unpin with the manager's priority.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use scanshare::obs::span::SpanProfiler;
use scanshare::obs::{Histogram, MetricsRegistry};
use scanshare::ScanSharingManager;
use scanshare_storage::{
    BufferPool, DiskArray, FileStore, PageId, PagePriority, ReadCompletion, SimDuration, SimTime,
    StorageError, StorageResult,
};

use crate::cost::EngineConfig;
use crate::faults::{FaultEvent, FaultState, FaultsConfig};
use crate::metrics::Breakdown;

/// Timing and counters of one extent fetch. The pages themselves land in
/// the caller-provided `(PageId, slot)` vector: the caller borrows their
/// bytes from the pool via [`BufferPool::slot_buf`] instead of receiving
/// a cloned handle per page.
#[derive(Debug)]
pub struct FetchResult {
    /// When every page of the extent is available (>= request time).
    pub ready: SimTime,
    /// Pool hits.
    pub hits: u64,
    /// Pages this fetch physically read.
    pub misses: u64,
    /// Physical read requests issued (for system-time accounting).
    pub requests: u64,
}

/// Per-run mutable execution state.
pub struct ExecWorld<'a> {
    /// The shared, read-only page store.
    pub store: &'a FileStore,
    /// The disk model (timing + counters): a striped array, one disk by
    /// default.
    pub disk: DiskArray,
    /// The buffer pool.
    pub pool: BufferPool,
    /// The sharing manager, if this run has one.
    pub mgr: Option<Arc<ScanSharingManager>>,
    /// Engine configuration.
    pub cfg: EngineConfig,
    /// Optional structured event log.
    pub tracer: Option<crate::trace::Tracer>,
    /// Optional span profiler. `None` (the default) keeps the exact
    /// unprofiled code path: no span is recorded, no attribute string is
    /// built, and reports stay byte-identical to pre-profiling builds.
    pub profiler: Option<SpanProfiler>,
    /// Shared metrics registry every layer records into; snapshotted
    /// into the run report.
    pub metrics: MetricsRegistry,
    /// Latency of each physical read request, issue to completion (µs).
    read_hist: Histogram,
    /// Each injected throttle wait (µs) — recorded by the scan executor.
    pub(crate) throttle_hist: Histogram,
    cpus: BinaryHeap<Reverse<u64>>,
    /// When each resident page became (or becomes) available — lets a
    /// scan ride an in-flight read issued by another scan instead of
    /// double-reading the page.
    available_at: HashMap<PageId, SimTime>,
    /// Reusable `(page, physical address)` miss buffer for
    /// `fetch_extent`/`prefetch`, so the per-extent hot path allocates
    /// nothing in steady state.
    miss_scratch: Vec<(PageId, u64)>,
    /// Fault-injection state, when this run carries a fault plan. `None`
    /// keeps the fault-free fast path (and its reports) untouched.
    faults: Option<FaultState>,
    /// CPU usage accumulators (user/system; idle and wait are derived at
    /// report time).
    pub user_time: SimDuration,
    /// Kernel time charged for read requests.
    pub sys_time: SimDuration,
    /// Total time tasks spent blocked on page availability.
    pub io_wait_time: SimDuration,
}

impl<'a> ExecWorld<'a> {
    /// Create a world over `store` with a fresh pool and disk.
    pub fn new(
        store: &'a FileStore,
        pool: BufferPool,
        cfg: EngineConfig,
        mgr: Option<Arc<ScanSharingManager>>,
    ) -> Self {
        let disk = DiskArray::new(
            cfg.disk.clone(),
            cfg.n_disks.max(1),
            cfg.extent_pages.max(1),
        );
        let cpus = (0..cfg.n_cpus).map(|_| Reverse(0u64)).collect();
        let metrics = MetricsRegistry::new();
        let read_hist = metrics.histogram("disk.read_us");
        let throttle_hist = metrics.histogram("throttle.wait_us");
        ExecWorld {
            store,
            disk,
            pool,
            mgr,
            cfg,
            tracer: None,
            profiler: None,
            metrics,
            read_hist,
            throttle_hist,
            cpus,
            available_at: HashMap::new(),
            miss_scratch: Vec::new(),
            faults: None,
            user_time: SimDuration::ZERO,
            sys_time: SimDuration::ZERO,
            io_wait_time: SimDuration::ZERO,
        }
    }

    /// The sharing policy the run's manager dispatches through (`None`
    /// for base runs with no manager). The report assembly stamps this
    /// into [`crate::RunReport::policy`] when it is not the default.
    pub fn sharing_policy(&self) -> Option<scanshare::SharingPolicyKind> {
        self.mgr.as_ref().map(|m| m.config().policy)
    }

    /// Arm fault injection for this run. Fault-free runs never call this,
    /// so they keep the exact pre-fault code path (and report bytes).
    pub fn enable_faults(&mut self, cfg: &FaultsConfig) {
        self.faults = Some(FaultState::new(cfg));
    }

    /// Whether fault injection is armed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// The run's fault summary (`None` when fault injection is off).
    pub fn fault_summary(&self) -> Option<crate::faults::FaultSummary> {
        self.faults.as_ref().map(|f| f.summary())
    }

    /// Drain fault occurrences observed since the last call. The scan
    /// executor calls this right after its fetch, attributing the events
    /// to the scan that issued the reads.
    pub(crate) fn take_fault_events(&mut self, out: &mut Vec<FaultEvent>) {
        if let Some(fs) = self.faults.as_mut() {
            out.append(&mut fs.pending);
        }
    }

    /// Count a scan aborted by faults (maintained by the scan executor).
    pub(crate) fn note_scan_aborted(&mut self) {
        if let Some(fs) = self.faults.as_mut() {
            fs.scans_aborted += 1;
        }
    }

    /// Issue one physical read run, applying the fault plan when armed:
    /// transient errors and stall timeouts are retried with doubling
    /// backoff up to the retry budget; permanent errors (and exhausted
    /// budgets) surface as `StorageError::ReadFault`.
    fn read_run(&mut self, now: SimTime, phys: u64, npages: u32) -> StorageResult<ReadCompletion> {
        let prof = self.profiler.clone();
        let disk = &mut self.disk;
        let Some(fs) = self.faults.as_mut() else {
            return Ok(disk.read(now, phys, npages));
        };
        let mut attempt: u32 = 1;
        let mut issue = now;
        loop {
            match disk.read_faulted(issue, phys, npages, &mut fs.injector) {
                Ok(c) => {
                    if c.done.since(c.start) > fs.timeout && attempt <= fs.max_retries {
                        // The device sat on the request past the timeout:
                        // declare it lost and re-issue once it completes
                        // (the device did the work either way).
                        fs.timeouts += 1;
                        fs.retries += 1;
                        // Instants are stamped at the request's issue
                        // time (monotone per track); the actual retry
                        // moment rides in an attribute.
                        if let Some(p) = &prof {
                            let s = p.instant("io.retry", now);
                            p.attr(s, "kind", "timeout");
                            p.attr(s, "attempt", attempt.to_string());
                            p.attr(s, "addr", phys.to_string());
                            p.attr(s, "retry_at_us", c.done.as_micros().to_string());
                        }
                        attempt += 1;
                        issue = c.done;
                        continue;
                    }
                    return Ok(c);
                }
                Err(StorageError::ReadFault {
                    device,
                    addr,
                    transient,
                }) => {
                    fs.pending.push(FaultEvent {
                        device,
                        addr,
                        transient,
                        attempt,
                    });
                    if transient && attempt <= fs.max_retries {
                        fs.retries += 1;
                        let backoff = SimDuration::from_micros(
                            fs.backoff.as_micros() << (attempt - 1).min(16),
                        );
                        fs.backoff_wait += backoff;
                        if let Some(p) = &prof {
                            let s = p.instant("io.retry", now);
                            p.attr(s, "kind", "transient");
                            p.attr(s, "attempt", attempt.to_string());
                            p.attr(s, "device", device.to_string());
                            p.attr(s, "backoff_us", backoff.as_micros().to_string());
                            p.attr(s, "retry_at_us", (issue + backoff).as_micros().to_string());
                        }
                        issue += backoff;
                        attempt += 1;
                        continue;
                    }
                    return Err(StorageError::ReadFault {
                        device,
                        addr,
                        transient,
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Bring `page_ids` (one extent, in scan order) into the pool at time
    /// `now`, filling `pages` with each page's pinned pool slot (sorted
    /// by page id — scan order). Misses are grouped into
    /// physically-contiguous runs, each serviced as one disk request.
    /// Pages stay pinned until [`ExecWorld::release_pages`].
    pub fn fetch_extent(
        &mut self,
        now: SimTime,
        page_ids: &[PageId],
        pages: &mut Vec<(PageId, u32)>,
    ) -> StorageResult<FetchResult> {
        pages.clear();
        let mut ready = now;
        let mut hits = 0u64;
        let mut requests = 0u64;
        // (page, physical address) of each miss, in scan order.
        let mut misses = std::mem::take(&mut self.miss_scratch);
        misses.clear();
        for &id in page_ids {
            match self.pool.fix_slot(id) {
                Some(slot) => {
                    hits += 1;
                    if let Some(&avail) = self.available_at.get(&id) {
                        // Ride another scan's in-flight read.
                        ready = ready.max(avail);
                    }
                    pages.push((id, slot));
                }
                None => {
                    misses.push((id, self.store.physical(id)?));
                }
            }
        }
        // Service misses as contiguous runs.
        let n_misses = misses.len() as u64;
        let mut i = 0;
        while i < misses.len() {
            let mut j = i + 1;
            while j < misses.len() && misses[j].1 == misses[j - 1].1 + 1 {
                j += 1;
            }
            let (_, phys) = misses[i];
            // Seek distance is cumulative across the array; the delta
            // around one request attributes head travel to this miss.
            let seek_before = self
                .profiler
                .as_ref()
                .map(|_| self.disk.stats().seek_distance_pages);
            let completion = match self.read_run(now, phys, (j - i) as u32) {
                Ok(c) => c,
                Err(e) => {
                    // The fetch failed partway: unpin everything it
                    // pinned (hits and earlier miss runs) so the caller
                    // can abort the scan without leaking pins.
                    for &(id, _) in pages.iter() {
                        let _ = self.pool.release(id, PagePriority::Normal);
                    }
                    pages.clear();
                    self.miss_scratch = misses;
                    return Err(e);
                }
            };
            if let Some(p) = &self.profiler {
                let s = p.instant("io.miss", now);
                p.attr(s, "device", self.disk.device_of(phys).to_string());
                p.attr(s, "pages", (j - i).to_string());
                p.attr(
                    s,
                    "latency_us",
                    completion.done.since(now).as_micros().to_string(),
                );
                let travelled = self
                    .disk
                    .stats()
                    .seek_distance_pages
                    .saturating_sub(seek_before.unwrap_or(0));
                p.attr(s, "seek_distance_pages", travelled.to_string());
            }
            self.read_hist
                .record(completion.done.since(now).as_micros());
            requests += 1;
            ready = ready.max(completion.done);
            for &(id, _) in &misses[i..j] {
                let buf = self.store.read_page(id)?;
                let slot = self.pool.complete_miss_slot(id, buf)?;
                self.available_at.insert(id, completion.done);
                pages.push((id, slot));
            }
            i = j;
        }
        self.miss_scratch = misses;
        // Keep the extent in scan order for row processing.
        pages.sort_unstable_by_key(|&(id, _)| id);
        let sys = SimDuration::from_micros(self.cfg.sys_per_request.as_micros() * requests);
        self.sys_time += sys;
        self.io_wait_time += ready.since(now);
        Ok(FetchResult {
            ready,
            hits,
            misses: n_misses,
            requests,
        })
    }

    /// Issue an asynchronous read for pages a scan will need soon. The
    /// pages are installed unpinned with normal priority and their
    /// availability time recorded, so the scan's next `fetch_extent`
    /// finds them resident and only waits out the remaining disk time.
    /// No-op for pages already resident.
    pub fn prefetch(&mut self, now: SimTime, page_ids: &[PageId]) -> StorageResult<()> {
        let mut misses = std::mem::take(&mut self.miss_scratch);
        misses.clear();
        for &id in page_ids {
            if !self.pool.contains(id) {
                misses.push((id, self.store.physical(id)?));
            }
        }
        let mut i = 0;
        while i < misses.len() {
            let mut j = i + 1;
            while j < misses.len() && misses[j].1 == misses[j - 1].1 + 1 {
                j += 1;
            }
            let (_, phys) = misses[i];
            let completion = match self.read_run(now, phys, (j - i) as u32) {
                Ok(c) => c,
                Err(StorageError::ReadFault { .. }) => {
                    // Prefetch is opportunistic: drop this run (the
                    // demand fetch will face the fault itself) and keep
                    // prefetching the rest.
                    i = j;
                    continue;
                }
                Err(e) => {
                    self.miss_scratch = misses;
                    return Err(e);
                }
            };
            if let Some(p) = &self.profiler {
                let s = p.instant("io.prefetch", now);
                p.attr(s, "device", self.disk.device_of(phys).to_string());
                p.attr(s, "pages", (j - i).to_string());
                p.attr(
                    s,
                    "latency_us",
                    completion.done.since(now).as_micros().to_string(),
                );
            }
            self.read_hist
                .record(completion.done.since(now).as_micros());
            self.sys_time += self.cfg.sys_per_request;
            for &(id, _) in &misses[i..j] {
                let buf = self.store.read_page(id)?;
                self.pool.complete_miss(id, buf)?;
                // A prefetched page is needed immediately: release it
                // high so a priority-aware pool does not victimize it
                // before the scan arrives. The scan's own release
                // re-prioritizes it according to its group role.
                self.pool.release(id, PagePriority::High)?;
                self.available_at.insert(id, completion.done);
            }
            i = j;
        }
        self.miss_scratch = misses;
        Ok(())
    }

    /// Occupy one CPU for `cost`, starting no earlier than `ready`.
    /// Returns the completion time. Accounted as user time.
    pub fn run_cpu(&mut self, ready: SimTime, cost: SimDuration) -> SimTime {
        let Reverse(free) = self.cpus.pop().expect("at least one CPU");
        let start = ready.max(SimTime::from_micros(free));
        let done = start + cost;
        self.cpus.push(Reverse(done.as_micros()));
        self.user_time += cost;
        done
    }

    /// Unpin an extent's pages (as filled by [`ExecWorld::fetch_extent`])
    /// with the given release priority.
    pub fn release_pages(
        &mut self,
        pages: &[(PageId, u32)],
        priority: PagePriority,
    ) -> StorageResult<()> {
        for &(id, _) in pages {
            self.pool.release(id, priority)?;
        }
        Ok(())
    }

    /// Derive the run-level CPU breakdown, given the run's end time.
    pub fn breakdown(&self, makespan: SimDuration) -> Breakdown {
        let capacity = SimDuration::from_micros(makespan.as_micros() * self.cfg.n_cpus as u64);
        let busy = self.user_time + self.sys_time;
        let idle_raw = capacity.saturating_sub(busy);
        // A CPU can only be "waiting on I/O" while idle; clamp.
        let io_wait = self.io_wait_time.min(idle_raw);
        let idle = idle_raw.saturating_sub(io_wait);
        Breakdown {
            user: self.user_time,
            system: self.sys_time,
            idle,
            io_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use scanshare_storage::{PoolConfig, ReplacementPolicy, PAGE_SIZE};

    fn store_with_pages(n: u32) -> FileStore {
        let mut s = FileStore::new(16);
        let f = s.create_file();
        for i in 0..n {
            let mut page = vec![0u8; PAGE_SIZE];
            page[0] = i as u8;
            s.append_page(f, Bytes::from(page)).unwrap();
        }
        s
    }

    fn world(store: &FileStore, pool_pages: usize) -> ExecWorld<'_> {
        let pool = BufferPool::new(PoolConfig::new(pool_pages, ReplacementPolicy::Lru));
        ExecWorld::new(store, pool, EngineConfig::default(), None)
    }

    fn pids(n: u32) -> Vec<PageId> {
        (0..n)
            .map(|p| PageId::new(scanshare_storage::FileId(0), p))
            .collect()
    }

    #[test]
    fn cold_fetch_pays_one_seek_per_contiguous_run() {
        let store = store_with_pages(32);
        let mut w = world(&store, 64);
        let mut pages = Vec::new();
        let r = w
            .fetch_extent(SimTime::ZERO, &pids(16), &mut pages)
            .unwrap();
        assert_eq!(r.misses, 16);
        assert_eq!(r.hits, 0);
        assert_eq!(r.requests, 1, "contiguous extent = one request");
        assert_eq!(w.disk.stats().seeks, 1);
        assert!(r.ready > SimTime::ZERO);
        w.release_pages(&pages, PagePriority::Normal).unwrap();
    }

    #[test]
    fn warm_fetch_is_instant() {
        let store = store_with_pages(16);
        let mut w = world(&store, 64);
        let mut pages = Vec::new();
        let r1 = w
            .fetch_extent(SimTime::ZERO, &pids(16), &mut pages)
            .unwrap();
        assert_eq!(r1.misses, 16);
        w.release_pages(&pages, PagePriority::Normal).unwrap();
        let t = SimTime::from_secs(1);
        let r2 = w.fetch_extent(t, &pids(16), &mut pages).unwrap();
        assert_eq!(r2.misses, 0);
        assert_eq!(r2.hits, 16);
        assert_eq!(r2.ready, t, "no new I/O time");
        w.release_pages(&pages, PagePriority::Normal).unwrap();
        assert_eq!(w.disk.stats().pages_read, 16);
    }

    #[test]
    fn riding_an_in_flight_read_waits_for_its_completion() {
        let store = store_with_pages(16);
        let mut w = world(&store, 64);
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        let r1 = w.fetch_extent(SimTime::ZERO, &pids(16), &mut p1).unwrap();
        // A second task at the same instant: pages are resident but only
        // available when the first task's read completes.
        let r2 = w.fetch_extent(SimTime::ZERO, &pids(16), &mut p2).unwrap();
        assert_eq!(r2.misses, 0);
        assert_eq!(r2.ready, r1.ready);
        w.release_pages(&p1, PagePriority::Normal).unwrap();
        w.release_pages(&p2, PagePriority::Normal).unwrap();
        w.release_pages(&p1, PagePriority::Normal).unwrap_err();
    }

    #[test]
    fn pages_come_back_in_scan_order() {
        let store = store_with_pages(16);
        let mut w = world(&store, 64);
        // Warm up pages 4..8 so the extent is part hit, part miss.
        let warm: Vec<PageId> = pids(16)[4..8].to_vec();
        let mut pages = Vec::new();
        let r = w.fetch_extent(SimTime::ZERO, &warm, &mut pages).unwrap();
        assert_eq!(r.hits, 0);
        w.release_pages(&pages, PagePriority::Normal).unwrap();
        let r = w
            .fetch_extent(SimTime::from_millis(1), &pids(16), &mut pages)
            .unwrap();
        assert_eq!(r.hits, 4);
        assert_eq!(r.misses, 12);
        assert_eq!(r.requests, 2, "two contiguous miss runs: 0..4 and 8..16");
        let order: Vec<u32> = pages.iter().map(|&(id, _)| id.page).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
        // Slots hand back the right bytes without cloning.
        for &(id, slot) in &pages {
            assert_eq!(w.pool.slot_page(slot), id);
            assert_eq!(w.pool.slot_buf(slot)[0], id.page as u8);
        }
        w.release_pages(&pages, PagePriority::Normal).unwrap();
    }

    #[test]
    fn cpu_server_serializes_beyond_capacity() {
        let store = store_with_pages(1);
        let mut w = world(&store, 8);
        w.cfg.n_cpus = 2;
        // Rebuild with 2 CPUs.
        let pool = BufferPool::new(PoolConfig::new(8, ReplacementPolicy::Lru));
        let mut w = ExecWorld::new(
            &store,
            pool,
            EngineConfig {
                n_cpus: 2,
                ..EngineConfig::default()
            },
            None,
        );
        let c = SimDuration::from_millis(10);
        let d1 = w.run_cpu(SimTime::ZERO, c);
        let d2 = w.run_cpu(SimTime::ZERO, c);
        let d3 = w.run_cpu(SimTime::ZERO, c);
        assert_eq!(d1, SimTime::from_millis(10));
        assert_eq!(d2, SimTime::from_millis(10));
        assert_eq!(d3, SimTime::from_millis(20), "third job queues");
        assert_eq!(w.user_time, SimDuration::from_millis(30));
    }

    fn faults_cfg(rules: Vec<scanshare_storage::FaultRule>) -> FaultsConfig {
        FaultsConfig {
            plan: scanshare_storage::FaultPlan { seed: 0, rules },
            ..FaultsConfig::default()
        }
    }

    fn everywhere(fault: scanshare_storage::FaultKind) -> scanshare_storage::FaultRule {
        scanshare_storage::FaultRule {
            device: None,
            pages: None,
            from_us: 0,
            until_us: None,
            fault,
        }
    }

    #[test]
    fn transient_fault_is_retried_and_the_fetch_succeeds() {
        use scanshare_storage::FaultKind;
        let store = store_with_pages(16);
        let mut w = world(&store, 64);
        // Seed 0 at p=0.5 deterministically faults the first two attempts
        // of the run at address 0 and passes the third, well inside the
        // default budget of 4 retries.
        w.enable_faults(&faults_cfg(vec![everywhere(FaultKind::TransientError {
            probability: 0.5,
        })]));
        let mut pages = Vec::new();
        let r = w
            .fetch_extent(SimTime::ZERO, &pids(16), &mut pages)
            .unwrap();
        assert_eq!(r.misses, 16);
        let s = w.fault_summary().unwrap();
        assert!(s.transient_errors > 0, "seed produced no fault: {s:?}");
        assert_eq!(s.retries, s.transient_errors);
        assert!(s.backoff_wait > SimDuration::ZERO);
        let mut events = Vec::new();
        w.take_fault_events(&mut events);
        assert_eq!(events.len() as u64, s.transient_errors);
        assert!(events.iter().all(|e| e.transient));
        w.release_pages(&pages, PagePriority::Normal).unwrap();
    }

    #[test]
    fn permanent_fault_fails_the_fetch_without_leaking_pins() {
        use scanshare_storage::{FaultKind, FaultRule, StorageError};
        let store = store_with_pages(16);
        let mut w = world(&store, 64);
        // Warm pages 0..4 so the failing fetch holds pinned hits, then
        // kill pages 4.. so the miss run (which starts at page 4) faults.
        let mut pages = Vec::new();
        let warm: Vec<PageId> = pids(16)[..4].to_vec();
        w.fetch_extent(SimTime::ZERO, &warm, &mut pages).unwrap();
        w.release_pages(&pages, PagePriority::Normal).unwrap();
        w.enable_faults(&faults_cfg(vec![FaultRule {
            device: None,
            pages: Some((4, u64::MAX)),
            from_us: 0,
            until_us: None,
            fault: FaultKind::PermanentError,
        }]));
        let err = w
            .fetch_extent(SimTime::from_millis(1), &pids(16), &mut pages)
            .unwrap_err();
        assert!(matches!(
            err,
            StorageError::ReadFault {
                transient: false,
                ..
            }
        ));
        assert!(pages.is_empty(), "failed fetch must hand back nothing");
        // Nothing is left pinned: the whole pool can be reclaimed.
        w.pool.clear_unpinned();
        assert_eq!(w.pool.len(), 0, "a pinned page survived the abort");
        let s = w.fault_summary().unwrap();
        assert_eq!(s.permanent_errors, 1);
        assert_eq!(s.retries, 0);
    }

    #[test]
    fn stall_timeout_reissues_the_read() {
        use scanshare_storage::{FaultKind, FaultRule};
        let store = store_with_pages(16);
        let mut w = world(&store, 64);
        // Stall only the first attempt window: the reissue (attempt 2)
        // re-rolls and p<1 eventually passes; use until_us so the retry
        // lands after the stall rule expired, making it deterministic.
        w.enable_faults(&faults_cfg(vec![FaultRule {
            device: None,
            pages: None,
            from_us: 0,
            until_us: Some(1),
            fault: FaultKind::Stall {
                probability: 1.0,
                for_us: 500_000,
            },
        }]));
        let mut pages = Vec::new();
        let r = w
            .fetch_extent(SimTime::ZERO, &pids(16), &mut pages)
            .unwrap();
        let s = w.fault_summary().unwrap();
        assert_eq!(s.timeouts, 1, "500ms stall > 200ms timeout: {s:?}");
        assert_eq!(s.retries, 1);
        assert_eq!(s.delays_injected, 1);
        // The reissued read waits out the stalled one (FIFO), then runs.
        assert!(r.ready.as_micros() > 500_000);
        w.release_pages(&pages, PagePriority::Normal).unwrap();
    }

    #[test]
    fn prefetch_swallows_faults() {
        use scanshare_storage::FaultKind;
        let store = store_with_pages(16);
        let mut w = world(&store, 64);
        w.enable_faults(&faults_cfg(vec![everywhere(FaultKind::PermanentError)]));
        // The prefetch drops its run instead of failing.
        w.prefetch(SimTime::ZERO, &pids(16)).unwrap();
        assert_eq!(w.disk.stats().pages_read, 0);
        let s = w.fault_summary().unwrap();
        assert_eq!(s.permanent_errors, 1);
    }

    #[test]
    fn empty_plan_changes_nothing_observable() {
        let store = store_with_pages(16);
        let mut plain = world(&store, 64);
        let mut armed = world(&store, 64);
        armed.enable_faults(&FaultsConfig::default());
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        let r1 = plain
            .fetch_extent(SimTime::ZERO, &pids(16), &mut p1)
            .unwrap();
        let r2 = armed
            .fetch_extent(SimTime::ZERO, &pids(16), &mut p2)
            .unwrap();
        assert_eq!(r1.ready, r2.ready);
        assert_eq!(
            format!("{:?}", plain.disk.stats()),
            format!("{:?}", armed.disk.stats())
        );
        assert!(armed.fault_summary().unwrap().is_empty());
    }

    #[test]
    fn breakdown_accounts_capacity() {
        let store = store_with_pages(16);
        let mut w = world(&store, 64);
        let mut pages = Vec::new();
        let r = w
            .fetch_extent(SimTime::ZERO, &pids(16), &mut pages)
            .unwrap();
        w.release_pages(&pages, PagePriority::Normal).unwrap();
        let done = w.run_cpu(r.ready, SimDuration::from_millis(5));
        let b = w.breakdown(done.since(SimTime::ZERO));
        let total = b.user + b.system + b.idle + b.io_wait;
        assert_eq!(
            total.as_micros(),
            done.as_micros() * 4,
            "4 CPUs worth of time accounted"
        );
        assert_eq!(b.user, SimDuration::from_millis(5));
        assert!(b.io_wait > SimDuration::ZERO);
    }
}
