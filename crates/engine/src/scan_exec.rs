//! Scan operators: plain and sharing table scans, IXSCAN and SISCAN.
//!
//! One [`ScanExec`] is the engine-side state machine of a single scan.
//! Each `step` processes one extent (a 16-page run for table scans, one
//! MDC block for index scans), paying I/O and CPU through the
//! [`ExecWorld`], and — when a sharing manager is attached — performing
//! the paper's three extra calls: register at start (with placement),
//! update location per extent (receiving throttle waits and release
//! priorities), deregister at the end.
//!
//! A scan placed mid-range runs in two phases, exactly like the paper's
//! SISCAN (Figure 3): from the assigned start location to the end of the
//! range, then a wrap back to the original start key for the remainder.

use scanshare::{Location, ObjectId, ScanDesc, ScanId, ScanKind};
use scanshare_relstore::{Entry, HeapPage, Rid, Schema};
use scanshare_storage::{FileId, PageId, PagePriority, SimDuration, SimTime, StorageError};

use crate::cost::CpuClass;
use crate::db::Database;
use crate::error::{EngineError, EngineResult};
use crate::exec::ExecWorld;
use crate::query::{Access, AggSpec, Pred, QueryResult, ScanSpec};

/// Scan progress plan: the *cursor* half of a scan, advanced one extent
/// per [`Plan::gather`]/[`Plan::advance`] pair. The pull executor owns
/// one per scan; the push engine owns one per group driver (and one per
/// late joiner's private catch-up cursor).
#[derive(Debug)]
pub(crate) enum Plan {
    /// Circular walk over all table pages, starting at `start_page`.
    Table {
        num_pages: u32,
        start_page: u32,
        /// Pages processed so far.
        visited: u32,
    },
    /// Walk over the `(cell key, BID)` entries of a block index range,
    /// one block per step, starting at `start_idx`.
    Index {
        entries: Vec<Entry>,
        block_pages: u32,
        start_idx: usize,
        /// Entries processed so far.
        visited: usize,
    },
    /// Walk over the `(key, RID)` entries of a secondary index, fetching
    /// each row's page; one extent's worth of *distinct pages* per step.
    /// The pages behind consecutive keys are scattered (§3.2), so this
    /// plan seeks heavily when cold.
    Rid {
        entries: Vec<Entry>,
        start_idx: usize,
        /// Entries processed so far.
        visited: usize,
    },
}

impl Plan {
    /// Whether the cursor has covered its whole range.
    pub(crate) fn done(&self) -> bool {
        match self {
            Plan::Table {
                num_pages, visited, ..
            } => *visited >= *num_pages,
            Plan::Index {
                entries, visited, ..
            } => *visited >= entries.len(),
            Plan::Rid {
                entries, visited, ..
            } => *visited >= entries.len(),
        }
    }

    /// Whether this is a RID-fetch plan (push delivery excludes these:
    /// their page sets are per-predicate, not a shareable linear range).
    pub(crate) fn is_rid(&self) -> bool {
        matches!(self, Plan::Rid { .. })
    }

    /// Gather the next extent's pages into `ids` (and, for RID plans, the
    /// `(page, slot)` work list into `rids`): the *advance the cursor*
    /// half of a scan step, shared by pull scans and push group drivers.
    /// Returns what to evaluate, the location to report afterwards, the
    /// units consumed, and whether the step ends the first phase (the
    /// cursor wraps after it).
    pub(crate) fn gather(
        &self,
        file: FileId,
        extent_pages: u32,
        ids: &mut Vec<PageId>,
        rids: &mut Vec<(PageId, u16)>,
    ) -> (StepWork, Location, u64, bool) {
        match self {
            Plan::Table {
                num_pages,
                start_page,
                visited,
            } => {
                let cur = (start_page + visited) % num_pages;
                // Do not cross the wrap boundary within one extent.
                let chunk = extent_pages.min(num_pages - cur).min(num_pages - visited);
                ids.extend((cur..cur + chunk).map(|p| PageId::new(file, p)));
                let last = cur + chunk - 1;
                let wraps = cur + chunk == *num_pages && visited + chunk < *num_pages;
                (
                    StepWork::AllRows,
                    Location::new(last as i64, last as u64),
                    chunk as u64,
                    wraps,
                )
            }
            Plan::Index {
                entries,
                block_pages,
                start_idx,
                visited,
            } => {
                let idx = (start_idx + visited) % entries.len();
                let e = entries[idx];
                let first_page = e.payload as u32 * block_pages;
                ids.extend((first_page..first_page + block_pages).map(|p| PageId::new(file, p)));
                let wraps = idx + 1 == entries.len() && visited + 1 < entries.len();
                (
                    StepWork::AllRows,
                    Location::new(e.key, e.payload),
                    1u64,
                    wraps,
                )
            }
            Plan::Rid {
                entries,
                start_idx,
                visited,
            } => {
                // Consume entries until the chunk spans one extent's
                // worth of distinct pages (or the phase boundary).
                let len = entries.len();
                let extent = extent_pages as usize;
                let max_entries = extent * 32;
                let mut taken = 0usize;
                let mut last = entries[(start_idx + visited) % len];
                while visited + taken < len && taken < max_entries {
                    let e = entries[(start_idx + visited + taken) % len];
                    let rid = Rid::unpack(e.payload);
                    let pid = PageId::new(file, rid.page);
                    if !ids.contains(&pid) {
                        if ids.len() == extent {
                            break;
                        }
                        ids.push(pid);
                    }
                    rids.push((pid, rid.slot));
                    last = e;
                    taken += 1;
                    // Never cross the wrap boundary within one chunk.
                    if (start_idx + visited + taken).is_multiple_of(len) {
                        break;
                    }
                }
                let after = visited + taken;
                let wraps = (start_idx + after).is_multiple_of(len) && after < len;
                (
                    StepWork::Rids {
                        distinct_pages: ids.len() as u64,
                    },
                    Location::new(last.key, last.payload),
                    taken as u64,
                    wraps,
                )
            }
        }
    }

    /// How many pages a gathered step advances the scan's location by
    /// (what `update_location` reports to the sharing manager).
    pub(crate) fn pages_advanced(&self, work: StepWork, units: u64) -> u64 {
        match (self, work) {
            (Plan::Table { .. }, _) => units,
            (Plan::Index { block_pages, .. }, _) => units * *block_pages as u64,
            (Plan::Rid { .. }, StepWork::Rids { distinct_pages }) => distinct_pages,
            (Plan::Rid { .. }, _) => unreachable!("RID plans produce RID work"),
        }
    }

    /// Consume the units a [`Plan::gather`] returned.
    pub(crate) fn advance(&mut self, units: u64) {
        match self {
            Plan::Table { visited, .. } => *visited += units as u32,
            Plan::Index { visited, .. } | Plan::Rid { visited, .. } => *visited += units as usize,
        }
    }

    /// Total pages the whole range covers (RID plans estimate one page
    /// per entry).
    pub(crate) fn total_pages(&self) -> u64 {
        match self {
            Plan::Table { num_pages, .. } => *num_pages as u64,
            Plan::Index {
                entries,
                block_pages,
                ..
            } => entries.len() as u64 * *block_pages as u64,
            Plan::Rid { entries, .. } => entries.len() as u64,
        }
    }

    /// Pages the cursor has covered so far.
    pub(crate) fn visited_pages(&self) -> u64 {
        match self {
            Plan::Table { visited, .. } => *visited as u64,
            Plan::Index {
                visited,
                block_pages,
                ..
            } => *visited as u64 * *block_pages as u64,
            Plan::Rid { visited, .. } => *visited as u64,
        }
    }

    /// A fresh cursor over exactly the already-visited prefix, from the
    /// range start — the private catch-up lap a push consumer runs after
    /// joining a driver mid-range. Only meaningful for cursors that
    /// started at the range start (push drivers always do).
    pub(crate) fn prefix(&self) -> Plan {
        match self {
            Plan::Table { visited, .. } => Plan::Table {
                num_pages: *visited,
                start_page: 0,
                visited: 0,
            },
            Plan::Index {
                entries,
                block_pages,
                visited,
                ..
            } => Plan::Index {
                entries: entries[..*visited].to_vec(),
                block_pages: *block_pages,
                start_idx: 0,
                visited: 0,
            },
            Plan::Rid {
                entries, visited, ..
            } => Plan::Rid {
                entries: entries[..*visited].to_vec(),
                start_idx: 0,
                visited: 0,
            },
        }
    }

    /// The pages the *next* step will touch (table and block index
    /// plans; RID chunks are not predicted), appended to `out`. Used for
    /// prefetching.
    pub(crate) fn peek_next_pages(&self, file: FileId, extent_pages: u32, out: &mut Vec<PageId>) {
        match self {
            Plan::Table {
                num_pages,
                start_page,
                visited,
            } => {
                if visited >= num_pages {
                    return;
                }
                let cur = (start_page + visited) % num_pages;
                let chunk = extent_pages.min(num_pages - cur).min(num_pages - visited);
                out.extend((cur..cur + chunk).map(|p| PageId::new(file, p)));
            }
            Plan::Index {
                entries,
                block_pages,
                start_idx,
                visited,
            } => {
                if *visited >= entries.len() {
                    return;
                }
                let e = entries[(start_idx + visited) % entries.len()];
                let first = e.payload as u32 * block_pages;
                out.extend((first..first + block_pages).map(|p| PageId::new(file, p)));
            }
            Plan::Rid { .. } => {}
        }
    }
}

/// What a step evaluates on its fetched pages.
#[derive(Clone, Copy)]
pub(crate) enum StepWork {
    /// Every row of every fetched page (table and block index scans).
    AllRows,
    /// Exactly the `(page, slot)` rows gathered into the step scratch,
    /// touching this many distinct pages (RID index scans).
    Rids { distinct_pages: u64 },
}

/// Reusable per-scan buffers for `step`'s extent loop. Capacity survives
/// between steps, so the per-extent hot path performs no allocation in
/// steady state.
#[derive(Debug, Default)]
struct StepScratch {
    /// The extent's page ids, in scan order.
    ids: Vec<PageId>,
    /// RID work list for [`Plan::Rid`] chunks.
    rids: Vec<(PageId, u16)>,
    /// Fetched `(page, pool slot)` pairs, sorted by page id.
    pages: Vec<(PageId, u32)>,
    /// Predicted next-extent pages handed to the prefetcher.
    prefetch: Vec<PageId>,
    /// Fault events drained from the world after each fetch.
    faults: Vec<crate::faults::FaultEvent>,
}

/// One predicate leaf with its column byte offset resolved against the
/// scan's schema. [`RowPipeline::compile`] flattens a [`Pred`] tree into
/// a conjunction of these so the per-row loop reads fields straight out
/// of the row bytes — no `Box` chasing, no per-access offset lookup.
#[derive(Debug)]
enum PredLeaf {
    /// `lo <= i32 at off <= hi`.
    I32Between { off: usize, lo: i32, hi: i32 },
    /// `f64 at off < x`.
    F64LessThan { off: usize, x: f64 },
    /// `byte at off == c`.
    CharEq { off: usize, c: u8 },
}

impl PredLeaf {
    #[inline]
    fn eval(&self, bytes: &[u8]) -> bool {
        match *self {
            PredLeaf::I32Between { off, lo, hi } => {
                let v = i32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
                lo <= v && v <= hi
            }
            PredLeaf::F64LessThan { off, x } => {
                f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) < x
            }
            PredLeaf::CharEq { off, c } => bytes[off] == c,
        }
    }
}

/// The scan's per-row work, compiled once at [`ScanExec::start`]: the
/// predicate flattened into [`PredLeaf`] conjuncts (left-to-right source
/// order, so evaluation order matches [`Pred::eval`]'s short-circuit)
/// and the aggregate's column indexes resolved to byte offsets. The row
/// loop dominates simulator wall time, so it must not touch `Schema`.
#[derive(Debug)]
pub(crate) struct RowPipeline {
    /// Conjunction of leaves; empty means every row qualifies.
    leaves: Vec<PredLeaf>,
    /// Byte offsets of the float columns in `AggSpec::sum_cols`, in order.
    sum_offs: Vec<usize>,
    /// Byte offsets of the `Char` columns in `AggSpec::group_by`, in order.
    group_offs: Vec<usize>,
}

impl RowPipeline {
    pub(crate) fn compile(pred: &Pred, agg: &AggSpec, schema: &Schema) -> RowPipeline {
        let mut leaves = Vec::new();
        Self::flatten(pred, schema, &mut leaves);
        RowPipeline {
            leaves,
            sum_offs: agg.sum_cols.iter().map(|&c| schema.offset(c)).collect(),
            group_offs: agg.group_by.iter().map(|&c| schema.offset(c)).collect(),
        }
    }

    /// Flatten an `And` tree left-to-right; `True` is the conjunction
    /// identity and contributes no leaf.
    fn flatten(pred: &Pred, schema: &Schema, out: &mut Vec<PredLeaf>) {
        match pred {
            Pred::True => {}
            Pred::I32Between(col, lo, hi) => out.push(PredLeaf::I32Between {
                off: schema.offset(*col),
                lo: *lo,
                hi: *hi,
            }),
            Pred::F64LessThan(col, x) => out.push(PredLeaf::F64LessThan {
                off: schema.offset(*col),
                x: *x,
            }),
            Pred::CharEq(col, c) => out.push(PredLeaf::CharEq {
                off: schema.offset(*col),
                c: *c,
            }),
            Pred::And(a, b) => {
                Self::flatten(a, schema, out);
                Self::flatten(b, schema, out);
            }
        }
    }

    /// Does the row qualify? Conjuncts are checked in the same order as
    /// the source predicate's short-circuit evaluation.
    #[inline]
    fn matches(&self, bytes: &[u8]) -> bool {
        self.leaves.iter().all(|l| l.eval(bytes))
    }
}

/// Aggregation state qualifying rows fold into — the *consume rows* half
/// of a scan, owned by a pull [`ScanExec`] or by one push consumer. Kept
/// apart from [`RowPipeline`] so the compiled (immutable) pipeline and
/// the mutable state can be borrowed independently while row bytes
/// borrowed from the pool are live.
#[derive(Debug, Default)]
pub(crate) struct AggState {
    count: u64,
    sums: Vec<f64>,
    /// Per-group aggregates, kept sorted by packed group key. The paper
    /// workloads group by at most a handful of `Char` values (TPC-H Q1
    /// has six groups), so a sorted vec beats hashing every row.
    groups: Vec<(i64, crate::query::GroupAgg)>,
}

impl AggState {
    pub(crate) fn new(n_sums: usize) -> AggState {
        AggState {
            count: 0,
            sums: vec![0.0; n_sums],
            groups: Vec::new(),
        }
    }

    /// The aggregate answer accumulated so far.
    pub(crate) fn result(&self) -> QueryResult {
        QueryResult {
            count: self.count,
            sums: self.sums.clone(),
            groups: self.groups.clone(),
        }
    }

    /// Fold one qualifying row in.
    #[inline]
    fn accumulate(&mut self, pipe: &RowPipeline, bytes: &[u8]) {
        let field = |off: usize| f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        self.count += 1;
        for (i, &off) in pipe.sum_offs.iter().enumerate() {
            self.sums[i] += field(off);
        }
        if !pipe.group_offs.is_empty() {
            let mut key = 0i64;
            for &off in &pipe.group_offs {
                key = (key << 8) | bytes[off] as i64;
            }
            let at = match self.groups.binary_search_by_key(&key, |g| g.0) {
                Ok(at) => at,
                Err(at) => {
                    let agg = crate::query::GroupAgg {
                        count: 0,
                        sums: vec![0.0; pipe.sum_offs.len()],
                    };
                    self.groups.insert(at, (key, agg));
                    at
                }
            };
            let g = &mut self.groups[at].1;
            g.count += 1;
            for (i, &off) in pipe.sum_offs.iter().enumerate() {
                g.sums[i] += field(off);
            }
        }
    }
}

/// Run `pipe` over every row of the fetched `pages`, folding qualifiers
/// into `agg` — the shared row loop of both delivery modes. A pull scan
/// calls it on the pages it fetched itself; the push engine calls it
/// once per attached consumer on the pages the group driver fixed.
/// Returns the number of rows examined (the CPU-cost driver).
pub(crate) fn consume_all_rows(
    pool: &scanshare_storage::BufferPool,
    pages: &[(PageId, u32)],
    width: usize,
    pipe: &RowPipeline,
    agg: &mut AggState,
) -> EngineResult<u64> {
    let mut rows = 0u64;
    for &(_, slot) in pages {
        let page = HeapPage::new(pool.slot_buf(slot))?;
        // Fixed-width heap pages iterate without per-slot descriptor
        // decoding; odd layouts take the slow path.
        if let Some(dense) = page.rows_dense(width) {
            for row_bytes in dense {
                rows += 1;
                if pipe.matches(row_bytes) {
                    agg.accumulate(pipe, row_bytes);
                }
            }
        } else {
            for row_bytes in page.rows() {
                rows += 1;
                if pipe.matches(row_bytes) {
                    agg.accumulate(pipe, row_bytes);
                }
            }
        }
    }
    Ok(rows)
}

/// Measurements a finished scan hands back to its query.
#[derive(Debug, Clone, Default)]
pub struct ScanMetrics {
    /// CPU time spent processing rows.
    pub cpu: SimDuration,
    /// Time blocked waiting for pages.
    pub io_wait: SimDuration,
    /// Throttle wait injected by the manager.
    pub throttle_wait: SimDuration,
    /// Buffer pool fixes.
    pub logical_reads: u64,
    /// Pages physically read on behalf of this scan.
    pub physical_reads: u64,
}

/// One executing scan.
#[derive(Debug)]
pub struct ScanExec {
    file: FileId,
    schema: Schema,
    /// Predicate + aggregate columns compiled against `schema`.
    pipeline: RowPipeline,
    cpu: CpuClass,
    plan: Plan,
    mgr_scan: Option<ScanId>,
    /// Human-readable description of the placement decision (tracing).
    placement: String,
    /// Ring of this scan's recently released pages, when the scan is
    /// unshared and large: vanilla engines recycle sequential-scan
    /// buffers through a small ring instead of letting one scan flush
    /// the pool. `None` when sharing manages retention instead.
    ring: Option<(std::collections::VecDeque<PageId>, usize)>,
    /// Pending wrap notification (phase 1 just ended).
    needs_wrap: bool,
    /// The scan died to a fault: it is `finished()` with a partial
    /// answer, and was evicted from sharing.
    aborted: bool,
    /// Aggregation state.
    agg: AggState,
    /// Reusable step buffers.
    scratch: StepScratch,
    /// Metrics.
    pub metrics: ScanMetrics,
}

/// A planned-but-unstarted scan: the access path resolved into a
/// [`Plan`] cursor plus the manager registration record. Shared by the
/// pull executor ([`ScanExec::start`]) and the push engine's group
/// drivers, so the two delivery modes plan identically.
pub(crate) struct PlannedScan {
    pub(crate) file: FileId,
    pub(crate) schema: Schema,
    pub(crate) plan: Plan,
    pub(crate) desc: ScanDesc,
}

/// Resolve a [`ScanSpec`] against the database: pick the access path,
/// materialize the cursor skeleton (at the range start), and build the
/// [`ScanDesc`] a sharing manager registers.
pub(crate) fn plan_scan(
    db: &Database,
    world: &ExecWorld<'_>,
    spec: &ScanSpec,
) -> EngineResult<PlannedScan> {
    let table = db
        .table(&spec.table)
        .ok_or_else(|| EngineError::UnknownTable(spec.table.clone()))?;
    let file = table.file();
    let schema = table.schema().clone();
    let rows_per_page = if table.num_pages() == 0 {
        0
    } else {
        table.num_rows() / table.num_pages() as u64
    };

    // Build the plan skeleton and the manager registration record.
    let (plan, desc) = match &spec.access {
        Access::FullTable => {
            let num_pages = table.num_pages();
            let desc = ScanDesc {
                kind: ScanKind::Table,
                object: ObjectId(file.0 as u64),
                start_key: 0,
                end_key: num_pages.saturating_sub(1) as i64,
                est_pages: num_pages as u64,
                est_time: ScanExec::estimate_time(world, spec, num_pages as u64, rows_per_page),
                priority: spec.query_priority,
            };
            (
                Plan::Table {
                    num_pages,
                    start_page: 0,
                    visited: 0,
                },
                desc,
            )
        }
        Access::RidRange { lo, hi } => {
            let index = table
                .rid_index
                .as_ref()
                .ok_or_else(|| EngineError::NotClustered(spec.table.clone()))?;
            let entries = index.range(db.store(), *lo, *hi)?;
            // Low-selectivity RID fetches touch roughly one distinct
            // page per entry, capped by the table size.
            let est_pages = (entries.len() as u64).min(table.num_pages() as u64);
            let desc = ScanDesc {
                kind: ScanKind::Index,
                object: ObjectId(file.0 as u64),
                start_key: *lo,
                end_key: *hi,
                est_pages,
                est_time: ScanExec::estimate_time(world, spec, est_pages, 1),
                priority: spec.query_priority,
            };
            (
                Plan::Rid {
                    entries,
                    start_idx: 0,
                    visited: 0,
                },
                desc,
            )
        }
        Access::IndexRange { lo, hi } => {
            let mdc = table
                .as_mdc()
                .ok_or_else(|| EngineError::NotClustered(spec.table.clone()))?;
            let entries = mdc.blocks_for_range(db.store(), *lo, *hi)?;
            let est_pages = entries.len() as u64 * mdc.block_pages as u64;
            let desc = ScanDesc {
                kind: ScanKind::Index,
                object: ObjectId(file.0 as u64),
                start_key: *lo,
                end_key: *hi,
                est_pages,
                est_time: ScanExec::estimate_time(world, spec, est_pages, rows_per_page),
                priority: spec.query_priority,
            };
            (
                Plan::Index {
                    entries,
                    block_pages: mdc.block_pages,
                    start_idx: 0,
                    visited: 0,
                },
                desc,
            )
        }
    };
    Ok(PlannedScan {
        file,
        schema,
        plan,
        desc,
    })
}

impl ScanExec {
    /// Plan and register a scan at time `now`. When `world.mgr` is set,
    /// this is where placement happens: the manager may start the scan
    /// in the middle of its range.
    pub fn start(
        db: &Database,
        world: &mut ExecWorld<'_>,
        spec: &ScanSpec,
        now: SimTime,
    ) -> EngineResult<ScanExec> {
        let PlannedScan {
            file,
            schema,
            mut plan,
            desc,
        } = plan_scan(db, world, spec)?;

        // Placement: ask the manager where to start. Scope toggles let
        // experiments run table-scan sharing alone (ICDE scope) or with
        // the index-scan extension (VLDB scope).
        let kind_shared = !spec.require_order
            && match desc.kind {
                ScanKind::Table => world.cfg.share_table_scans,
                ScanKind::Index => world.cfg.share_index_scans,
            };
        let est_pages = desc.est_pages;
        let mut mgr_scan = None;
        let mut placement = "unmanaged".to_string();
        if let (Some(mgr), true) = (world.mgr.clone(), kind_shared) {
            let (id, decision) = mgr.start_scan(desc, now);
            mgr_scan = Some(id);
            placement = crate::trace::placement_label(&decision);
            if let scanshare::StartDecision::JoinAt {
                location: loc,
                back_up_pages,
                ..
            } = decision
            {
                match &mut plan {
                    Plan::Table {
                        num_pages,
                        start_page,
                        ..
                    } => {
                        let at = (loc.pos as u32).min(num_pages.saturating_sub(1));
                        *start_page = at.saturating_sub(back_up_pages as u32);
                    }
                    Plan::Index {
                        entries,
                        block_pages,
                        start_idx,
                        ..
                    } => {
                        // Find the exact joined entry; fall back to the
                        // first entry at or after the joined key; then
                        // back up by the hinted number of pages (the
                        // finished scan's leftovers in the pool).
                        let exact = entries
                            .iter()
                            .position(|e| e.key == loc.key && e.payload == loc.pos);
                        let near = entries.iter().position(|e| e.key >= loc.key);
                        let at = exact.or(near).unwrap_or(0);
                        let back = (back_up_pages / *block_pages as u64) as usize;
                        *start_idx = at.saturating_sub(back);
                    }
                    Plan::Rid {
                        entries, start_idx, ..
                    } => {
                        // ~1 page per entry: back up one entry per page.
                        let exact = entries
                            .iter()
                            .position(|e| e.key == loc.key && e.payload == loc.pos);
                        let near = entries.iter().position(|e| e.key >= loc.key);
                        let at = exact.or(near).unwrap_or(0);
                        *start_idx = at.saturating_sub(back_up_pages as usize);
                    }
                }
            }
        }

        // Large scans recycle their buffers through a bounded ring, like
        // vanilla engines. Shared scans keep the ring too, but with a
        // pool-sized cap and only while *ungrouped* (singletons): the
        // manager wants a finished scan's trail retained (last-finished
        // placement), yet an ungrouped giant must not flush everything
        // hotter than it. Once grouped, retention is the manager's job
        // (leader/trailer priorities) and the ring is dropped.
        let ring_pages = if world.mgr.is_some() && kind_shared {
            (world.pool.capacity() / 2).max(world.cfg.seq_ring_pages as usize)
        } else {
            world.cfg.seq_ring_pages as usize
        };
        let large = est_pages as usize > world.pool.capacity() / 4;
        let ring = (ring_pages > 0 && world.cfg.seq_ring_pages > 0 && large)
            .then(|| (std::collections::VecDeque::new(), ring_pages));

        let n_sums = spec.agg.sum_cols.len();
        let pipeline = RowPipeline::compile(&spec.pred, &spec.agg, &schema);
        Ok(ScanExec {
            file,
            schema,
            pipeline,
            cpu: spec.cpu,
            plan,
            mgr_scan,
            placement,
            ring,
            needs_wrap: false,
            aborted: false,
            agg: AggState::new(n_sums),
            scratch: StepScratch::default(),
            metrics: ScanMetrics::default(),
        })
    }

    /// The cost-model scan-time estimate (the "costing component of the
    /// query compiler"): assume a cold run — one seek per extent plus
    /// transfer, system and CPU time.
    fn estimate_time(
        world: &ExecWorld<'_>,
        spec: &ScanSpec,
        est_pages: u64,
        rows_per_page: u64,
    ) -> SimDuration {
        let extent = world.cfg.extent_pages as u64;
        if est_pages == 0 {
            return SimDuration::from_micros(1);
        }
        let extents = est_pages.div_ceil(extent);
        let per_extent = world.cfg.disk.seek
            + world.cfg.disk.transfer_per_page.times(extent)
            + world.cfg.sys_per_request
            + spec.cpu.extent_cost(extent, rows_per_page * extent);
        SimDuration::from_micros(per_extent.as_micros() * extents)
    }

    /// Whether the scan has processed its whole range.
    pub fn finished(&self) -> bool {
        self.plan.done()
    }

    /// The scan's answer (valid once finished).
    pub fn result(&self) -> QueryResult {
        self.agg.result()
    }

    /// The manager id of this scan, if shared.
    pub fn scan_id(&self) -> Option<ScanId> {
        self.mgr_scan
    }

    /// Whether the scan died to a fault (its result is partial).
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Attribute fault events the world observed during this scan's I/O
    /// (including transient faults a retry absorbed) to the manager's
    /// decision log.
    fn report_faults(&mut self, world: &mut ExecWorld<'_>, now: SimTime) {
        if !world.faults_enabled() {
            return;
        }
        let events = &mut self.scratch.faults;
        events.clear();
        world.take_fault_events(events);
        if let (Some(id), Some(mgr)) = (self.mgr_scan, world.mgr.clone()) {
            for e in events.iter() {
                mgr.note_fault(id, now, e.device, e.addr, e.transient, e.attempt);
            }
        }
    }

    /// Graceful degradation: the extent read died for good. Evict the
    /// scan from sharing (its group re-forms and any throttle it
    /// justified is lifted), count the abort, and finish the scan early
    /// with its partial answer — the run keeps going.
    fn abort_on_fault(
        &mut self,
        world: &mut ExecWorld<'_>,
        now: SimTime,
        device: u32,
        addr: u64,
        transient: bool,
    ) {
        let kind = if transient {
            "exhausted retries on a transient"
        } else {
            "permanent"
        };
        let reason = format!("{kind} read fault on device {device} at page {addr}");
        if let (Some(id), Some(mgr)) = (self.mgr_scan.take(), world.mgr.clone()) {
            mgr.evict_scan(id, now, &reason);
            if let Some(tr) = &world.tracer {
                tr.record(now, crate::trace::TraceEvent::ScanFinished { scan: id });
            }
        }
        world.note_scan_aborted();
        self.aborted = true;
        // Mark the plan consumed so `finished()` holds and the stream
        // moves on.
        match &mut self.plan {
            Plan::Table {
                num_pages, visited, ..
            } => *visited = *num_pages,
            Plan::Index {
                entries, visited, ..
            }
            | Plan::Rid {
                entries, visited, ..
            } => *visited = entries.len(),
        }
    }

    /// How placement started this scan (for tracing).
    pub fn placement_label(&self) -> &str {
        &self.placement
    }

    /// Advance by one extent. Returns the time at which the scan may take
    /// its next step, or `None` once it has finished (the manager is
    /// deregistered at that point).
    pub fn step(
        &mut self,
        world: &mut ExecWorld<'_>,
        now: SimTime,
    ) -> EngineResult<Option<SimTime>> {
        if self.finished() {
            if let (Some(id), Some(mgr)) = (self.mgr_scan.take(), world.mgr.clone()) {
                mgr.end_scan(id, now);
                if let Some(tr) = &world.tracer {
                    tr.record(now, crate::trace::TraceEvent::ScanFinished { scan: id });
                }
            }
            return Ok(None);
        }

        // Gather this extent's pages (into the reusable scratch), what to
        // evaluate on them, and the location reported afterwards — the
        // *advance the cursor* half of the step, shared with push-mode
        // group drivers via [`Plan::gather`].
        self.scratch.ids.clear();
        self.scratch.rids.clear();
        let (work, location, units, wrap_after) = self.plan.gather(
            self.file,
            world.cfg.extent_pages,
            &mut self.scratch.ids,
            &mut self.scratch.rids,
        );

        // A pending wrap from the previous step is reported before new
        // work: the scan is now at the start of its second phase.
        if self.needs_wrap {
            if let (Some(id), Some(mgr)) = (self.mgr_scan, world.mgr.clone()) {
                let first_loc = match &self.plan {
                    Plan::Table { .. } => {
                        let first = self.scratch.ids[0].page;
                        Location::new(first as i64, first as u64)
                    }
                    Plan::Index { entries, .. } | Plan::Rid { entries, .. } => {
                        Location::new(entries[0].key, entries[0].payload)
                    }
                };
                mgr.wrap_scan(id, now, first_loc);
                if let Some(tr) = &world.tracer {
                    tr.record(now, crate::trace::TraceEvent::ScanWrapped { scan: id });
                }
            }
            self.needs_wrap = false;
        }

        // I/O. Under a fault plan the fetch can fail for good (permanent
        // fault or exhausted retries): that aborts this scan, not the run.
        let prof = world.profiler.clone();
        let fetch_span = prof
            .as_ref()
            .map(|p| p.begin_child("extent.fetch", now))
            .unwrap_or_else(scanshare::SpanId::none);
        let fetched = world.fetch_extent(now, &self.scratch.ids, &mut self.scratch.pages);
        self.report_faults(world, now);
        let fetch = match fetched {
            Ok(f) => f,
            Err(StorageError::ReadFault {
                device,
                addr,
                transient,
            }) => {
                if let Some(p) = &prof {
                    p.attr(fetch_span, "error", "read_fault");
                    p.attr(fetch_span, "device", device.to_string());
                    p.end(fetch_span, now);
                }
                self.abort_on_fault(world, now, device, addr, transient);
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        if let Some(p) = &prof {
            p.attr(fetch_span, "hits", fetch.hits.to_string());
            p.attr(fetch_span, "misses", fetch.misses.to_string());
            p.attr(fetch_span, "requests", fetch.requests.to_string());
            p.end(fetch_span, fetch.ready);
        }
        self.metrics.io_wait += fetch.ready.since(now);
        self.metrics.logical_reads += self.scratch.ids.len() as u64;
        self.metrics.physical_reads += fetch.misses;

        // CPU: evaluate the predicate, aggregate qualifiers. Row bytes
        // are borrowed straight from the pinned pool frames and fields
        // read at the pipeline's precompiled offsets.
        let cpu_span = prof
            .as_ref()
            .map(|p| p.begin_child("cpu.process", fetch.ready))
            .unwrap_or_else(scanshare::SpanId::none);
        let mut rows = 0u64;
        let width = self.schema.row_width();
        let pipe = &self.pipeline;
        match work {
            StepWork::AllRows => {
                rows =
                    consume_all_rows(&world.pool, &self.scratch.pages, width, pipe, &mut self.agg)?;
            }
            StepWork::Rids { .. } => {
                // Evaluate exactly the indexed rows; `scratch.pages` is
                // sorted by page id, so each page resolves by binary
                // search (no per-step map allocation).
                let pages = &self.scratch.pages;
                for &(pid, slot) in &self.scratch.rids {
                    rows += 1;
                    let at = pages
                        .binary_search_by_key(&pid, |&(id, _)| id)
                        .expect("page fetched");
                    let page = HeapPage::new(world.pool.slot_buf(pages[at].1))?;
                    let row_bytes = page.row_bytes(slot)?;
                    if pipe.matches(row_bytes) {
                        self.agg.accumulate(pipe, row_bytes);
                    }
                }
            }
        }
        let pages_advanced = self.plan.pages_advanced(work, units);
        let cost = self.cpu.extent_cost(self.scratch.ids.len() as u64, rows);
        let done = world.run_cpu(fetch.ready, cost);
        self.metrics.cpu += cost;
        if let Some(p) = &prof {
            p.attr(cpu_span, "rows", rows.to_string());
            p.end(cpu_span, done);
        }

        // Sharing-manager update: throttle wait + release priority.
        let mut wait = SimDuration::ZERO;
        let mut priority = PagePriority::Normal;
        let mut grouped = false;
        if let (Some(id), Some(mgr)) = (self.mgr_scan, world.mgr.clone()) {
            let out = mgr.update_location(id, done, location, pages_advanced);
            wait = out.wait;
            priority = out.priority;
            grouped = out.role != scanshare::Role::Singleton;
            self.metrics.throttle_wait += wait;
            if wait > SimDuration::ZERO {
                if let Some(p) = &prof {
                    let s = p.begin_child("throttle.wait", done);
                    p.attr(s, "wait_us", wait.as_micros().to_string());
                    p.attr(s, "role", crate::trace::role_label(out.role).to_string());
                    p.end(s, done + wait);
                }
                world.throttle_hist.record(wait.as_micros());
                if let Some(tr) = &world.tracer {
                    tr.record(
                        done,
                        crate::trace::TraceEvent::Throttled {
                            scan: id,
                            wait,
                            role: crate::trace::role_label(out.role).to_string(),
                        },
                    );
                }
            }
        }
        world.release_pages(&self.scratch.pages, priority)?;
        if let Some((ring, cap)) = &mut self.ring {
            if grouped {
                // Retention belongs to the manager now; forget the ring
                // so the group's pages stay pool-managed.
                ring.clear();
            } else {
                for &(id, _) in &self.scratch.pages {
                    ring.push_back(id);
                }
                while ring.len() > *cap {
                    let old = ring.pop_front().expect("nonempty");
                    world.pool.discard(old);
                }
            }
        }

        // Advance.
        self.plan.advance(units);
        if wrap_after {
            self.needs_wrap = true;
        }
        if world.cfg.prefetch_extents > 0 && !self.finished() {
            self.scratch.prefetch.clear();
            self.plan.peek_next_pages(
                self.file,
                world.cfg.extent_pages,
                &mut self.scratch.prefetch,
            );
            if !self.scratch.prefetch.is_empty() {
                world.prefetch(fetch.ready, &self.scratch.prefetch)?;
            }
        }
        Ok(Some(done + wait))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EngineConfig;
    use scanshare_relstore::{ColType, Column, Value};
    use scanshare_storage::{BufferPool, PoolConfig, ReplacementPolicy};

    fn small_db() -> Database {
        let mut db = Database::new(16);
        let schema = Schema::new(vec![
            Column::new("month", ColType::Int32),
            Column::new("amount", ColType::Float64),
        ]);
        // Heap table: 4000 rows.
        db.create_heap_table(
            "orders",
            schema.clone(),
            (0..4000).map(|i| vec![Value::I32(i % 12), Value::F64(1.0)]),
        )
        .unwrap();
        // Heap table with a RID index on the month column; insertion
        // order scatters each month across every page.
        db.create_heap_table_with_index(
            "events",
            schema.clone(),
            0,
            (0..20_000).map(|i| vec![Value::I32(i % 10), Value::F64(3.0)]),
        )
        .unwrap();
        // MDC table clustered by month, interleaved inserts.
        db.create_mdc_table(
            "lineitem",
            schema,
            4,
            (0..20_000).map(|i| ((i % 6) as i64, vec![Value::I32(i % 6), Value::F64(2.0)])),
        )
        .unwrap();
        db
    }

    fn world(db: &Database) -> ExecWorld<'_> {
        let pool = BufferPool::new(PoolConfig::new(256, ReplacementPolicy::Lru));
        ExecWorld::new(db.store(), pool, EngineConfig::default(), None)
    }

    fn run_to_end(
        db: &Database,
        world: &mut ExecWorld<'_>,
        spec: &ScanSpec,
    ) -> (QueryResult, ScanMetrics) {
        run_from(db, world, spec, SimTime::ZERO)
    }

    fn run_from(
        db: &Database,
        world: &mut ExecWorld<'_>,
        spec: &ScanSpec,
        start: SimTime,
    ) -> (QueryResult, ScanMetrics) {
        let mut scan = ScanExec::start(db, world, spec, start).unwrap();
        let mut t = start;
        while let Some(next) = scan.step(world, t).unwrap() {
            t = next;
        }
        (scan.result(), scan.metrics.clone())
    }

    fn table_spec(pred: Pred) -> ScanSpec {
        ScanSpec {
            table: "orders".into(),
            access: Access::FullTable,
            pred,
            agg: AggSpec::sums(vec![1]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        }
    }

    fn index_spec(lo: i64, hi: i64) -> ScanSpec {
        ScanSpec {
            table: "lineitem".into(),
            access: Access::IndexRange { lo, hi },
            pred: Pred::True,
            agg: AggSpec::sums(vec![1]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        }
    }

    fn rid_spec(lo: i64, hi: i64) -> ScanSpec {
        ScanSpec {
            table: "events".into(),
            access: Access::RidRange { lo, hi },
            pred: Pred::True,
            agg: AggSpec::sums(vec![1]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        }
    }

    #[test]
    fn rid_scan_full_range_sees_every_row() {
        let db = small_db();
        let mut w = world(&db);
        let (r, m) = run_to_end(&db, &mut w, &rid_spec(0, 9));
        assert_eq!(r.count, 20_000);
        assert!((r.sums[0] - 60_000.0).abs() < 1e-6);
        assert!(m.physical_reads > 0);
    }

    #[test]
    fn rid_scan_range_restricts_keys() {
        let db = small_db();
        let mut w = world(&db);
        let (r, _) = run_to_end(&db, &mut w, &rid_spec(3, 4));
        assert_eq!(r.count, 4_000); // 2 of 10 keys
    }

    #[test]
    fn rid_scan_seeks_much_more_than_block_scan() {
        // §3.2: RIDs behind a key are scattered, so a cold RID scan of
        // one key seeks per page run, while the same rows clustered in
        // blocks read almost sequentially.
        let db = small_db();
        let mut w = world(&db);
        run_to_end(&db, &mut w, &rid_spec(0, 0));
        let rid_seeks = w.disk.stats().seeks;
        let rid_reads = w.disk.stats().pages_read;
        // One month = every heap page (month i on every page of 20k rows
        // striped by i % 10).
        assert_eq!(rid_reads, db.table("events").unwrap().num_pages() as u64);
        // All pages visited in ascending page order here (index payload
        // order), so runs coalesce; the point is the full-page touch.
        assert!(rid_seeks >= 1);
    }

    #[test]
    fn rid_scan_on_unindexed_table_is_rejected() {
        let db = small_db();
        let mut w = world(&db);
        let spec = ScanSpec {
            table: "orders".into(),
            ..rid_spec(0, 1)
        };
        let err = ScanExec::start(&db, &mut w, &spec, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, EngineError::NotClustered(_)));
    }

    #[test]
    fn shared_rid_scans_cover_their_ranges() {
        use scanshare::{ScanSharingManager, SharingConfig};
        use std::sync::Arc;
        let db = small_db();
        let pool = BufferPool::new(PoolConfig::new(256, ReplacementPolicy::PriorityLru));
        let mgr = Arc::new(ScanSharingManager::new(SharingConfig::new(256)));
        let mut w = ExecWorld::new(db.store(), pool, EngineConfig::default(), Some(mgr.clone()));
        let spec = rid_spec(0, 9);
        let mut s1 = ScanExec::start(&db, &mut w, &spec, SimTime::ZERO).unwrap();
        let mut t = SimTime::ZERO;
        for _ in 0..3 {
            t = s1.step(&mut w, t).unwrap().unwrap();
        }
        let mut s2 = ScanExec::start(&db, &mut w, &spec, t).unwrap();
        let mut t2 = t;
        while let Some(next) = s2.step(&mut w, t2).unwrap() {
            t2 = next;
        }
        while let Some(next) = s1.step(&mut w, t).unwrap() {
            t = next;
        }
        assert_eq!(s1.result().count, 20_000);
        assert_eq!(s2.result().count, 20_000);
        assert_eq!(mgr.num_active(), 0);
    }

    #[test]
    fn prefetch_overlaps_io_and_speeds_up_a_solo_scan() {
        let db = small_db();
        let spec = ScanSpec {
            // CPU-heavy so there is processing time to hide I/O under.
            cpu: CpuClass::cpu_bound(),
            ..index_spec(0, 5)
        };
        let mut w_off = world(&db);
        let (r1, _) = run_to_end(&db, &mut w_off, &spec);
        let off_done = w_off.disk.free_at();

        let pool = BufferPool::new(PoolConfig::new(256, ReplacementPolicy::Lru));
        let mut w_on = ExecWorld::new(
            db.store(),
            pool,
            EngineConfig {
                prefetch_extents: 1,
                ..EngineConfig::default()
            },
            None,
        );
        let mut scan = ScanExec::start(&db, &mut w_on, &spec, SimTime::ZERO).unwrap();
        let mut t = SimTime::ZERO;
        while let Some(next) = scan.step(&mut w_on, t).unwrap() {
            t = next;
        }
        assert_eq!(scan.result(), r1, "same answer with prefetch");
        assert!(t < off_done.max(t) || t.as_micros() > 0, "scan completes");
        // With prefetch the scan finishes sooner than without.
        let off_elapsed = {
            let mut w = world(&db);
            let mut scan = ScanExec::start(&db, &mut w, &spec, SimTime::ZERO).unwrap();
            let mut t = SimTime::ZERO;
            while let Some(next) = scan.step(&mut w, t).unwrap() {
                t = next;
            }
            t
        };
        assert!(
            t < off_elapsed,
            "prefetch should hide I/O: {t} vs {off_elapsed}"
        );
        // Total physical reads are unchanged: prefetch moves reads, it
        // does not add any.
        assert_eq!(w_on.disk.stats().pages_read, w_off.disk.stats().pages_read);
    }

    #[test]
    fn table_scan_sees_every_row() {
        let db = small_db();
        let mut w = world(&db);
        let (r, m) = run_to_end(&db, &mut w, &table_spec(Pred::True));
        assert_eq!(r.count, 4000);
        assert!((r.sums[0] - 4000.0).abs() < 1e-9);
        assert!(m.physical_reads > 0);
        assert_eq!(
            m.logical_reads,
            db.table("orders").unwrap().num_pages() as u64
        );
    }

    #[test]
    fn table_scan_predicate_filters() {
        let db = small_db();
        let mut w = world(&db);
        let (r, _) = run_to_end(&db, &mut w, &table_spec(Pred::I32Between(0, 0, 2)));
        // months 0..=2 out of 12 over 4000 rows; 4000 % 12 = 4, so the
        // first four months get one extra row each.
        assert_eq!(r.count, 1002);
    }

    #[test]
    fn index_scan_full_range_sees_every_row() {
        let db = small_db();
        let mut w = world(&db);
        let (r, _) = run_to_end(&db, &mut w, &index_spec(0, 5));
        assert_eq!(r.count, 20_000);
        assert!((r.sums[0] - 40_000.0).abs() < 1e-9);
    }

    #[test]
    fn index_scan_range_restricts_cells() {
        let db = small_db();
        let mut w = world(&db);
        let (r, _) = run_to_end(&db, &mut w, &index_spec(2, 3));
        // Cells 2 and 3: 2/6 of the rows.
        assert_eq!(r.count, 20_000 / 3);
    }

    #[test]
    fn empty_index_range_finishes_immediately() {
        let db = small_db();
        let mut w = world(&db);
        let (r, m) = run_to_end(&db, &mut w, &index_spec(40, 50));
        assert_eq!(r.count, 0);
        assert_eq!(m.logical_reads, 0);
    }

    #[test]
    fn unknown_table_is_reported() {
        let db = small_db();
        let mut w = world(&db);
        let spec = ScanSpec {
            table: "nope".into(),
            ..table_spec(Pred::True)
        };
        let err = ScanExec::start(&db, &mut w, &spec, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, EngineError::UnknownTable(_)));
    }

    #[test]
    fn index_scan_on_heap_table_is_rejected() {
        let db = small_db();
        let mut w = world(&db);
        let spec = ScanSpec {
            table: "orders".into(),
            ..index_spec(0, 5)
        };
        let err = ScanExec::start(&db, &mut w, &spec, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, EngineError::NotClustered(_)));
    }

    #[test]
    fn second_warm_scan_is_faster_and_reads_less() {
        let db = small_db();
        let mut w = world(&db);
        // The orders table fits the 256-frame pool: a later second scan
        // is fully warm.
        let (_, m1) = run_to_end(&db, &mut w, &table_spec(Pred::True));
        let (_, m2) = run_from(&db, &mut w, &table_spec(Pred::True), SimTime::from_secs(10));
        assert!(m2.physical_reads == 0, "warm scan reads nothing");
        assert!(m2.io_wait < m1.io_wait);
    }

    #[test]
    fn shared_scan_starting_midway_covers_the_whole_range() {
        use scanshare::{ScanSharingManager, SharingConfig};
        use std::sync::Arc;
        let db = small_db();
        let pool = BufferPool::new(PoolConfig::new(256, ReplacementPolicy::PriorityLru));
        let mgr = Arc::new(ScanSharingManager::new(SharingConfig::new(256)));
        let mut w = ExecWorld::new(db.store(), pool, EngineConfig::default(), Some(mgr.clone()));

        // First scan makes some progress (3 of its ~12 blocks), leaving
        // plenty of remaining overlap for a join.
        let spec = index_spec(0, 5);
        let mut s1 = ScanExec::start(&db, &mut w, &spec, SimTime::ZERO).unwrap();
        let mut t = SimTime::ZERO;
        for _ in 0..3 {
            t = s1.step(&mut w, t).unwrap().unwrap();
        }
        // Second scan joins mid-range, wraps, and still sees every row.
        let mut s2 = ScanExec::start(&db, &mut w, &spec, t).unwrap();
        let mut t2 = t;
        while let Some(next) = s2.step(&mut w, t2).unwrap() {
            t2 = next;
        }
        assert_eq!(s2.result().count, 20_000);
        assert_eq!(mgr.stats().scans_joined, 1);
        // Finish the first scan too.
        while let Some(next) = s1.step(&mut w, t).unwrap() {
            t = next;
        }
        assert_eq!(s1.result().count, 20_000);
        assert_eq!(mgr.num_active(), 0);
    }
}
