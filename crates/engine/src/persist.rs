//! Database persistence: save a loaded [`Database`] to a single file and
//! reload it later, preserving the exact physical layout (so disk-model
//! seek behavior — and therefore every experiment — is identical to a
//! freshly generated database).
//!
//! File format (little-endian):
//!
//! ```text
//! magic  b"SCANSHAREDB\x01"
//! u64    catalog length
//! bytes  catalog JSON (CatalogOnDisk: tables, volume, page counts)
//! bytes  raw pages: files in id order, each file's pages in order
//! ```

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::Bytes;
use scanshare_relstore::TableMeta;
use scanshare_storage::{FileId, FileStore, PageId, Volume, PAGE_SIZE};
use serde::{Deserialize, Serialize};

use crate::db::Database;
use crate::error::{EngineError, EngineResult};

const MAGIC: &[u8; 12] = b"SCANSHAREDB\x01";

#[derive(Serialize, Deserialize)]
struct CatalogOnDisk {
    extent_pages: u32,
    tables: Vec<TableMeta>,
    /// `(file, extent_no, physical base)` volume rows.
    volume: Vec<(u32, u32, u64)>,
    /// Pages per file, in file-id order.
    file_pages: Vec<u32>,
}

fn io_err(e: std::io::Error) -> EngineError {
    EngineError::Storage(scanshare_storage::StorageError::Corrupt(format!(
        "database file I/O: {e}"
    )))
}

fn corrupt(msg: impl Into<String>) -> EngineError {
    EngineError::Storage(scanshare_storage::StorageError::Corrupt(msg.into()))
}

/// Save `db` to `path`.
pub fn save(db: &Database, path: impl AsRef<Path>) -> EngineResult<()> {
    let store = db.store();
    let catalog = CatalogOnDisk {
        extent_pages: store.volume().extent_pages(),
        tables: db
            .table_names()
            .iter()
            .map(|n| db.table(n).expect("listed table").clone())
            .collect(),
        volume: store
            .volume()
            .entries()
            .into_iter()
            .map(|(f, e, b)| (f.0, e, b))
            .collect(),
        file_pages: (0..store.num_files())
            .map(|f| store.num_pages(FileId(f)).expect("file exists"))
            .collect(),
    };
    let json = serde_json::to_vec(&catalog).map_err(|e| corrupt(format!("catalog: {e}")))?;

    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&(json.len() as u64).to_le_bytes())
        .map_err(io_err)?;
    w.write_all(&json).map_err(io_err)?;
    for f in 0..store.num_files() {
        let n = store.num_pages(FileId(f)).expect("file exists");
        for p in 0..n {
            let page = store
                .read_page(PageId::new(FileId(f), p))
                .expect("page exists");
            w.write_all(&page).map_err(io_err)?;
        }
    }
    w.flush().map_err(io_err)?;
    Ok(())
}

/// Save a [`crate::RunReport`] as pretty-printed JSON at `path` — the
/// artifact format `scanshare metrics`/`explain` reload. Every report
/// field round-trips, including the conditional sections (`faults`,
/// `policy`) that only appear when a run actually used them.
pub fn save_report(report: &crate::RunReport, path: impl AsRef<Path>) -> Result<(), String> {
    let json = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
    std::fs::write(path.as_ref(), json)
        .map_err(|e| format!("cannot write {}: {e}", path.as_ref().display()))
}

/// Load a [`crate::RunReport`] previously written by [`save_report`]
/// (or by `scanshare run --report`). Artifacts predating a conditional
/// section simply leave it at its default.
pub fn load_report(path: impl AsRef<Path>) -> Result<crate::RunReport, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("cannot read {}: {e}", path.as_ref().display()))?;
    serde_json::from_str(&text)
        .map_err(|e| format!("invalid report {}: {e}", path.as_ref().display()))
}

/// Load a database previously written by [`save`].
pub fn load(path: impl AsRef<Path>) -> EngineResult<Database> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = BufReader::new(file);

    let mut magic = [0u8; 12];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(corrupt("not a scanshare database file (bad magic)"));
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len).map_err(io_err)?;
    let len = u64::from_le_bytes(len) as usize;
    if len > 1 << 30 {
        return Err(corrupt("catalog unreasonably large"));
    }
    let mut json = vec![0u8; len];
    r.read_exact(&mut json).map_err(io_err)?;
    let catalog: CatalogOnDisk =
        serde_json::from_slice(&json).map_err(|e| corrupt(format!("catalog: {e}")))?;

    let mut files = Vec::with_capacity(catalog.file_pages.len());
    for &n in &catalog.file_pages {
        let mut pages = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let mut buf = vec![0u8; PAGE_SIZE];
            r.read_exact(&mut buf).map_err(io_err)?;
            pages.push(Bytes::from(buf));
        }
        files.push(pages);
    }
    // Trailing garbage means the file is not what save() wrote.
    let mut extra = [0u8; 1];
    match r.read(&mut extra).map_err(io_err)? {
        0 => {}
        _ => return Err(corrupt("trailing bytes after page data")),
    }

    let volume_rows: Vec<(FileId, u32, u64)> = catalog
        .volume
        .iter()
        .map(|&(f, e, b)| (FileId(f), e, b))
        .collect();
    let volume = Volume::from_entries(catalog.extent_pages, &volume_rows);
    let store = FileStore::from_parts(volume, files)?;
    Ok(Database::from_parts(store, catalog.tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CpuClass, EngineConfig};
    use crate::query::{Access, AggSpec, Pred, Query, ScanSpec};
    use crate::workload::{run_workload, SharingMode, Stream, WorkloadSpec};
    use scanshare_relstore::{ColType, Column, Schema, Value};
    use scanshare_storage::SimDuration;

    fn build_db() -> Database {
        let mut db = Database::new(16);
        let schema = Schema::new(vec![
            Column::new("month", ColType::Int32),
            Column::new("amount", ColType::Float64),
        ]);
        db.create_mdc_table(
            "lineitem",
            schema.clone(),
            8,
            (0..30_000).map(|i| ((i % 6) as i64, vec![Value::I32(i % 6), Value::F64(1.5)])),
        )
        .unwrap();
        db.create_heap_table_with_index(
            "orders",
            schema,
            0,
            (0..10_000).map(|i| vec![Value::I32(i % 9), Value::F64(2.0)]),
        )
        .unwrap();
        db
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "scanshare_persist_{name}_{}.db",
            std::process::id()
        ))
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let db = build_db();
        let path = tmp("roundtrip");
        save(&db, &path).unwrap();
        let loaded = load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(db.table_names(), loaded.table_names());
        assert_eq!(db.total_table_pages(), loaded.total_table_pages());
        // Physical layout is identical page by page.
        let f = db.table("lineitem").unwrap().file();
        for p in [0u32, 7, 33] {
            let a = db.store().read_page(PageId::new(f, p)).unwrap();
            let b = loaded.store().read_page(PageId::new(f, p)).unwrap();
            assert_eq!(a, b);
            assert_eq!(
                db.store().physical(PageId::new(f, p)).unwrap(),
                loaded.store().physical(PageId::new(f, p)).unwrap()
            );
        }
        // The RID index survived.
        assert!(loaded.table("orders").unwrap().rid_index.is_some());
    }

    #[test]
    fn queries_on_a_reloaded_database_match() {
        let db = build_db();
        let path = tmp("queries");
        save(&db, &path).unwrap();
        let loaded = load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let q = Query::single(
            "sum",
            ScanSpec {
                table: "lineitem".into(),
                access: Access::IndexRange { lo: 1, hi: 4 },
                pred: Pred::True,
                agg: AggSpec::sums(vec![1]),
                cpu: CpuClass::io_bound(),
                require_order: false,
                query_priority: Default::default(),
                repeat: 1,
            },
        );
        let spec = WorkloadSpec {
            streams: vec![Stream {
                queries: vec![q],
                start_offset: SimDuration::ZERO,
            }],
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode: SharingMode::Base,
            faults: Default::default(),
            slo: Default::default(),
        };
        let a = run_workload(&db, &spec).unwrap();
        let b = run_workload(&loaded, &spec).unwrap();
        assert_eq!(a.queries[0].result, b.queries[0].result);
        assert_eq!(a.disk.pages_read, b.disk.pages_read);
        assert_eq!(a.disk.seeks, b.disk.seeks);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn report_artifacts_roundtrip_with_policy_stamp() {
        let db = build_db();
        let q = Query::single(
            "sum",
            ScanSpec {
                table: "lineitem".into(),
                access: Access::FullTable,
                pred: Pred::True,
                agg: AggSpec::sums(vec![1]),
                cpu: CpuClass::io_bound(),
                require_order: false,
                query_priority: Default::default(),
                repeat: 1,
            },
        );
        let spec = WorkloadSpec {
            streams: vec![Stream {
                queries: vec![q],
                start_offset: SimDuration::ZERO,
            }],
            pool_pages: 64,
            engine: EngineConfig::default(),
            mode: SharingMode::ScanSharing(scanshare::SharingConfig::with_policy(
                0,
                scanshare::SharingPolicyKind::Attach,
            )),
            faults: Default::default(),
            slo: Default::default(),
        };
        let report = run_workload(&db, &spec).unwrap();
        assert_eq!(report.policy, Some(scanshare::SharingPolicyKind::Attach));

        let path = tmp("report");
        save_report(&report, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"policy\""), "policy stamp missing: {text}");
        let back = load_report(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.policy, report.policy);
        assert_eq!(back.makespan, report.makespan);
        assert_eq!(back.queries[0].result, report.queries[0].result);
    }

    #[test]
    fn bad_files_are_rejected() {
        let path = tmp("bad");
        std::fs::write(&path, b"definitely not a database").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("magic") || err.to_string().contains("I/O"));
        std::fs::remove_file(&path).ok();

        // Truncated file.
        let db = build_db();
        let path = tmp("trunc");
        save(&db, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(load(&path).is_err());
        // Trailing garbage.
        let mut extended = full.clone();
        extended.push(0x55);
        std::fs::write(&path, &extended).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
