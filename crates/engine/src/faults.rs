//! Engine-side fault handling: retry budgets, backoff, timeouts, and the
//! per-run fault accounting surfaced in [`crate::metrics::RunReport`].
//!
//! The storage layer's [`FaultPlan`] decides *what goes wrong*; this
//! module decides *what the engine does about it*:
//!
//! * transient read errors are retried with doubling backoff up to
//!   `max_retries` times (the re-issued request re-rolls the plan's
//!   probability, so a transient region usually yields on retry),
//! * reads whose device service time exceeds `timeout_us` (an injected
//!   stall) are treated as lost and re-issued, duplicating the device
//!   work exactly like a kernel-level I/O timeout does,
//! * permanent errors — and transient ones that exhaust the retry
//!   budget — surface as [`scanshare_storage::StorageError::ReadFault`],
//!   which the scan executor converts into a clean per-scan abort plus
//!   group eviction instead of a run-wide failure.
//!
//! Everything here is pure data + counters; the retry loop itself lives
//! in [`crate::exec::ExecWorld`].

use scanshare_storage::{FaultInjector, FaultPlan, SimDuration};
use serde::{Deserialize, Serialize};

fn default_max_retries() -> u32 {
    4
}

fn default_backoff_us() -> u64 {
    500
}

fn default_timeout_us() -> u64 {
    200_000
}

/// The `faults` section of a workload spec: the storage-layer plan plus
/// the engine's retry/timeout policy. The default (empty plan) injects
/// nothing and leaves every run byte-identical to a build without fault
/// support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultsConfig {
    /// The seeded fault schedule handed to the storage layer.
    #[serde(default)]
    pub plan: FaultPlan,
    /// Retries granted per extent read before a transient fault is
    /// treated as fatal for the scan.
    #[serde(default = "default_max_retries")]
    pub max_retries: u32,
    /// First retry backoff in virtual µs; doubles per attempt.
    #[serde(default = "default_backoff_us")]
    pub backoff_us: u64,
    /// Device service time (µs) past which a read is declared lost and
    /// re-issued. Normal service is single-digit milliseconds, so only
    /// injected stalls trip this.
    #[serde(default = "default_timeout_us")]
    pub timeout_us: u64,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            plan: FaultPlan::default(),
            max_retries: default_max_retries(),
            backoff_us: default_backoff_us(),
            timeout_us: default_timeout_us(),
        }
    }
}

impl FaultsConfig {
    /// Whether this configuration injects nothing.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }
}

/// Per-run fault accounting, embedded in the run report (omitted from
/// serialization when nothing was injected, keeping fault-free artifacts
/// byte-identical to older ones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Transient read errors injected by the plan.
    pub transient_errors: u64,
    /// Permanent read errors injected by the plan.
    pub permanent_errors: u64,
    /// Latency spikes and stalls injected by the plan.
    pub delays_injected: u64,
    /// Total extra device service time injected.
    pub delay_total: SimDuration,
    /// Read requests re-issued after a transient error or timeout.
    pub retries: u64,
    /// Reads declared lost because their service exceeded the timeout.
    pub timeouts: u64,
    /// Virtual time scans spent in retry backoff.
    pub backoff_wait: SimDuration,
    /// Scans aborted on a permanent fault or an exhausted retry budget.
    pub scans_aborted: u64,
}

impl FaultSummary {
    /// Whether nothing fault-related happened this run.
    pub fn is_empty(&self) -> bool {
        *self == FaultSummary::default()
    }
}

/// One fault occurrence observed by the retry loop, queued for the scan
/// executor to attribute to its scan and report to the sharing manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Device the fault fired on.
    pub device: u32,
    /// Physical page address of the faulted request.
    pub addr: u64,
    /// Whether the fault was retryable.
    pub transient: bool,
    /// 1-based attempt number that hit the fault.
    pub attempt: u32,
}

/// Runtime fault state of one run: the storage injector, the retry
/// policy, engine-side counters, and the pending event queue the scan
/// executor drains after each fetch.
#[derive(Debug)]
pub struct FaultState {
    /// The storage-layer injector (owns the plan and its counters).
    pub injector: FaultInjector,
    /// Retry budget per extent read.
    pub max_retries: u32,
    /// First backoff; doubles per attempt.
    pub backoff: SimDuration,
    /// Service-time cutoff for declaring a read lost.
    pub timeout: SimDuration,
    /// Read requests re-issued.
    pub retries: u64,
    /// Reads declared lost to the timeout.
    pub timeouts: u64,
    /// Virtual time spent in retry backoff.
    pub backoff_wait: SimDuration,
    /// Scans aborted (maintained by the scan executor).
    pub scans_aborted: u64,
    /// Fault occurrences not yet attributed to a scan.
    pub pending: Vec<FaultEvent>,
}

impl FaultState {
    /// Build the runtime state for a configuration.
    pub fn new(cfg: &FaultsConfig) -> Self {
        FaultState {
            injector: FaultInjector::new(cfg.plan.clone()),
            max_retries: cfg.max_retries,
            backoff: SimDuration::from_micros(cfg.backoff_us),
            timeout: SimDuration::from_micros(cfg.timeout_us),
            retries: 0,
            timeouts: 0,
            backoff_wait: SimDuration::ZERO,
            scans_aborted: 0,
            pending: Vec::new(),
        }
    }

    /// The run's fault summary: storage-side injections plus engine-side
    /// retry accounting.
    pub fn summary(&self) -> FaultSummary {
        let s = self.injector.stats();
        FaultSummary {
            transient_errors: s.transient_errors,
            permanent_errors: s.permanent_errors,
            delays_injected: s.delays,
            delay_total: s.delay_total,
            retries: self.retries,
            timeouts: self.timeouts,
            backoff_wait: self.backoff_wait,
            scans_aborted: self.scans_aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_fill_in_from_bare_json() {
        let cfg: FaultsConfig = serde_json::from_str("{}").unwrap();
        assert!(cfg.is_empty());
        assert_eq!(cfg.max_retries, 4);
        assert_eq!(cfg.backoff_us, 500);
        assert_eq!(cfg.timeout_us, 200_000);
        assert_eq!(cfg, FaultsConfig::default());
    }

    #[test]
    fn config_round_trips_with_a_plan() {
        let json = r#"{
            "plan": {
                "seed": 11,
                "rules": [
                    {"fault": {"TransientError": {"probability": 0.01}}}
                ]
            },
            "max_retries": 2
        }"#;
        let cfg: FaultsConfig = serde_json::from_str(json).unwrap();
        assert!(!cfg.is_empty());
        assert_eq!(cfg.plan.seed, 11);
        assert_eq!(cfg.max_retries, 2);
        let back: FaultsConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn empty_summary_is_skippable() {
        assert!(FaultSummary::default().is_empty());
        let s = FaultSummary {
            retries: 1,
            ..FaultSummary::default()
        };
        assert!(!s.is_empty());
    }

    #[test]
    fn summary_merges_injector_and_engine_counters() {
        use scanshare_storage::{FaultKind, FaultRule, SimTime};
        let cfg = FaultsConfig {
            plan: FaultPlan {
                seed: 0,
                rules: vec![FaultRule {
                    device: None,
                    pages: None,
                    from_us: 0,
                    until_us: None,
                    fault: FaultKind::PermanentError,
                }],
            },
            ..FaultsConfig::default()
        };
        let mut st = FaultState::new(&cfg);
        st.injector.check(SimTime::ZERO, 0, 0);
        st.retries = 3;
        st.backoff_wait = SimDuration::from_micros(1_500);
        let s = st.summary();
        assert_eq!(s.permanent_errors, 1);
        assert_eq!(s.retries, 3);
        assert_eq!(s.backoff_wait, SimDuration::from_micros(1_500));
    }
}
