//! End-to-end micro workload through the whole stack (generator →
//! executor → disk model), base vs scan-sharing: the host-time cost of
//! simulating one overlapping 3-scan workload.

use scanshare::SharingConfig;
use scanshare_bench::micro::bench;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_storage::SimDuration;
use scanshare_tpch::{generate, q6, staggered_workload, TpchConfig};
use std::hint::black_box;

fn main() {
    let cfg = TpchConfig::tiny();
    let db = generate(&cfg);
    let q = q6(cfg.months as i64, 1);
    for (name, mode) in [
        ("base", SharingMode::Base),
        ("ss", SharingMode::ScanSharing(SharingConfig::new(0))),
    ] {
        let spec = staggered_workload(&db, &q, 3, SimDuration::from_millis(50), mode);
        bench(&format!("staggered_q6_sim/{name}"), || {
            black_box(run_workload(&db, &spec).unwrap());
        });
    }

    bench("tpch_generate/tiny", || {
        black_box(generate(&cfg));
    });
}
