//! End-to-end micro workload through the whole stack (generator →
//! executor → disk model), base vs scan-sharing: the host-time cost of
//! simulating one overlapping 3-scan workload — plus the headline
//! simulator-throughput figure (simulated pages per wall-clock second)
//! on the same pinned smoke workload the CI perf gate runs.

use scanshare::SharingConfig;
use scanshare_bench::micro::bench;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_storage::SimDuration;
use scanshare_tpch::{generate, q6, staggered_workload, throughput_workload, TpchConfig};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let cfg = TpchConfig::tiny();
    let db = generate(&cfg);
    let q = q6(cfg.months as i64, 1);
    for (name, mode) in [
        ("base", SharingMode::Base),
        ("ss", SharingMode::ScanSharing(SharingConfig::new(0))),
    ] {
        let spec = staggered_workload(&db, &q, 3, SimDuration::from_millis(50), mode);
        bench(&format!("staggered_q6_sim/{name}"), || {
            black_box(run_workload(&db, &spec).unwrap());
        });
    }

    // The pinned smoke workload (bench_gate's): host time per run and
    // the derived simulated-pages-per-wall-second throughput. "Pages"
    // are buffer-pool fixes — every page visit a scan pays for.
    let months = cfg.months as i64;
    for (name, mode) in [
        ("base", SharingMode::Base),
        ("ss", SharingMode::ScanSharing(SharingConfig::new(0))),
    ] {
        let spec = throughput_workload(&db, 3, months, cfg.seed, mode);
        bench(&format!("smoke_sim/{name}"), || {
            black_box(run_workload(&db, &spec).unwrap());
        });
        // Explicit throughput figure: average over a fixed batch.
        let runs = 20;
        let t0 = Instant::now();
        let mut pages = 0u64;
        for _ in 0..runs {
            let r = run_workload(&db, &spec).unwrap();
            pages += r.pool.logical_reads;
        }
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "smoke_sim/{name:<26} {:>12.0} simulated pages / wall second",
            pages as f64 / wall
        );
    }

    // fetch_extent delivery micro: a 4-consumer group scanning the same
    // key range, pull vs push. Pull has every consumer fix its own copy
    // of each page (~4 fixes/page); push has one group driver fix each
    // page once and hand a borrowed view to all four row pipelines
    // (~1 fix/page). The push run's own summary supplies the group's
    // distinct page count, which prices the pull run's fixes exactly —
    // both runs are deterministic replays of the same workload.
    let mut push_cfg = SharingConfig::new(0);
    push_cfg.delivery = scanshare::DeliveryMode::Push;
    let group = |mode: SharingMode| staggered_workload(&db, &q, 4, SimDuration::ZERO, mode);
    let push_spec = group(SharingMode::ScanSharing(push_cfg.clone()));
    let push_report = run_workload(&db, &push_spec).unwrap();
    let ps = push_report.push.as_ref().expect("push summary");
    let group_pages = ps.pages_delivered.max(1);
    for (name, mode) in [
        ("pull", SharingMode::ScanSharing(SharingConfig::new(0))),
        ("push", SharingMode::ScanSharing(push_cfg)),
    ] {
        let spec = group(mode);
        bench(&format!("group4_fetch_extent/{name}"), || {
            black_box(run_workload(&db, &spec).unwrap());
        });
        let r = run_workload(&db, &spec).unwrap();
        let fixes_per_page = match &r.push {
            Some(s) => s.fixes_per_page(),
            None => r.pool.logical_reads as f64 / group_pages as f64,
        };
        println!(
            "group4_fetch_extent/{name:<21} {fixes_per_page:>12.3} pool fixes / distinct page \
             ({} fixes over {group_pages} pages)",
            r.pool.logical_reads
        );
    }

    bench("tpch_generate/tiny", || {
        black_box(generate(&cfg));
    });
}
