//! End-to-end micro workload through the whole stack (generator →
//! executor → disk model), base vs scan-sharing: the host-time cost of
//! simulating one overlapping 3-scan workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scanshare::SharingConfig;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_storage::SimDuration;
use scanshare_tpch::{generate, q6, staggered_workload, TpchConfig};
use std::hint::black_box;

fn bench_tiny_workload(c: &mut Criterion) {
    let cfg = TpchConfig::tiny();
    let db = generate(&cfg);
    let q = q6(cfg.months as i64, 1);
    let mut g = c.benchmark_group("staggered_q6_sim");
    g.sample_size(20);
    for (name, mode) in [
        ("base", SharingMode::Base),
        ("ss", SharingMode::ScanSharing(SharingConfig::new(0))),
    ] {
        let spec = staggered_workload(&db, &q, 3, SimDuration::from_millis(50), mode);
        g.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| black_box(run_workload(&db, spec).unwrap()))
        });
    }
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpch_generate");
    g.sample_size(10);
    let cfg = TpchConfig::tiny();
    g.bench_function("tiny", |b| b.iter(|| black_box(generate(&cfg))));
    g.finish();
}

criterion_group!(benches, bench_tiny_workload, bench_generation);
criterion_main!(benches);
