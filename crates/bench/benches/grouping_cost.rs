//! Cost of the Figure 14 grouping pass, which the manager re-runs on
//! every location update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scanshare::grouping::find_leaders_trailers;
use scanshare::anchor::AnchorId;
use scanshare::ScanId;
use std::hint::black_box;

fn scans(n: usize, anchors: u64) -> Vec<(ScanId, AnchorId, i64)> {
    (0..n)
        .map(|i| {
            (
                ScanId(i as u64),
                AnchorId(i as u64 % anchors),
                ((i as i64 * 7919) % 100_000).abs(),
            )
        })
        .collect()
}

fn bench_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("find_leaders_trailers");
    for &n in &[2usize, 8, 32, 128] {
        let s = scans(n, 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| {
            b.iter(|| black_box(find_leaders_trailers(s, 10_000)))
        });
    }
    g.finish();
}

fn bench_grouping_one_anchor(c: &mut Criterion) {
    let s = scans(64, 1);
    c.bench_function("find_leaders_trailers_single_chain_64", |b| {
        b.iter(|| black_box(find_leaders_trailers(&s, 50_000)))
    });
}

criterion_group!(benches, bench_grouping, bench_grouping_one_anchor);
criterion_main!(benches);
