//! Cost of the Figure 14 grouping pass, which the manager re-runs on
//! every location update.

use scanshare::anchor::AnchorId;
use scanshare::grouping::find_leaders_trailers;
use scanshare::ScanId;
use scanshare_bench::micro::bench;
use std::hint::black_box;

fn scans(n: usize, anchors: u64) -> Vec<(ScanId, AnchorId, i64)> {
    (0..n)
        .map(|i| {
            (
                ScanId(i as u64),
                AnchorId(i as u64 % anchors),
                ((i as i64 * 7919) % 100_000).abs(),
            )
        })
        .collect()
}

fn main() {
    for &n in &[2usize, 8, 32, 128] {
        let s = scans(n, 4);
        bench(&format!("find_leaders_trailers/{n}"), || {
            black_box(find_leaders_trailers(&s, 10_000));
        });
    }

    let s = scans(64, 1);
    bench("find_leaders_trailers_single_chain_64", || {
        black_box(find_leaders_trailers(&s, 50_000));
    });
}
