//! B+ tree build, lookup and range-scan throughput — the substrate the
//! block index scans traverse.

use scanshare_bench::micro::bench;
use scanshare_relstore::{BTree, Entry};
use scanshare_storage::FileStore;
use std::hint::black_box;

fn sorted_entries(n: usize) -> Vec<Entry> {
    (0..n as i64).map(|k| Entry::new(k / 8, k as u64)).collect()
}

fn main() {
    for &n in &[1_000usize, 10_000, 100_000] {
        let entries = sorted_entries(n);
        bench(&format!("btree_bulk_load/{n}"), || {
            let mut store = FileStore::new(16);
            black_box(BTree::bulk_load(&mut store, &entries).unwrap());
        });
    }

    {
        let mut store = FileStore::new(16);
        let mut tree = BTree::create(&mut store).unwrap();
        let mut i = 0u64;
        bench("btree_insert_scrambled", || {
            i += 1;
            let k = ((i * 2654435761) % 1_000_000) as i64;
            tree.insert(&mut store, Entry::new(k, i)).unwrap();
        });
    }

    let mut store = FileStore::new(16);
    let tree = BTree::bulk_load(&mut store, &sorted_entries(100_000)).unwrap();
    for &span in &[10i64, 1_000] {
        let mut lo = 0i64;
        bench(&format!("btree_range/{span}"), || {
            lo = (lo + 37) % 10_000;
            black_box(tree.range(&store, lo, lo + span).unwrap());
        });
    }
}
