//! B+ tree build, lookup and range-scan throughput — the substrate the
//! block index scans traverse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scanshare_relstore::{BTree, Entry};
use scanshare_storage::FileStore;
use std::hint::black_box;

fn sorted_entries(n: usize) -> Vec<Entry> {
    (0..n as i64).map(|k| Entry::new(k / 8, k as u64)).collect()
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree_bulk_load");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        let entries = sorted_entries(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &entries, |b, entries| {
            b.iter(|| {
                let mut store = FileStore::new(16);
                black_box(BTree::bulk_load(&mut store, entries).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("btree_insert_scrambled", |b| {
        let mut store = FileStore::new(16);
        let mut tree = BTree::create(&mut store).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let k = ((i * 2654435761) % 1_000_000) as i64;
            tree.insert(&mut store, Entry::new(k, i)).unwrap();
        })
    });
}

fn bench_range(c: &mut Criterion) {
    let mut store = FileStore::new(16);
    let tree = BTree::bulk_load(&mut store, &sorted_entries(100_000)).unwrap();
    let mut g = c.benchmark_group("btree_range");
    for &span in &[10i64, 1_000] {
        g.bench_with_input(BenchmarkId::from_parameter(span), &span, |b, &span| {
            let mut lo = 0i64;
            b.iter(|| {
                lo = (lo + 37) % 10_000;
                black_box(tree.range(&store, lo, lo + span).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bulk_load, bench_insert, bench_range);
criterion_main!(benches);
