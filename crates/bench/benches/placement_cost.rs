//! Cost of the two placement algorithms vs. the number of ongoing scans:
//! the paper bounds the optimal "interesting locations" search at
//! O(|S|³) and the practical anchor-group variant at O(|S|²).

use scanshare::placement::{best_start_optimal, best_start_practical, calculate_reads, Trace};
use scanshare_bench::micro::bench;
use std::hint::black_box;

fn members(n: usize) -> Vec<Trace> {
    (0..n)
        .map(|i| {
            let pos = (i as f64 * 137.0) % 5000.0;
            let speed = 50.0 + (i as f64 * 17.0) % 300.0;
            Trace::new(pos, speed, pos + 2000.0)
        })
        .collect()
}

fn main() {
    for &n in &[1usize, 4, 16, 64] {
        let m = members(n);
        bench(&format!("calculate_reads/{n}"), || {
            black_box(calculate_reads(&m, Trace::new(100.0, 100.0, 2100.0), 500.0));
        });
    }

    for &n in &[1usize, 4, 16, 64] {
        let m = members(n);
        bench(&format!("best_start_practical/{n}"), || {
            black_box(best_start_practical(&m, 100.0, 2000.0, 500.0));
        });
    }

    for &n in &[1usize, 4, 16, 32] {
        let m = members(n);
        bench(&format!("best_start_optimal/{n}"), || {
            black_box(best_start_optimal(&m, 100.0, 2000.0, 500.0, (0.0, 5000.0)));
        });
    }
}
