//! Cost of the two placement algorithms vs. the number of ongoing scans:
//! the paper bounds the optimal "interesting locations" search at
//! O(|S|³) and the practical anchor-group variant at O(|S|²).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scanshare::placement::{best_start_optimal, best_start_practical, calculate_reads, Trace};
use std::hint::black_box;

fn members(n: usize) -> Vec<Trace> {
    (0..n)
        .map(|i| {
            let pos = (i as f64 * 137.0) % 5000.0;
            let speed = 50.0 + (i as f64 * 17.0) % 300.0;
            Trace::new(pos, speed, pos + 2000.0)
        })
        .collect()
}

fn bench_calculate_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("calculate_reads");
    for &n in &[1usize, 4, 16, 64] {
        let m = members(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                black_box(calculate_reads(
                    m,
                    Trace::new(100.0, 100.0, 2100.0),
                    500.0,
                ))
            })
        });
    }
    g.finish();
}

fn bench_practical(c: &mut Criterion) {
    let mut g = c.benchmark_group("best_start_practical");
    for &n in &[1usize, 4, 16, 64] {
        let m = members(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(best_start_practical(m, 100.0, 2000.0, 500.0)))
        });
    }
    g.finish();
}

fn bench_optimal(c: &mut Criterion) {
    let mut g = c.benchmark_group("best_start_optimal");
    g.sample_size(20);
    for &n in &[1usize, 4, 16, 32] {
        let m = members(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                black_box(best_start_optimal(
                    m,
                    100.0,
                    2000.0,
                    500.0,
                    (0.0, 5000.0),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_calculate_reads, bench_practical, bench_optimal);
criterion_main!(benches);
