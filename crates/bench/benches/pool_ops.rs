//! Buffer pool fix/release throughput under every replacement policy.
//! The priority-aware policy must not cost measurably more than LRU —
//! the paper's whole approach assumes the caching system stays cheap.
//!
//! Besides the historical mixed workload, the pool's three distinct hot
//! paths are benchmarked separately so a regression in any one of them
//! is visible in isolation:
//!
//! * **hit path** — fix/release cycling over resident pages (no
//!   eviction, no priority change),
//! * **evict path** — every fix misses against a full pool, forcing a
//!   victim selection and a frame recycle,
//! * **reprioritize path** — hits whose release flips the priority
//!   class (the leader/trailer re-prioritizations of §7.3).

use scanshare_bench::micro::bench;
use scanshare_storage::{
    page::zeroed_page, BufferPool, FileId, FixOutcome, PageId, PagePriority, PoolConfig,
    ReplacementPolicy,
};
use std::hint::black_box;

const POLICIES: [ReplacementPolicy; 3] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::PriorityLru,
    ReplacementPolicy::Lru2,
];

fn run_mixed(pool: &mut BufferPool, buf: &scanshare_storage::PageBuf, i: u64) {
    // 3:1 hot/cold mix over a working set twice the pool size.
    let page = if i.is_multiple_of(4) {
        (i * 2654435761) % 2048
    } else {
        i % 512
    } as u32;
    let id = PageId::new(FileId(0), page);
    match pool.fix(id) {
        FixOutcome::Hit(_) => {}
        FixOutcome::Miss => pool.complete_miss(id, buf.clone()).unwrap(),
    }
    let prio = match i % 3 {
        0 => PagePriority::Low,
        1 => PagePriority::Normal,
        _ => PagePriority::High,
    };
    pool.release(id, prio).unwrap();
}

/// Fill `pool` with pages `0..n`, all unpinned at Normal priority.
fn preload(pool: &mut BufferPool, buf: &scanshare_storage::PageBuf, n: u32) {
    for p in 0..n {
        let id = PageId::new(FileId(0), p);
        match pool.fix(id) {
            FixOutcome::Hit(_) => {}
            FixOutcome::Miss => pool.complete_miss(id, buf.clone()).unwrap(),
        }
        pool.release(id, PagePriority::Normal).unwrap();
    }
}

fn main() {
    let buf = zeroed_page().freeze();

    for policy in POLICIES {
        let mut pool = BufferPool::new(PoolConfig::new(1024, policy));
        let mut i = 0u64;
        bench(&format!("pool_fix_release/{policy:?}"), || {
            i += 1;
            run_mixed(&mut pool, &buf, i);
            black_box(pool.len());
        });
    }

    // Hit path: every fix lands on a resident page.
    for policy in POLICIES {
        let mut pool = BufferPool::new(PoolConfig::new(1024, policy));
        preload(&mut pool, &buf, 512);
        let mut i = 0u64;
        bench(&format!("pool_hit_path/{policy:?}"), || {
            i += 1;
            let id = PageId::new(FileId(0), (i % 512) as u32);
            let out = pool.fix(id);
            black_box(&out);
            pool.release(id, PagePriority::Normal).unwrap();
        });
    }

    // Evict path: every fix misses against a full pool, so each
    // iteration selects a victim and recycles its frame.
    for policy in POLICIES {
        let mut pool = BufferPool::new(PoolConfig::new(1024, policy));
        preload(&mut pool, &buf, 1024);
        let mut i = 0u64;
        bench(&format!("pool_evict_path/{policy:?}"), || {
            i += 1;
            let id = PageId::new(FileId(0), 1024 + (i % (1 << 20)) as u32);
            assert!(matches!(pool.fix(id), FixOutcome::Miss));
            pool.complete_miss(id, buf.clone()).unwrap();
            pool.release(id, PagePriority::Normal).unwrap();
            black_box(pool.len());
        });
    }

    // Reprioritize path: hits whose release flips the priority class —
    // the leader/trailer handoff, and the path the old BTreeSet-keyed
    // pool paid a remove+insert for.
    for policy in POLICIES {
        let mut pool = BufferPool::new(PoolConfig::new(1024, policy));
        preload(&mut pool, &buf, 512);
        let mut i = 0u64;
        bench(&format!("pool_reprioritize_path/{policy:?}"), || {
            i += 1;
            let id = PageId::new(FileId(0), (i % 512) as u32);
            let out = pool.fix(id);
            black_box(&out);
            let prio = if i.is_multiple_of(2) {
                PagePriority::Low
            } else {
                PagePriority::High
            };
            pool.release(id, prio).unwrap();
        });
    }

    let mut pool = BufferPool::new(PoolConfig::new(64, ReplacementPolicy::PriorityLru));
    let id = PageId::new(FileId(0), 7);
    match pool.fix(id) {
        FixOutcome::Hit(_) => {}
        FixOutcome::Miss => pool.complete_miss(id, buf).unwrap(),
    }
    pool.release(id, PagePriority::Normal).unwrap();
    bench("pool_hot_hit", || {
        let out = pool.fix(id);
        black_box(&out);
        pool.release(id, PagePriority::High).unwrap();
    });
}
