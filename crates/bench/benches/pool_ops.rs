//! Buffer pool fix/release throughput under both replacement policies.
//! The priority-aware policy must not cost measurably more than LRU —
//! the paper's whole approach assumes the caching system stays cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scanshare_storage::{
    page::zeroed_page, BufferPool, FileId, FixOutcome, PageId, PagePriority, PoolConfig,
    ReplacementPolicy,
};
use std::hint::black_box;

fn run_mixed(pool: &mut BufferPool, buf: &scanshare_storage::PageBuf, i: u64) {
    // 3:1 hot/cold mix over a working set twice the pool size.
    let page = if i.is_multiple_of(4) {
        (i * 2654435761) % 2048
    } else {
        i % 512
    } as u32;
    let id = PageId::new(FileId(0), page);
    match pool.fix(id) {
        FixOutcome::Hit(_) => {}
        FixOutcome::Miss => pool.complete_miss(id, buf.clone()).unwrap(),
    }
    let prio = match i % 3 {
        0 => PagePriority::Low,
        1 => PagePriority::Normal,
        _ => PagePriority::High,
    };
    pool.release(id, prio).unwrap();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_fix_release");
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::PriorityLru] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let mut pool = BufferPool::new(PoolConfig::new(1024, policy));
                let buf = zeroed_page().freeze();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    run_mixed(&mut pool, &buf, i);
                    black_box(pool.len())
                });
            },
        );
    }
    g.finish();
}

fn bench_hit_path(c: &mut Criterion) {
    let mut pool = BufferPool::new(PoolConfig::new(64, ReplacementPolicy::PriorityLru));
    let buf = zeroed_page().freeze();
    let id = PageId::new(FileId(0), 7);
    match pool.fix(id) {
        FixOutcome::Hit(_) => {}
        FixOutcome::Miss => pool.complete_miss(id, buf).unwrap(),
    }
    pool.release(id, PagePriority::Normal).unwrap();
    c.bench_function("pool_hot_hit", |b| {
        b.iter(|| {
            let out = pool.fix(id);
            black_box(&out);
            pool.release(id, PagePriority::High).unwrap();
        })
    });
}

criterion_group!(benches, bench_policies, bench_hit_path);
criterion_main!(benches);
