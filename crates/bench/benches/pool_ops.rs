//! Buffer pool fix/release throughput under both replacement policies.
//! The priority-aware policy must not cost measurably more than LRU —
//! the paper's whole approach assumes the caching system stays cheap.

use scanshare_bench::micro::bench;
use scanshare_storage::{
    page::zeroed_page, BufferPool, FileId, FixOutcome, PageId, PagePriority, PoolConfig,
    ReplacementPolicy,
};
use std::hint::black_box;

fn run_mixed(pool: &mut BufferPool, buf: &scanshare_storage::PageBuf, i: u64) {
    // 3:1 hot/cold mix over a working set twice the pool size.
    let page = if i.is_multiple_of(4) {
        (i * 2654435761) % 2048
    } else {
        i % 512
    } as u32;
    let id = PageId::new(FileId(0), page);
    match pool.fix(id) {
        FixOutcome::Hit(_) => {}
        FixOutcome::Miss => pool.complete_miss(id, buf.clone()).unwrap(),
    }
    let prio = match i % 3 {
        0 => PagePriority::Low,
        1 => PagePriority::Normal,
        _ => PagePriority::High,
    };
    pool.release(id, prio).unwrap();
}

fn main() {
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::PriorityLru] {
        let mut pool = BufferPool::new(PoolConfig::new(1024, policy));
        let buf = zeroed_page().freeze();
        let mut i = 0u64;
        bench(&format!("pool_fix_release/{policy:?}"), || {
            i += 1;
            run_mixed(&mut pool, &buf, i);
            black_box(pool.len());
        });
    }

    let mut pool = BufferPool::new(PoolConfig::new(64, ReplacementPolicy::PriorityLru));
    let buf = zeroed_page().freeze();
    let id = PageId::new(FileId(0), 7);
    match pool.fix(id) {
        FixOutcome::Hit(_) => {}
        FixOutcome::Miss => pool.complete_miss(id, buf).unwrap(),
    }
    pool.release(id, PagePriority::Normal).unwrap();
    bench("pool_hot_hit", || {
        let out = pool.fix(id);
        black_box(&out);
        pool.release(id, PagePriority::High).unwrap();
    });
}
