//! Host-time cost of the sharing manager's calls — the paper's "well
//! below 1% of end-to-end time" claim depends on `startSISCAN`,
//! `updateSISCANLocation`, `pr()` and `endSISCAN` being cheap even with
//! many concurrent scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scanshare::{Location, ObjectId, ScanDesc, ScanId, ScanKind, ScanSharingManager, SharingConfig};
use scanshare_storage::{SimDuration, SimTime};
use std::hint::black_box;

fn desc(object: u64, lo: i64, hi: i64) -> ScanDesc {
    ScanDesc {
        kind: ScanKind::Index,
        object: ObjectId(object),
        start_key: lo,
        end_key: hi,
        est_pages: 10_000,
        est_time: SimDuration::from_secs(10),
        priority: Default::default(),
    }
}

/// A manager preloaded with `n` ongoing scans spread over 4 objects.
fn manager_with_scans(n: usize) -> (ScanSharingManager, Vec<ScanId>) {
    let mgr = ScanSharingManager::new(SharingConfig::new(100_000));
    let mut ids = Vec::new();
    for i in 0..n {
        let (id, _) = mgr.start_scan(desc((i % 4) as u64, 0, 1000), SimTime::ZERO);
        let t = SimTime::from_millis(10 * (i as u64 + 1));
        mgr.update_location(
            id,
            t,
            Location::new((i as i64 * 37) % 1000, i as u64 * 131),
            64,
        );
        ids.push(id);
    }
    (mgr, ids)
}

fn bench_update_location(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_location");
    for &n in &[1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (mgr, ids) = manager_with_scans(n);
            let mut t = 1_000_000u64;
            let mut pos = 0u64;
            b.iter(|| {
                t += 1000;
                pos += 16;
                black_box(mgr.update_location(
                    ids[0],
                    SimTime::from_micros(t),
                    Location::new((pos % 1000) as i64, pos),
                    16,
                ))
            });
        });
    }
    g.finish();
}

fn bench_start_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("start_end_scan");
    for &n in &[1usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (mgr, _) = manager_with_scans(n);
            b.iter(|| {
                let (id, d) = mgr.start_scan(desc(0, 0, 1000), SimTime::from_secs(1));
                black_box(&d);
                mgr.end_scan(id, SimTime::from_secs(1));
            });
        });
    }
    g.finish();
}

fn bench_page_priority(c: &mut Criterion) {
    let (mgr, ids) = manager_with_scans(16);
    c.bench_function("pr()", |b| b.iter(|| black_box(mgr.page_priority(ids[7]))));
}

criterion_group!(benches, bench_update_location, bench_start_end, bench_page_priority);
criterion_main!(benches);
