//! Host-time cost of the sharing manager's calls — the paper's "well
//! below 1% of end-to-end time" claim depends on `startSISCAN`,
//! `updateSISCANLocation`, `pr()` and `endSISCAN` being cheap even with
//! many concurrent scans.

use scanshare::{
    Location, ObjectId, ScanDesc, ScanId, ScanKind, ScanSharingManager, SharingConfig,
};
use scanshare_bench::micro::bench;
use scanshare_storage::{SimDuration, SimTime};
use std::hint::black_box;

fn desc(object: u64, lo: i64, hi: i64) -> ScanDesc {
    ScanDesc {
        kind: ScanKind::Index,
        object: ObjectId(object),
        start_key: lo,
        end_key: hi,
        est_pages: 10_000,
        est_time: SimDuration::from_secs(10),
        priority: Default::default(),
    }
}

/// A manager preloaded with `n` ongoing scans spread over 4 objects.
fn manager_with_scans(n: usize) -> (ScanSharingManager, Vec<ScanId>) {
    let mgr = ScanSharingManager::new(SharingConfig::new(100_000));
    let mut ids = Vec::new();
    for i in 0..n {
        let (id, _) = mgr.start_scan(desc((i % 4) as u64, 0, 1000), SimTime::ZERO);
        let t = SimTime::from_millis(10 * (i as u64 + 1));
        mgr.update_location(
            id,
            t,
            Location::new((i as i64 * 37) % 1000, i as u64 * 131),
            64,
        );
        ids.push(id);
    }
    (mgr, ids)
}

fn main() {
    for &n in &[1usize, 4, 16, 64] {
        let (mgr, ids) = manager_with_scans(n);
        let mut t = 1_000_000u64;
        let mut pos = 0u64;
        bench(&format!("update_location/{n}"), || {
            t += 1000;
            pos += 16;
            black_box(mgr.update_location(
                ids[0],
                SimTime::from_micros(t),
                Location::new((pos % 1000) as i64, pos),
                16,
            ));
        });
    }

    for &n in &[1usize, 16, 64] {
        let (mgr, _) = manager_with_scans(n);
        bench(&format!("start_end_scan/{n}"), || {
            let (id, d) = mgr.start_scan(desc(0, 0, 1000), SimTime::from_secs(1));
            black_box(&d);
            mgr.end_scan(id, SimTime::from_secs(1));
        });
    }

    let (mgr, ids) = manager_with_scans(16);
    bench("pr()", || {
        black_box(mgr.page_priority(ids[7]));
    });
}
