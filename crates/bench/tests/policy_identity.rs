//! Byte-identity property of the default sharing policy.
//!
//! The `SharingPolicy` refactor moved the grouping+throttling machinery
//! behind a trait. That refactor must be a pure re-plumbing: a run under
//! `--policy grouping` (the default) has to produce a `RunReport` that
//! serializes to the *same bytes* as the pre-refactor code produced.
//! The committed artifact `results/policy_grouping_smoke_report.json`
//! was generated from the pre-refactor tree on the pinned smoke workload
//! (the same one `bench_gate` runs); this test replays the workload and
//! compares the full serialized report byte-for-byte.
//!
//! To regenerate the artifact (only after an *intentional* report
//! change, never to paper over a policy-refactor drift):
//!
//! ```sh
//! SCANSHARE_WRITE_POLICY_BASELINE=1 cargo test -p scanshare-bench --test policy_identity
//! ```

use scanshare::SharingConfig;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_tpch::{generate, throughput_workload, TpchConfig};

const ARTIFACT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/policy_grouping_smoke_report.json"
);

/// The pinned smoke workload: identical to `bench_gate`'s scan-sharing
/// leg (tiny scale, fixed seed, 3 streams) so its report is bit-stable
/// across machines.
fn smoke_report_json() -> String {
    let cfg = TpchConfig::tiny();
    let db = generate(&cfg);
    let spec = throughput_workload(
        &db,
        3,
        cfg.months as i64,
        cfg.seed,
        SharingMode::ScanSharing(SharingConfig::new(0)),
    );
    let report = run_workload(&db, &spec).expect("smoke run");
    serde_json::to_string(&report).expect("serialize report")
}

#[test]
fn grouping_policy_report_is_byte_identical_to_pre_refactor_baseline() {
    let current = smoke_report_json();
    if std::env::var("SCANSHARE_WRITE_POLICY_BASELINE").is_ok() {
        std::fs::write(ARTIFACT, &current).expect("write baseline artifact");
        eprintln!("wrote {ARTIFACT} ({} bytes)", current.len());
        return;
    }
    let baseline = std::fs::read_to_string(ARTIFACT).unwrap_or_else(|e| {
        panic!("cannot read {ARTIFACT}: {e} — regenerate with SCANSHARE_WRITE_POLICY_BASELINE=1")
    });
    assert_eq!(
        baseline.len(),
        current.len(),
        "report length drifted from the pre-refactor baseline"
    );
    assert!(
        baseline == current,
        "default-policy report is no longer byte-identical to the pre-refactor baseline"
    );
}
