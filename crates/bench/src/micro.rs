//! A tiny self-calibrating micro-benchmark harness, replacing the
//! external `criterion` dev-dependency (unresolvable offline).
//!
//! Each measurement warms the closure up, picks an iteration count that
//! makes one sample take a few milliseconds of host time, runs several
//! samples, and reports the median (host) nanoseconds per iteration —
//! enough fidelity to spot the order-of-magnitude regressions these
//! benches exist to catch. Benchmarks run with `cargo bench --offline`;
//! pass a substring as the first CLI argument to filter by name.

use std::time::Instant;

/// Target host time for one sample.
const SAMPLE_TARGET_NS: u128 = 5_000_000;
/// Samples per benchmark.
const SAMPLES: usize = 7;

/// Run one benchmark: report median ns/iteration of `f` under `name`.
///
/// Respects a substring filter given as the process's first argument, so
/// `cargo bench --bench pool_ops -- hot_hit` runs only matching benches.
pub fn bench<F: FnMut()>(name: &str, mut f: F) {
    if let Some(filter) = std::env::args().nth(1) {
        if !filter.starts_with('-') && !name.contains(&filter) {
            return;
        }
    }

    // Warm-up and calibration: run until we have a per-iter estimate.
    let mut warm_iters = 1u64;
    let per_iter_ns = loop {
        let t0 = Instant::now();
        for _ in 0..warm_iters {
            f();
        }
        let dt = t0.elapsed().as_nanos();
        if dt > 1_000_000 || warm_iters >= 1 << 20 {
            break (dt / warm_iters as u128).max(1);
        }
        warm_iters *= 2;
    };
    let iters = ((SAMPLE_TARGET_NS / per_iter_ns) as u64).clamp(1, 10_000_000);

    let mut samples: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() / iters as u128
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name:<44} {:>12}   [{} .. {}]  ({iters} iters/sample)",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi),
    );
}

/// Run a benchmark over a sequence of parameterized cases, labelling
/// each as `group/param`.
pub fn bench_cases<P: std::fmt::Display, F: FnMut(&P)>(group: &str, params: &[P], mut f: F) {
    for p in params {
        bench(&format!("{group}/{p}"), || f(p));
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 10_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}
