//! Append-only run-history ledger (`results/history.jsonl`).
//!
//! Every perf number this repo produced before this module was a
//! single-shot snapshot: `bench_gate` diffs one run against one
//! committed baseline and the wall section holds one unreplicated
//! measurement. The ledger turns those snapshots into a trajectory —
//! one JSON line per run, carrying provenance (git SHA, timestamp,
//! producing binary), the run's configuration (jobs, policy, fault
//! plan), the bit-identical virtual-clock metrics, and a replicated
//! wall section summarized by [`crate::stats::ReplicateStats`].
//!
//! The file format is JSONL on purpose: appends are atomic enough for
//! a single writer, partial tools (`grep`, `jq`, `tail`) work on it
//! directly, and a corrupt line is diagnosed with its line number
//! instead of poisoning the whole file. `scanshare history` renders a
//! ledger as per-metric trend tables; `bench_gate --history` appends
//! to one and runs the trailing-window change-point check against it.

use serde::{Deserialize, Serialize};
use std::io::Write as _;

use crate::stats::ReplicateStats;

/// One named virtual-clock measurement in a ledger entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name (same names as the gate baseline).
    pub name: String,
    /// Measured value — exact, because virtual-clock metrics are
    /// bit-identical across reps and machines.
    pub value: f64,
}

/// The replicated wall-clock section of an entry. Unlike the virtual
/// metrics these are host noise, so they are stored as robust summaries
/// over `reps` repetitions rather than as single points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallStats {
    /// How many times the workload was repeated.
    pub reps: u64,
    /// Worker threads each repetition ran on.
    pub jobs: u64,
    /// Wall milliseconds per repetition (median/MAD/bootstrap CI).
    pub wall_ms: ReplicateStats,
    /// Simulated pages per wall-second per repetition.
    pub pages_per_wall_sec: ReplicateStats,
}

/// One appended run: provenance + config + metrics + wall summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Git commit of the working tree (`unknown` outside a checkout).
    pub git_sha: String,
    /// ISO-8601 UTC timestamp the entry was recorded (`unknown` when
    /// the host clock is unavailable). Informational only — nothing
    /// deterministic reads it back.
    pub recorded_at: String,
    /// The binary that produced the entry (`bench_gate`, `exp_*`, …).
    pub source: String,
    /// Sharing policy of the measured run, when not the default.
    pub policy: Option<String>,
    /// Fault-plan file applied to the run, if any.
    pub faults: Option<String>,
    /// Delivery mode of the measured run (`push`), when not the default
    /// pull. Tagged entries trend as their own series (`push:<metric>`)
    /// so the two delivery modes never pollute each other's trajectory.
    #[serde(default)]
    pub delivery: Option<String>,
    /// Virtual-clock metrics, identical across reps by construction.
    pub metrics: Vec<MetricSample>,
    /// Replicated wall-clock summary (absent for purely virtual runs).
    pub wall: Option<WallStats>,
}

impl HistoryEntry {
    /// Value of metric `name`, if the entry recorded it.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }
}

/// Append one entry to the ledger at `path` as a single compact JSON
/// line, creating the file if needed.
pub fn append(path: &str, entry: &HistoryEntry) -> Result<(), String> {
    let json =
        serde_json::to_string(entry).map_err(|e| format!("cannot serialize ledger entry: {e}"))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open ledger {path}: {e}"))?;
    writeln!(f, "{json}").map_err(|e| format!("cannot append to ledger {path}: {e}"))
}

/// Load a ledger: one [`HistoryEntry`] per non-blank line, oldest
/// first. A malformed line fails with its 1-based line number so the
/// offending entry can be found (and removed) by hand.
pub fn load(path: &str) -> Result<Vec<HistoryEntry>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read ledger {path}: {e}"))?;
    parse(&text).map_err(|e| format!("ledger {path}: {e}"))
}

/// Parse ledger text (exposed for tests and in-memory use).
pub fn parse(text: &str) -> Result<Vec<HistoryEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry: HistoryEntry =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        entries.push(entry);
    }
    Ok(entries)
}

/// The working tree's commit SHA (12 hex chars), or `"unknown"` when
/// `git` is unavailable or the directory is not a checkout.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The current UTC time as `YYYY-MM-DDTHH:MM:SSZ`, or `"unknown"` if
/// the host clock predates the epoch. Used only for ledger provenance —
/// never on a deterministic path.
pub fn utc_now_iso() -> String {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => iso_from_epoch_secs(d.as_secs()),
        Err(_) => "unknown".to_string(),
    }
}

/// Render epoch seconds as an ISO-8601 UTC timestamp. Civil-date
/// conversion follows Howard Hinnant's `civil_from_days` algorithm.
pub fn iso_from_epoch_secs(secs: u64) -> String {
    let days = secs / 86_400;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // Shift the epoch from 1970-01-01 to 0000-03-01 (era alignment).
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // day of year, Mar-based
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sha: &str, wall_median: f64) -> HistoryEntry {
        HistoryEntry {
            git_sha: sha.to_string(),
            recorded_at: "2026-08-09T12:00:00Z".to_string(),
            source: "bench_gate".to_string(),
            policy: None,
            faults: None,
            delivery: None,
            metrics: vec![
                MetricSample {
                    name: "ss_makespan_us".into(),
                    value: 7_450_866.0,
                },
                MetricSample {
                    name: "ss_hit_ratio_pct".into(),
                    value: 27.08,
                },
            ],
            wall: Some(WallStats {
                reps: 5,
                jobs: 1,
                wall_ms: ReplicateStats::from_samples(&[
                    wall_median,
                    wall_median * 1.02,
                    wall_median * 0.98,
                ]),
                pages_per_wall_sec: ReplicateStats::from_samples(&[1e6, 1.1e6, 0.9e6]),
            }),
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let path =
            std::env::temp_dir().join(format!("scanshare_history_{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        std::fs::remove_file(&path).ok();
        let a = entry("aaaa", 12.0);
        let b = entry("bbbb", 13.0);
        append(&path, &a).unwrap();
        append(&path, &b).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn metric_lookup_finds_by_name() {
        let e = entry("cccc", 10.0);
        assert_eq!(e.metric("ss_hit_ratio_pct"), Some(27.08));
        assert_eq!(e.metric("nope"), None);
    }

    #[test]
    fn malformed_lines_are_reported_with_their_number() {
        let good = serde_json::to_string(&entry("dddd", 10.0)).unwrap();
        let text = format!("{good}\n\n{{not json\n");
        let err = parse(&text).unwrap_err();
        assert!(err.contains("line 3"), "got: {err}");
        // Blank lines are skipped, not errors.
        let ok = parse(&format!("{good}\n\n{good}\n")).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn entries_without_a_delivery_tag_still_parse() {
        // Ledger lines written before the delivery tag existed lack the
        // field entirely; they must load as the default (pull, None).
        let good = serde_json::to_string(&entry("eeee", 10.0)).unwrap();
        assert!(good.contains("\"delivery\":null"), "got: {good}");
        let legacy = good.replace("\"delivery\":null,", "");
        let back = parse(&legacy).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].delivery, None);
        // And a tagged entry round-trips its tag.
        let mut tagged = entry("ffff", 10.0);
        tagged.delivery = Some("push".to_string());
        let line = serde_json::to_string(&tagged).unwrap();
        assert_eq!(parse(&line).unwrap()[0].delivery.as_deref(), Some("push"));
    }

    #[test]
    fn iso_rendering_matches_known_dates() {
        assert_eq!(iso_from_epoch_secs(0), "1970-01-01T00:00:00Z");
        // 2026-08-09 00:00:00 UTC.
        assert_eq!(iso_from_epoch_secs(1_786_233_600), "2026-08-09T00:00:00Z");
        // Leap-day coverage: 2024-02-29 12:34:56 UTC.
        assert_eq!(iso_from_epoch_secs(1_709_209_927), "2024-02-29T12:32:07Z");
    }
}
