//! Replication statistics for wall-clock measurements.
//!
//! The simulator's virtual-time metrics are bit-identical across runs,
//! so a single sample suffices for them. Wall-clock numbers are host
//! noise around a true value, so `bench_gate --reps N` re-runs the
//! smoke pair N times and summarizes the samples here: median and MAD
//! (median absolute deviation) as the robust location/spread pair, and
//! a **seeded bootstrap** 95% confidence interval for the median —
//! resampling is driven by the in-repo xoshiro PRNG, so the same
//! samples and seed always produce byte-identical interval bounds.
//!
//! On top of single-run summaries sits a trailing-window change-point
//! check ([`change_point`]): pool the medians of the last K ledger
//! entries, bootstrap a CI of *their* median, and flag the new
//! measurement when it falls outside that pooled interval. Wall time
//! varies across hosts, so the flag is informational by default;
//! `bench_gate --trend-gate` promotes it to an exit code.

use scanshare_prng::Rng;
use serde::{Deserialize, Serialize};

/// Bootstrap resamples drawn for a confidence interval. 1000 keeps the
/// interval stable to ~1% of the sample spread while staying instant.
pub const BOOTSTRAP_RESAMPLES: usize = 1000;

/// Default seed for every bootstrap in the repo's tooling. Fixed (and
/// boring) on purpose: determinism matters more than seed variety here.
pub const DEFAULT_SEED: u64 = 7;

/// Default trailing-window length for [`change_point`].
pub const DEFAULT_WINDOW: usize = 5;

/// Fewest prior entries a change-point check needs: below this the
/// pooled interval is too degenerate to mean anything.
pub const MIN_WINDOW: usize = 3;

/// Median of a sample (average of the two middle elements for even
/// sizes). Returns 0.0 for an empty slice — callers render that as an
/// absent measurement, never as NaN.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation: `median(|x - median(xs)|)`. The robust
/// analogue of a standard deviation (0.0 for fewer than two samples).
pub fn mad(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ci {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Ci {
    /// Whether `v` lies inside the closed interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// Seeded-bootstrap 95% confidence interval for the median of `xs`.
///
/// Draws [`BOOTSTRAP_RESAMPLES`] resamples (with replacement, sized
/// like the input) from a [`Rng`] seeded with `seed`, takes each
/// resample's median, and returns the 2.5th/97.5th percentiles of that
/// distribution. Deterministic: same samples + same seed ⇒ the same
/// bounds, bit for bit. Degenerate inputs collapse cleanly: an empty
/// sample yields `[0, 0]`, a single sample `[x, x]`.
pub fn bootstrap_ci_median(xs: &[f64], seed: u64) -> Ci {
    if xs.is_empty() {
        return Ci { lo: 0.0, hi: 0.0 };
    }
    if xs.len() == 1 {
        return Ci {
            lo: xs[0],
            hi: xs[0],
        };
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut medians = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    let mut resample = vec![0.0; xs.len()];
    for _ in 0..BOOTSTRAP_RESAMPLES {
        for slot in resample.iter_mut() {
            *slot = xs[rng.bounded_u64(xs.len() as u64) as usize];
        }
        medians.push(median(&resample));
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("medians are finite"));
    // Nearest-rank percentiles of the bootstrap distribution.
    let rank = |q: f64| {
        let r = ((q * medians.len() as f64).ceil() as usize).max(1);
        medians[r - 1]
    };
    Ci {
        lo: rank(0.025),
        hi: rank(0.975),
    }
}

/// Outcome of a trailing-window change-point check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangePoint {
    /// The new measurement under test.
    pub observed: f64,
    /// Bootstrap CI of the pooled prior window's median.
    pub pooled: Ci,
    /// How many prior entries were pooled.
    pub window: usize,
    /// True when `observed` falls outside `pooled` — a candidate
    /// regression (or improvement) worth a look.
    pub flagged: bool,
}

/// Flag `observed` against the trailing window of `prior` measurements
/// (most recent last). Pools the last `window` values, bootstraps a 95%
/// CI of their median with `seed`, and flags when `observed` escapes
/// it. Returns `None` when fewer than [`MIN_WINDOW`] priors exist —
/// too little history to call anything a change.
pub fn change_point(prior: &[f64], observed: f64, window: usize, seed: u64) -> Option<ChangePoint> {
    if prior.len() < MIN_WINDOW {
        return None;
    }
    let window = window.clamp(MIN_WINDOW, prior.len());
    let pool = &prior[prior.len() - window..];
    let pooled = bootstrap_ci_median(pool, seed);
    Some(ChangePoint {
        observed,
        pooled,
        window,
        flagged: !pooled.contains(observed),
    })
}

/// Robust summary of one replicated measurement, as stored in the
/// run-history ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicateStats {
    /// Median of the samples.
    pub median: f64,
    /// Median absolute deviation.
    pub mad: f64,
    /// Seeded-bootstrap 95% CI lower bound for the median.
    pub ci95_lo: f64,
    /// Seeded-bootstrap 95% CI upper bound for the median.
    pub ci95_hi: f64,
}

impl ReplicateStats {
    /// Summarize `xs` with the repo's [`DEFAULT_SEED`].
    pub fn from_samples(xs: &[f64]) -> Self {
        Self::from_samples_seeded(xs, DEFAULT_SEED)
    }

    /// Summarize `xs` with an explicit bootstrap seed.
    pub fn from_samples_seeded(xs: &[f64], seed: u64) -> Self {
        let ci = bootstrap_ci_median(xs, seed);
        ReplicateStats {
            median: median(xs),
            mad: mad(xs),
            ci95_lo: ci.lo,
            ci95_hi: ci.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_degenerate_sizes() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[5.0]), 5.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn mad_is_a_robust_spread() {
        assert_eq!(mad(&[7.0]), 0.0);
        // Symmetric sample: deviations 2,1,0,1,2 -> median 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
        // One wild outlier barely moves it.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 1000.0]), 1.0);
    }

    #[test]
    fn bootstrap_is_deterministic_for_a_seed() {
        let xs = [10.0, 11.0, 12.5, 9.8, 10.3, 11.7, 10.9];
        let a = bootstrap_ci_median(&xs, 42);
        let b = bootstrap_ci_median(&xs, 42);
        assert_eq!(a, b);
        // (Different seeds draw different resamples, but the nearest-rank
        // percentile bounds come from a small discrete set of candidate
        // medians and may legitimately coincide — so no inequality check.)
        // The interval brackets the sample median and stays within the
        // observed range.
        let m = median(&xs);
        assert!(a.lo <= m && m <= a.hi, "{a:?} vs median {m}");
        assert!(a.lo >= 9.8 && a.hi <= 12.5, "{a:?}");
    }

    #[test]
    fn bootstrap_degenerate_inputs_collapse_cleanly() {
        assert_eq!(bootstrap_ci_median(&[], 1), Ci { lo: 0.0, hi: 0.0 });
        assert_eq!(bootstrap_ci_median(&[3.5], 1), Ci { lo: 3.5, hi: 3.5 });
        // All-identical samples give a zero-width interval, never NaN.
        let ci = bootstrap_ci_median(&[2.0, 2.0, 2.0, 2.0], 1);
        assert_eq!(ci, Ci { lo: 2.0, hi: 2.0 });
    }

    #[test]
    fn change_point_needs_history_and_flags_escapes() {
        // Too little history: no verdict at all.
        assert!(change_point(&[1.0, 2.0], 99.0, 5, 1).is_none());
        let prior = [10.0, 10.2, 9.9, 10.1, 10.05];
        // A sample inside the pooled CI is not flagged.
        let ok = change_point(&prior, 10.0, 5, 1).unwrap();
        assert!(!ok.flagged, "{ok:?}");
        assert_eq!(ok.window, 5);
        // A 3x jump clearly escapes it.
        let bad = change_point(&prior, 30.0, 5, 1).unwrap();
        assert!(bad.flagged, "{bad:?}");
        // The window clamps to the available history.
        let clamped = change_point(&prior, 10.0, 50, 1).unwrap();
        assert_eq!(clamped.window, 5);
    }

    #[test]
    fn replicate_stats_summarize_consistently() {
        let xs = [12.0, 11.5, 13.0, 12.2, 11.9];
        let s = ReplicateStats::from_samples(&xs);
        assert_eq!(s.median, median(&xs));
        assert_eq!(s.mad, mad(&xs));
        assert!(s.ci95_lo <= s.median && s.median <= s.ci95_hi);
        // Same ledger + same seed => byte-identical bounds.
        let again = ReplicateStats::from_samples(&xs);
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }
}
