//! Figure 16: three staggered Q1 streams (CPU-intensive).
//!
//! The paper: even for this CPU-bound query the already-small I/O wait
//! and idle shares shrink further, system time drops (fewer read
//! syscalls), and each Q1 run still improves noticeably.

use scanshare_bench::*;
use scanshare_engine::SharingMode;
use scanshare_tpch::{q1, staggered_workload};
use serde::Serialize;

#[derive(Serialize)]
struct Fig16 {
    base_breakdown_pct: (f64, f64, f64, f64),
    ss_breakdown_pct: (f64, f64, f64, f64),
    base_run_times_s: Vec<f64>,
    ss_run_times_s: Vec<f64>,
    per_run_gain_pct: Vec<f64>,
    base_sys_s: f64,
    ss_sys_s: f64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let q = q1();
    let stagger = calibrated_stagger(&db, &q, 0.15);
    let base = staggered_workload(&db, &q, 3, stagger, SharingMode::Base);
    let ss = staggered_workload(&db, &q, 3, stagger, ss_mode());
    let (rb, rs) = run_pair(&db, &base, &ss);

    println!("\n== Figure 16: CPU usage stats, 3 staggered Q1 streams ==");
    print_breakdown("base", &rb);
    print_breakdown("SS", &rs);

    println!("\n== Figure 16 (right): per-run timings ==");
    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "run", "base (s)", "SS (s)", "gain"
    );
    let mut base_times = Vec::new();
    let mut ss_times = Vec::new();
    let mut gains = Vec::new();
    for i in 0..3 {
        let b = rb.stream_elapsed[i].as_secs_f64();
        let s = rs.stream_elapsed[i].as_secs_f64();
        base_times.push(b);
        ss_times.push(s);
        gains.push(pct_gain(b, s));
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>7.1}%",
            format!("Q1 #{}", i + 1),
            b,
            s,
            pct_gain(b, s)
        );
    }
    println!(
        "\nsystem time: base {:.3}s -> SS {:.3}s (fewer read syscalls)",
        rb.breakdown.system.as_secs_f64(),
        rs.breakdown.system.as_secs_f64()
    );
    println!("paper reports: I/O wait+idle negligible yet reduced further; each Q1 improves.");

    dump_json(
        "fig16",
        &Fig16 {
            base_breakdown_pct: rb.breakdown.percentages(),
            ss_breakdown_pct: rs.breakdown.percentages(),
            base_run_times_s: base_times,
            ss_run_times_s: ss_times,
            per_run_gain_pct: gains,
            base_sys_s: rb.breakdown.system.as_secs_f64(),
            ss_sys_s: rs.breakdown.system.as_secs_f64(),
        },
    );
}
