//! Figures 8/9: the sharing-potential estimator on the paper's worked
//! example, plus a live `calculateReads` scenario.
//!
//! The paper's arithmetic: starting new scan E at the beginning of its
//! range costs 195 page reads vs a 240-read worst case (19 % saved);
//! starting E near ongoing scan A costs 180 reads (25 % saved), so E is
//! placed near A.

use scanshare::placement::{
    best_start_optimal, best_start_practical, calculate_reads, reads_for_ranges, Trace,
};
use scanshare_bench::dump_json;
use serde::Serialize;

#[derive(Serialize)]
struct Fig89 {
    start_at_front_reads: u64,
    start_near_a_reads: u64,
    worst_case_reads: u64,
    front_saving_pct: f64,
    near_a_saving_pct: f64,
    live_front_reads: f64,
    live_near_a_reads: f64,
    practical_choice_member: usize,
    optimal_start: f64,
}

fn main() {
    // --- The paper's accounting (Figure 10, line 10) ---
    let front = reads_for_ranges(&[(15, 3), (30, 1), (15, 2), (20, 3), (10, 3)]);
    let near_a = reads_for_ranges(&[(15, 2), (20, 2), (40, 2), (15, 2)]);
    let worst = reads_for_ranges(&[(15, 3), (30, 2), (30, 3), (5, 3), (10, 3)]);
    println!("== Figures 8/9: the paper's worked example ==");
    println!(
        "start at front:  {front} reads (worst case {worst}) -> {:.0}% saved",
        (1.0 - front as f64 / worst as f64) * 100.0
    );
    println!(
        "start near A:    {near_a} reads -> {:.0}% saved",
        (1.0 - near_a as f64 / worst as f64) * 100.0
    );
    assert_eq!((front, near_a, worst), (195, 180, 240));
    println!("matches the paper: 195 vs 240 (19%), 180 vs 240 (25%)\n");

    // --- The same decision taken live by calculateReads ---
    // Scenario in the spirit of Figures 8/9: A is mid-range with the
    // same speed as the new scan E; C is far ahead and slower. Starting
    // E at the front means scanning cold and trailing A by 300 pages
    // (far beyond the pool); starting at A's location shares A's whole
    // remaining range.
    let a = Trace::new(300.0, 100.0, 1300.0);
    let c = Trace::new(900.0, 60.0, 2000.0);
    let members = [a, c];
    let pool = 120.0;
    let cand_speed = 100.0;
    let cand_pages = 800.0;

    let at_front = calculate_reads(&members, Trace::new(0.0, cand_speed, cand_pages), pool);
    let near_a_live = calculate_reads(
        &members,
        Trace::new(a.pos0, cand_speed, a.pos0 + cand_pages),
        pool,
    );
    println!("== live estimator ==");
    println!(
        "start at front : {:.0} reads (baseline {:.0})",
        at_front.reads, at_front.baseline
    );
    println!(
        "start near A   : {:.0} reads (baseline {:.0})",
        near_a_live.reads, near_a_live.baseline
    );
    let practical =
        best_start_practical(&members, cand_speed, cand_pages, pool).expect("sharing is available");
    println!(
        "practical algorithm joins member #{} at offset {:.0} (savings {:.2}/page)",
        practical.member,
        practical.start,
        practical.estimate.savings_per_page()
    );
    let optimal = best_start_optimal(&members, cand_speed, cand_pages, pool, (0.0, 1000.0))
        .expect("nonempty");
    println!(
        "optimal algorithm starts at offset {:.0} ({:.0} reads)",
        optimal.start, optimal.estimate.reads
    );
    assert!(near_a_live.reads < at_front.reads, "near A must win");

    dump_json(
        "fig8_9",
        &Fig89 {
            start_at_front_reads: front,
            start_near_a_reads: near_a,
            worst_case_reads: worst,
            front_saving_pct: (1.0 - front as f64 / worst as f64) * 100.0,
            near_a_saving_pct: (1.0 - near_a as f64 / worst as f64) * 100.0,
            live_front_reads: at_front.reads,
            live_near_a_reads: near_a_live.reads,
            practical_choice_member: practical.member,
            optimal_start: optimal.start,
        },
    );
}
