//! A3: sweep of the fairness cap (§7.2's "80 %" threshold).
//!
//! The cap bounds how long any single scan may be throttled for the
//! benefit of its group. 0 % disables throttling outright; 100 % lets a
//! leader be delayed up to its whole estimated scan time. The paper
//! fixes 80 % "based on our experience with various workloads"; the
//! sweep shows the trade-off between total time and worst per-query
//! regression.

use scanshare::SharingConfig;
use scanshare_bench::*;
use scanshare_engine::{run_workload, run_workloads, SharingMode};
use scanshare_tpch::{throughput_workload, QUERY_NAMES};
use serde::Serialize;

#[derive(Serialize)]
struct FairnessRow {
    cap_pct: u32,
    makespan_s: f64,
    pages_read: u64,
    waits: u64,
    total_wait_s: f64,
    worst_query_regression_pct: f64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;

    let base_spec = throughput_workload(&db, 5, months, cfg.seed, SharingMode::Base);
    let base = run_workload(&db, &base_spec).expect("base");

    println!("\n== A3: fairness cap sweep (5-stream TPC-H) ==");
    println!(
        "{:<8} {:>10} {:>12} {:>7} {:>10} {:>12}",
        "cap", "time (s)", "pages read", "waits", "wait (s)", "worst query"
    );
    let mut rows = Vec::new();
    let caps = [0u32, 20, 50, 80, 100];
    // The five cap settings are independent simulations; fan them out.
    // Reports are bit-identical to a sequential sweep for any job count.
    let specs: Vec<_> = caps
        .iter()
        .map(|&cap_pct| {
            let mode = SharingMode::ScanSharing(SharingConfig {
                fairness_cap: cap_pct as f64 / 100.0,
                ..SharingConfig::new(0)
            });
            throughput_workload(&db, 5, months, cfg.seed, mode)
        })
        .collect();
    let reports = run_workloads(&db, &specs, sweep_jobs());
    for (cap_pct, r) in caps.into_iter().zip(reports) {
        let r = r.expect("run");
        // Worst per-query regression vs base (negative gain).
        let mut worst = 0.0f64;
        for name in QUERY_NAMES {
            let b = base.avg_query_time(name).unwrap().as_secs_f64();
            let s = r.avg_query_time(name).unwrap().as_secs_f64();
            worst = worst.min(pct_gain(b, s));
        }
        println!(
            "{:>6}% {:>10.2} {:>12} {:>7} {:>10.2} {:>11.1}%",
            cap_pct,
            r.makespan.as_secs_f64(),
            r.disk.pages_read,
            r.sharing.waits_injected,
            r.sharing.total_wait.as_secs_f64(),
            worst
        );
        rows.push(FairnessRow {
            cap_pct,
            makespan_s: r.makespan.as_secs_f64(),
            pages_read: r.disk.pages_read,
            waits: r.sharing.waits_injected,
            total_wait_s: r.sharing.total_wait.as_secs_f64(),
            worst_query_regression_pct: worst,
        });
    }
    println!("\n(base makespan: {:.2}s)", base.makespan.as_secs_f64());
    println!("paper's choice: 80% — throttle enough to keep groups together,");
    println!("but never delay one scan indefinitely for the others.");
    dump_json("fairness", &rows);
}
