//! A7: throughput scaling with the number of streams.
//!
//! The paper: "The reduced disk utilization may be used to scale to a
//! larger number of streams with the same hardware." This experiment
//! runs the TPC-H throughput workload at each stream count in three
//! modes: the base run's time grows with every added stream (the disk
//! serializes them), the pull-sharing run grows much more slowly
//! because overlapping scans collapse onto one page stream, and the
//! push-sharing run additionally collapses the *buffer-pool fixes* —
//! one group driver fixes each page once per group, so the per-group
//! fix count stays near one no matter how many consumers ride along.
//!
//! ```sh
//! exp_streams                                   # default 1–8 sweep
//! exp_streams --streams 32,128,512 \
//!             --out results/streams_push.json   # high-load push curve
//! ```

use scanshare_bench::*;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct StreamsRow {
    streams: usize,
    base_s: f64,
    ss_s: f64,
    gain_pct: f64,
    base_reads_per_stream: u64,
    ss_reads_per_stream: u64,
    push_s: f64,
    push_gain_pct: f64,
    push_reads_per_stream: u64,
    push_fixes_per_page: f64,
    push_drivers: u64,
    push_attaches: u64,
}

/// Parse `--streams N,N,...` into stream counts (default 1,2,3,5,8).
fn parse_streams(args: &[String]) -> Result<Vec<usize>, String> {
    let Some(i) = args.iter().position(|a| a == "--streams") else {
        return Ok(vec![1, 2, 3, 5, 8]);
    };
    let list = args
        .get(i + 1)
        .ok_or_else(|| "--streams needs a comma-separated list (e.g. 32,128,512)".to_string())?;
    let mut out = Vec::new();
    for part in list.split(',') {
        let n: usize = part
            .trim()
            .parse()
            .map_err(|e| format!("invalid --streams entry '{part}': {e}"))?;
        if n == 0 {
            return Err("--streams entries must be >= 1".to_string());
        }
        out.push(n);
    }
    Ok(out)
}

/// Parse `--out FILE` (default: `results/streams.json` via dump_json).
fn parse_out(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let counts = match parse_streams(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let out = parse_out(&args);
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;

    println!("\n== A7: scaling with streams (TPC-H mix) ==");
    println!(
        "{:<8} {:>11} {:>11} {:>8} {:>11} {:>8} {:>10}",
        "streams", "base (s)", "pull (s)", "gain", "push (s)", "gain", "fixes/pg"
    );
    let mut rows = Vec::new();
    for &n in &counts {
        let rb = run_workload(
            &db,
            &throughput_workload(&db, n, months, cfg.seed, SharingMode::Base),
        )
        .expect("base");
        let rs = run_workload(
            &db,
            &throughput_workload(&db, n, months, cfg.seed, ss_mode()),
        )
        .expect("ss");
        let rp = run_workload(
            &db,
            &throughput_workload(&db, n, months, cfg.seed, push_mode()),
        )
        .expect("push");
        let ps = rp.push.as_ref().expect("push run records its summary");
        let b = rb.makespan.as_secs_f64();
        let s = rs.makespan.as_secs_f64();
        let p = rp.makespan.as_secs_f64();
        println!(
            "{:<8} {:>11.2} {:>11.2} {:>7.1}% {:>11.2} {:>7.1}% {:>10.3}",
            n,
            b,
            s,
            pct_gain(b, s),
            p,
            pct_gain(b, p),
            ps.fixes_per_page(),
        );
        rows.push(StreamsRow {
            streams: n,
            base_s: b,
            ss_s: s,
            gain_pct: pct_gain(b, s),
            base_reads_per_stream: rb.disk.pages_read / n as u64,
            ss_reads_per_stream: rs.disk.pages_read / n as u64,
            push_s: p,
            push_gain_pct: pct_gain(b, p),
            push_reads_per_stream: rp.disk.pages_read / n as u64,
            push_fixes_per_page: ps.fixes_per_page(),
            push_drivers: ps.drivers,
            push_attaches: ps.attaches,
        });
    }
    println!("\nexpected shape: per-stream physical reads stay flat for base but FALL");
    println!("with more streams under sharing (more overlap to exploit), so the gain");
    println!("widens as load grows — the paper's scaling argument. Push delivery");
    println!("keeps fixes-per-page near 1 regardless of group size, so its gain");
    println!("overtakes pull as the stream count climbs.");
    match &out {
        None => dump_json("streams", &rows),
        Some(path) => match serde_json::to_string_pretty(&rows) {
            Ok(json) => {
                if let Some(dir) = std::path::Path::new(path).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                match std::fs::write(path, json) {
                    Ok(()) => eprintln!("wrote {path}"),
                    Err(e) => {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            Err(e) => {
                eprintln!("json dump failed: {e}");
                std::process::exit(2);
            }
        },
    }
}
