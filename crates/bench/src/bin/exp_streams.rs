//! A7: throughput scaling with the number of streams.
//!
//! The paper: "The reduced disk utilization may be used to scale to a
//! larger number of streams with the same hardware." This experiment
//! runs the TPC-H throughput workload at 1–8 streams in both modes: the
//! base run's time grows with every added stream (the disk serializes
//! them), while the sharing run grows much more slowly because
//! overlapping scans collapse onto one page stream.

use scanshare_bench::*;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct StreamsRow {
    streams: usize,
    base_s: f64,
    ss_s: f64,
    gain_pct: f64,
    base_reads_per_stream: u64,
    ss_reads_per_stream: u64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;

    println!("\n== A7: scaling with streams (TPC-H mix) ==");
    println!(
        "{:<8} {:>11} {:>11} {:>8} {:>14} {:>14}",
        "streams", "base (s)", "SS (s)", "gain", "base reads/st", "SS reads/st"
    );
    let mut rows = Vec::new();
    for n in [1usize, 2, 3, 5, 8] {
        let rb = run_workload(
            &db,
            &throughput_workload(&db, n, months, cfg.seed, SharingMode::Base),
        )
        .expect("base");
        let rs = run_workload(
            &db,
            &throughput_workload(&db, n, months, cfg.seed, ss_mode()),
        )
        .expect("ss");
        let b = rb.makespan.as_secs_f64();
        let s = rs.makespan.as_secs_f64();
        println!(
            "{:<8} {:>11.2} {:>11.2} {:>7.1}% {:>14} {:>14}",
            n,
            b,
            s,
            pct_gain(b, s),
            rb.disk.pages_read / n as u64,
            rs.disk.pages_read / n as u64
        );
        rows.push(StreamsRow {
            streams: n,
            base_s: b,
            ss_s: s,
            gain_pct: pct_gain(b, s),
            base_reads_per_stream: rb.disk.pages_read / n as u64,
            ss_reads_per_stream: rs.disk.pages_read / n as u64,
        });
    }
    println!("\nexpected shape: per-stream physical reads stay flat for base but FALL");
    println!("with more streams under sharing (more overlap to exploit), so the gain");
    println!("widens as load grows — the paper's scaling argument.");
    dump_json("streams", &rows);
}
