//! A4: practical (O(S²)) vs optimal (O(S³)) placement on the 5-stream
//! TPC-H run.
//!
//! §6.2/6.3 of the paper: the optimal "interesting locations" search can
//! start a new scan *between* ongoing scans, but costs O(|S|³) and needs
//! linearly comparable locations, so the prototype ships the practical
//! anchor-group algorithm. This experiment quantifies what the extra
//! search buys (table scans only — index scans fall back to practical).

use scanshare::{PlacementStrategy, SharingConfig};
use scanshare_bench::*;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct PlacementRow {
    strategy: String,
    makespan_s: f64,
    pages_read: u64,
    joins: u64,
    optimal_placements: u64,
    gain_vs_base_pct: f64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;

    let variants: Vec<(&str, SharingMode)> = vec![
        ("base", SharingMode::Base),
        (
            "practical (paper)",
            SharingMode::ScanSharing(SharingConfig::new(0)),
        ),
        (
            "optimal (O(S^3))",
            SharingMode::ScanSharing(SharingConfig {
                placement_strategy: PlacementStrategy::Optimal,
                ..SharingConfig::new(0)
            }),
        ),
    ];

    println!("\n== A4: placement strategy (5-stream TPC-H) ==");
    println!(
        "{:<18} {:>10} {:>12} {:>7} {:>9} {:>8}",
        "strategy", "time (s)", "pages read", "joins", "optimal", "gain"
    );
    let mut rows = Vec::new();
    let mut base_time = 0.0;
    for (name, mode) in variants {
        let spec = throughput_workload(&db, 5, months, cfg.seed, mode);
        let r = run_workload(&db, &spec).expect("run");
        let t = r.makespan.as_secs_f64();
        if base_time == 0.0 {
            base_time = t;
        }
        let joins = r.sharing.scans_joined + r.sharing.scans_joined_finished;
        println!(
            "{:<18} {:>10.2} {:>12} {:>7} {:>9} {:>7.1}%",
            name,
            t,
            r.disk.pages_read,
            joins,
            r.sharing.scans_placed_optimal,
            pct_gain(base_time, t)
        );
        rows.push(PlacementRow {
            strategy: name.to_string(),
            makespan_s: t,
            pages_read: r.disk.pages_read,
            joins,
            optimal_placements: r.sharing.scans_placed_optimal,
            gain_vs_base_pct: pct_gain(base_time, t),
        });
    }
    println!("\nexpected shape: near-parity — the paper ships the practical algorithm");
    println!("because the optimal search buys little at much higher planning cost");
    println!("(see `cargo bench` group best_start_optimal vs best_start_practical).");
    dump_json("placement", &rows);
}
