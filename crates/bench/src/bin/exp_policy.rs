//! A4: sharing-policy ablation — grouping vs attach vs elevator.
//!
//! The paper's mechanism is the *grouping* policy: group-aware
//! placement plus throttling and page priorities. This experiment pits
//! it against the two classic alternatives it improves on, re-expressed
//! inside the same simulator:
//!
//! * **attach** — a new scan simply jumps to the newest compatible
//!   scan's position (shared-cursor attach, no feedback loops);
//! * **elevator** — one circulating read cursor per table; scans attach
//!   at the cursor and wrap around.
//!
//! Two workloads run under all three policies: the pinned CI smoke
//! workload (3 streams, tiny scale — the same spec `bench_gate` pins)
//! and the 5-stream TPC-H throughput workload at the experiment scale.
//! For each run the table reports pages read, buffer-pool hit ratio,
//! and the worst per-query *stretch* (slowest query's time relative to
//! the no-sharing base run — the fairness axis the grouping policy's
//! throttle cap is designed to bound).
//!
//! `--smoke` runs only the tiny workload and skips the JSON dump; CI
//! uses it as a cheap informational signal without touching the
//! committed `results/policy_ablation.json` artifact.

use scanshare::{SharingConfig, SharingPolicyKind};
use scanshare_bench::*;
use scanshare_engine::{run_workload, run_workloads, Database, RunReport, SharingMode};
use scanshare_tpch::{throughput_workload, TpchConfig, QUERY_NAMES};
use serde::Serialize;

const POLICIES: [SharingPolicyKind; 3] = [
    SharingPolicyKind::Grouping,
    SharingPolicyKind::Attach,
    SharingPolicyKind::Elevator,
];

#[derive(Serialize)]
struct PolicyRow {
    workload: String,
    policy: String,
    makespan_s: f64,
    pages_read: u64,
    hit_ratio_pct: f64,
    /// Worst per-query stretch: max over queries of this run's average
    /// query time divided by the base (no sharing) run's. 1.0 = no
    /// query paid anything for the sharing; higher = some query was
    /// slowed that much.
    worst_stretch: f64,
}

fn worst_stretch(base: &RunReport, run: &RunReport) -> f64 {
    let mut worst = 1.0f64;
    for name in QUERY_NAMES {
        let (Some(b), Some(s)) = (base.avg_query_time(name), run.avg_query_time(name)) else {
            continue;
        };
        let b = b.as_secs_f64();
        if b > 0.0 {
            worst = worst.max(s.as_secs_f64() / b);
        }
    }
    worst
}

/// Run one workload shape under base + all three policies.
fn ablate(label: &str, db: &Database, streams: usize, months: i64, seed: u64) -> Vec<PolicyRow> {
    let base_spec = throughput_workload(db, streams, months, seed, SharingMode::Base);
    eprintln!("[{label}] running base ...");
    let base = run_workload(db, &base_spec).expect("base run");

    // The three policies are independent simulations; fan them out.
    let specs: Vec<_> = POLICIES
        .iter()
        .map(|&p| {
            let mode = SharingMode::ScanSharing(SharingConfig::with_policy(0, p));
            throughput_workload(db, streams, months, seed, mode)
        })
        .collect();
    eprintln!("[{label}] running {} policies ...", POLICIES.len());
    let reports = run_workloads(db, &specs, sweep_jobs());

    println!("\n== policy ablation: {label} ({streams} streams) ==");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>14}",
        "policy", "time (s)", "pages read", "hit ratio", "worst stretch"
    );
    println!(
        "{:<10} {:>10.2} {:>12} {:>9.1}% {:>13.2}x",
        "(base)",
        base.makespan.as_secs_f64(),
        base.disk.pages_read,
        base.pool.hit_ratio() * 100.0,
        1.0,
    );
    let mut rows = Vec::new();
    for (p, r) in POLICIES.into_iter().zip(reports) {
        let r = r.expect("policy run");
        // The report stamps the policy only when it is not the default.
        assert_eq!(
            r.policy.unwrap_or_default(),
            p,
            "report policy stamp disagrees with the requested policy"
        );
        record_metrics(&format!("{label}/{p}"), &r);
        let stretch = worst_stretch(&base, &r);
        println!(
            "{:<10} {:>10.2} {:>12} {:>9.1}% {:>13.2}x",
            p.as_str(),
            r.makespan.as_secs_f64(),
            r.disk.pages_read,
            r.pool.hit_ratio() * 100.0,
            stretch,
        );
        rows.push(PolicyRow {
            workload: label.to_string(),
            policy: p.as_str().to_string(),
            makespan_s: r.makespan.as_secs_f64(),
            pages_read: r.disk.pages_read,
            hit_ratio_pct: r.pool.hit_ratio() * 100.0,
            worst_stretch: stretch,
        });
    }
    rows
}

fn main() {
    let smoke_only = std::env::args().any(|a| a == "--smoke");

    // Smoke workload: exactly the spec bench_gate pins, so these
    // numbers are directly comparable against the gated baseline.
    let tiny = TpchConfig::tiny();
    let smoke_db = build_database(&tiny);
    let mut rows = ablate("smoke", &smoke_db, 3, tiny.months as i64, tiny.seed);

    if smoke_only {
        println!("\n(--smoke: skipping the 5-stream workload and the JSON dump)");
        return;
    }

    // Full workload: the Table-1-style 5-stream throughput run.
    let cfg = experiment_config();
    let db = build_database(&cfg);
    rows.extend(ablate("throughput", &db, 5, cfg.months as i64, cfg.seed));

    println!("\ngrouping is the paper's policy: placement + throttling + priorities.");
    println!("attach/elevator share pages opportunistically but never throttle,");
    println!("so their worst per-query stretch is whatever the overlap dictates.");
    dump_json("policy_ablation", &rows);
}
