//! E0: single-stream overhead of the sharing machinery.
//!
//! The paper: "the observed overhead in the first experiment was well
//! below 1% of the end-to-end time." With a single stream there is
//! nothing to share, so any difference between base and scan-sharing is
//! pure manager overhead. In the simulator the manager's *decisions*
//! cost no virtual time (as in the paper, the calls are cheap); what
//! this experiment verifies is that its decisions (placement, priorities)
//! never *hurt* a lone stream. The host-time cost of the manager calls
//! themselves is measured by the `manager_overhead` criterion bench.

use scanshare_bench::*;
use scanshare_engine::SharingMode;
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct Overhead {
    base_s: f64,
    ss_s: f64,
    overhead_pct: f64,
    base_reads: u64,
    ss_reads: u64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;
    let base = throughput_workload(&db, 1, months, cfg.seed, SharingMode::Base);
    let ss = throughput_workload(&db, 1, months, cfg.seed, ss_mode());
    let (rb, rs) = run_pair(&db, &base, &ss);

    let overhead = (rs.makespan.as_secs_f64() / rb.makespan.as_secs_f64() - 1.0) * 100.0;
    println!("\n== E0: single-stream TPC-H, sharing on vs off ==");
    println!(
        "base: {:.2}s   scan-sharing: {:.2}s",
        rb.makespan.as_secs_f64(),
        rs.makespan.as_secs_f64()
    );
    println!("overhead: {overhead:+.2}% (paper: well below 1%)");
    println!(
        "reads: base {} pages, ss {} pages",
        rb.disk.pages_read, rs.disk.pages_read
    );
    if overhead.abs() <= 1.0 {
        println!("PASS: within the paper's <1% bound");
    } else if overhead < 0.0 {
        println!("NOTE: sharing helped even a single stream (intra-stream reuse)");
    } else {
        println!("FAIL: overhead exceeds 1%");
    }
    dump_json(
        "overhead",
        &Overhead {
            base_s: rb.makespan.as_secs_f64(),
            ss_s: rs.makespan.as_secs_f64(),
            overhead_pct: overhead,
            base_reads: rb.disk.pages_read,
            ss_reads: rs.disk.pages_read,
        },
    );
}
