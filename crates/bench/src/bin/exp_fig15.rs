//! Figure 15: three staggered Q6 streams (I/O-intensive).
//!
//! The paper: with scan sharing, I/O wait is cut roughly in half, idle
//! time drops, user time share rises, and each of the three Q6 runs
//! gains more than 50 % — the middle run most.

use scanshare_bench::*;
use scanshare_engine::SharingMode;
use scanshare_tpch::{q6, staggered_workload};
use serde::Serialize;

#[derive(Serialize)]
struct Fig15 {
    base_breakdown_pct: (f64, f64, f64, f64),
    ss_breakdown_pct: (f64, f64, f64, f64),
    base_run_times_s: Vec<f64>,
    ss_run_times_s: Vec<f64>,
    per_run_gain_pct: Vec<f64>,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let q = q6(cfg.months as i64, cfg.seed);
    // The paper staggers starts by 10 s on a 100 GB database; we stagger
    // by a fixed fraction of the solo runtime to keep the same overlap
    // geometry at any scale.
    let stagger = calibrated_stagger(&db, &q, 0.15);
    let base = staggered_workload(&db, &q, 3, stagger, SharingMode::Base);
    let ss = staggered_workload(&db, &q, 3, stagger, ss_mode());
    let (rb, rs) = run_pair(&db, &base, &ss);

    println!("\n== Figure 15: CPU usage stats, 3 staggered Q6 streams ==");
    print_breakdown("base", &rb);
    print_breakdown("SS", &rs);

    println!("\n== Figure 15 (right): per-run timings ==");
    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "run", "base (s)", "SS (s)", "gain"
    );
    let mut base_times = Vec::new();
    let mut ss_times = Vec::new();
    let mut gains = Vec::new();
    for i in 0..3 {
        let b = rb.stream_elapsed[i].as_secs_f64();
        let s = rs.stream_elapsed[i].as_secs_f64();
        base_times.push(b);
        ss_times.push(s);
        gains.push(pct_gain(b, s));
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>7.1}%",
            format!("Q6 #{}", i + 1),
            b,
            s,
            pct_gain(b, s)
        );
    }
    let (_, _, _, wb) = rb.breakdown.percentages();
    let (_, _, _, ws) = rs.breakdown.percentages();
    println!("\npaper reports: I/O wait roughly halved (here {wb:.1}% -> {ws:.1}%),");
    println!("each run gaining > 50%, the middle run most.");

    dump_json(
        "fig15",
        &Fig15 {
            base_breakdown_pct: rb.breakdown.percentages(),
            ss_breakdown_pct: rs.breakdown.percentages(),
            base_run_times_s: base_times,
            ss_run_times_s: ss_times,
            per_run_gain_pct: gains,
        },
    );
}
