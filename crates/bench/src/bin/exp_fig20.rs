//! Figure 20: per-query average execution times of the 5-stream run.
//!
//! The paper: gains vary per query but *no query shows a negative
//! effect* — throttling's cost is spread for mutual benefit — and
//! scan-heavy queries (their Q21) benefit most.

use scanshare_bench::*;
use scanshare_engine::SharingMode;
use scanshare_tpch::{throughput_workload, QUERY_NAMES};
use serde::Serialize;

#[derive(Serialize)]
struct Fig20Row {
    query: String,
    base_avg_s: f64,
    ss_avg_s: f64,
    gain_pct: f64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;
    let base = throughput_workload(&db, 5, months, cfg.seed, SharingMode::Base);
    let ss = throughput_workload(&db, 5, months, cfg.seed, ss_mode());
    let (rb, rs) = run_pair(&db, &base, &ss);

    println!("\n== Figure 20: average per-query execution time (5 streams) ==");
    println!(
        "{:<6} {:>10} {:>10} {:>8}",
        "query", "base (s)", "SS (s)", "gain"
    );
    let mut rows = Vec::new();
    let mut negative = 0;
    for name in QUERY_NAMES {
        let b = rb.avg_query_time(name).expect("query ran").as_secs_f64();
        let s = rs.avg_query_time(name).expect("query ran").as_secs_f64();
        let g = pct_gain(b, s);
        if g < -1.0 {
            negative += 1;
        }
        println!("{name:<6} {b:>10.2} {s:>10.2} {g:>7.1}%");
        rows.push(Fig20Row {
            query: name.to_string(),
            base_avg_s: b,
            ss_avg_s: s,
            gain_pct: g,
        });
    }
    let best = rows
        .iter()
        .max_by(|a, b| a.gain_pct.partial_cmp(&b.gain_pct).unwrap())
        .unwrap();
    println!(
        "\nbest gain: {} at {:.1}%; queries with >1% regression: {negative}",
        best.query, best.gain_pct
    );
    println!("paper reports: no query shows a negative effect; Q21 benefits most.");
    dump_json("fig20", &rows);
}
