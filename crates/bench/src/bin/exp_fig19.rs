//! Figure 19: per-stream gains of the 5-stream TPC-H run.
//!
//! The paper: "each stream gained similarly from the improved bufferpool
//! sharing" — the mechanism is fair across streams.

use scanshare_bench::*;
use scanshare_engine::SharingMode;
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct Fig19 {
    base_stream_s: Vec<f64>,
    ss_stream_s: Vec<f64>,
    gain_pct: Vec<f64>,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;
    let base = throughput_workload(&db, 5, months, cfg.seed, SharingMode::Base);
    let ss = throughput_workload(&db, 5, months, cfg.seed, ss_mode());
    let (rb, rs) = run_pair(&db, &base, &ss);

    println!("\n== Figure 19: per-stream timings (5-stream TPC-H) ==");
    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "stream", "base (s)", "SS (s)", "gain"
    );
    let mut out = Fig19 {
        base_stream_s: vec![],
        ss_stream_s: vec![],
        gain_pct: vec![],
    };
    for i in 0..rb.stream_elapsed.len() {
        let b = rb.stream_elapsed[i].as_secs_f64();
        let s = rs.stream_elapsed[i].as_secs_f64();
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>7.1}%",
            i + 1,
            b,
            s,
            pct_gain(b, s)
        );
        out.base_stream_s.push(b);
        out.ss_stream_s.push(s);
        out.gain_pct.push(pct_gain(b, s));
    }
    let min = out.gain_pct.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = out
        .gain_pct
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!("\ngain spread across streams: {min:.1}% .. {max:.1}%");
    println!("paper reports: each stream gains similarly.");
    dump_json("fig19", &out);
}
