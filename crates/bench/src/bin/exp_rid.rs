//! E-RID: sharing between general RID index scans (extension).
//!
//! The papers' prototype covers MDC block index scans but is explicitly
//! designed to carry over to RID index scans ("can be modified for other
//! index scans very easily"); §3.2 explains why they are the hard case —
//! key order and page order disagree, so distance between scans cannot
//! be read off the locations, and cold scans seek per page run.
//!
//! The workload: a 200k-row heap table whose insertion order is key
//! order with local shuffling (a *correlated but unclustered* index, the
//! common real-world case), and three analysts scanning overlapping key
//! ranges moments apart.

use scanshare_bench::*;
use scanshare_engine::{
    Access, AggSpec, CpuClass, Database, EngineConfig, Pred, Query, ScanSpec, SharingMode, Stream,
    WorkloadSpec,
};
use scanshare_prng::Rng;
use scanshare_relstore::{ColType, Column, Schema, Value};
use scanshare_storage::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct RidRow {
    scan: String,
    base_s: f64,
    ss_s: f64,
    gain_pct: f64,
}

#[derive(Serialize)]
struct RidOut {
    scans: Vec<RidRow>,
    base_reads: u64,
    ss_reads: u64,
    base_seeks: u64,
    ss_seeks: u64,
}

/// Rows in key order, shuffled within a sliding window: key k lands
/// within ~`window` rows of its sorted position.
fn correlated_rows(n: u64, keys: i64, window: usize, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut order: Vec<u64> = (0..n).collect();
    for start in (0..order.len()).step_by(window) {
        let end = (start + window).min(order.len());
        rng.shuffle(&mut order[start..end]);
    }
    order
        .into_iter()
        .map(|i| {
            let key = (i as i64 * keys) / n as i64;
            vec![Value::I32(key as i32), Value::F64(1.0)]
        })
        .collect()
}

fn rid_query(name: &str, lo: i64, hi: i64) -> Query {
    Query::single(
        name,
        ScanSpec {
            table: "events".into(),
            access: Access::RidRange { lo, hi },
            pred: Pred::True,
            agg: AggSpec::sums(vec![1]),
            cpu: CpuClass::io_bound(),
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        },
    )
}

fn main() {
    let mut db = Database::new(16);
    let schema = Schema::new(vec![
        Column::new("key", ColType::Int32),
        Column::new("v", ColType::Float64),
    ]);
    eprintln!("building correlated RID-indexed table ...");
    db.create_heap_table_with_index(
        "events",
        schema,
        0,
        correlated_rows(200_000, 1000, 2048, 11),
    )
    .expect("load");
    let pages = db.table("events").unwrap().num_pages();
    eprintln!("  events: {pages} pages");

    // Three overlapping range reports within the same key region.
    let scans = [
        ("r0_600", 0i64, 600i64),
        ("r50_650", 50, 650),
        ("r100_700", 100, 700),
    ];
    let streams: Vec<Stream> = scans
        .iter()
        .enumerate()
        .map(|(i, &(name, lo, hi))| Stream {
            queries: vec![rid_query(name, lo, hi)],
            start_offset: SimDuration::from_millis(60 * i as u64),
        })
        .collect();
    let spec = |mode| WorkloadSpec {
        streams: streams.clone(),
        pool_pages: (pages as usize / 20).max(32),
        engine: EngineConfig::default(),
        mode,
        faults: Default::default(),
        slo: Default::default(),
    };
    let (rb, rs) = run_pair(&db, &spec(SharingMode::Base), &spec(ss_mode()));

    println!("\n== E-RID: overlapping RID index scans ==");
    println!(
        "{:<10} {:>10} {:>10} {:>8}",
        "scan", "base (s)", "SS (s)", "gain"
    );
    let mut rows = Vec::new();
    for (i, &(name, ..)) in scans.iter().enumerate() {
        let b = rb.stream_elapsed[i].as_secs_f64();
        let s = rs.stream_elapsed[i].as_secs_f64();
        println!("{name:<10} {b:>10.2} {s:>10.2} {:>7.1}%", pct_gain(b, s));
        rows.push(RidRow {
            scan: name.into(),
            base_s: b,
            ss_s: s,
            gain_pct: pct_gain(b, s),
        });
    }
    println!(
        "\nreads: {} -> {} ({:.1}% fewer); seeks: {} -> {} ({:.1}% fewer)",
        rb.disk.pages_read,
        rs.disk.pages_read,
        pct_gain(rb.disk.pages_read as f64, rs.disk.pages_read as f64),
        rb.disk.seeks,
        rs.disk.seeks,
        pct_gain(rb.disk.seeks as f64, rs.disk.seeks as f64)
    );
    println!(
        "anchor machinery: {} joins, {} anchor merges, {} throttle waits",
        rs.sharing.scans_joined + rs.sharing.scans_joined_finished,
        rs.sharing.anchor_merges,
        rs.sharing.waits_injected
    );
    dump_json(
        "rid",
        &RidOut {
            scans: rows,
            base_reads: rb.disk.pages_read,
            ss_reads: rs.disk.pages_read,
            base_seeks: rb.disk.seeks,
            ss_seeks: rs.disk.seeks,
        },
    );
}
