//! E-POL: general-purpose replacement policies vs coordinated sharing.
//!
//! The paper's related work (§2) surveys LRU variants — LRU-K, 2Q, LFU,
//! ARC — and argues they target *general* access patterns, while
//! concurrent ordered scans need coordination. This experiment runs the
//! 5-stream TPC-H workload under plain LRU, LRU-2, and the full
//! scan-sharing prototype: a smarter victimizer alone barely moves the
//! needle, coordination does.

use scanshare_bench::*;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_storage::ReplacementPolicy;
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct PolicyRow {
    variant: String,
    makespan_s: f64,
    pages_read: u64,
    seeks: u64,
    hit_ratio_pct: f64,
    gain_vs_lru_pct: f64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;

    let variants: Vec<(&str, SharingMode)> = vec![
        ("LRU (vanilla)", SharingMode::Base),
        ("LRU-2", SharingMode::BasePolicy(ReplacementPolicy::Lru2)),
        ("scan-sharing", ss_mode()),
    ];

    println!("\n== E-POL: replacement policy vs coordination (5-stream TPC-H) ==");
    println!(
        "{:<16} {:>10} {:>12} {:>8} {:>8} {:>8}",
        "variant", "time (s)", "pages read", "seeks", "hit %", "gain"
    );
    let mut rows = Vec::new();
    let mut lru_time = 0.0;
    for (name, mode) in variants {
        let spec = throughput_workload(&db, 5, months, cfg.seed, mode);
        let r = run_workload(&db, &spec).expect("run");
        let t = r.makespan.as_secs_f64();
        if lru_time == 0.0 {
            lru_time = t;
        }
        let gain = pct_gain(lru_time, t);
        println!(
            "{:<16} {:>10.2} {:>12} {:>8} {:>8.1} {:>7.1}%",
            name,
            t,
            r.disk.pages_read,
            r.disk.seeks,
            r.pool.hit_ratio() * 100.0,
            gain
        );
        rows.push(PolicyRow {
            variant: name.to_string(),
            makespan_s: t,
            pages_read: r.disk.pages_read,
            seeks: r.disk.seeks,
            hit_ratio_pct: r.pool.hit_ratio() * 100.0,
            gain_vs_lru_pct: gain,
        });
    }
    println!("\nexpected shape: LRU-2 ~ LRU (general-purpose replacement cannot");
    println!("coordinate ordered scans); scan-sharing wins by synchronizing them.");
    dump_json("policies", &rows);
}
