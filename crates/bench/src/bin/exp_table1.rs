//! Table 1: 5-stream TPC-H throughput run.
//!
//! The paper reports, for its DB2 prototype on the HP box:
//! end-to-end gain 21 %, average disk-read gain 33 %, average disk-seek
//! gain 34 %. This binary runs the same 5-stream workload shape against
//! the simulated engine in base and scan-sharing modes and prints the
//! same three rows.

use scanshare_bench::*;
use scanshare_engine::SharingMode;
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct Table1 {
    end_to_end_gain_pct: f64,
    disk_read_gain_pct: f64,
    disk_seek_gain_pct: f64,
    base_makespan_s: f64,
    ss_makespan_s: f64,
    base_pages_read: u64,
    ss_pages_read: u64,
    base_seeks: u64,
    ss_seeks: u64,
    throttle_waits: u64,
    scans_joined: u64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;
    let base = throughput_workload(&db, 5, months, cfg.seed, SharingMode::Base);
    let ss = throughput_workload(&db, 5, months, cfg.seed, ss_mode());
    let (rb, rs) = run_pair(&db, &base, &ss);

    let rows = vec![
        GainRow::new(
            "end-to-end time (s)",
            rb.makespan.as_secs_f64(),
            rs.makespan.as_secs_f64(),
        ),
        GainRow::new(
            "disk reads (pages)",
            rb.disk.pages_read as f64,
            rs.disk.pages_read as f64,
        ),
        GainRow::new("disk seeks", rb.disk.seeks as f64, rs.disk.seeks as f64),
    ];
    print_gain_table("Table 1: 5-stream TPC-H throughput", &rows);
    println!("\npaper reports: end-to-end 21%, disk reads 33%, disk seeks 34%");
    println!(
        "sharing decisions: {} joins, {} fresh starts, {} throttle waits ({} total)",
        rs.sharing.scans_joined + rs.sharing.scans_joined_finished,
        rs.sharing.scans_from_start,
        rs.sharing.waits_injected,
        rs.sharing.total_wait,
    );

    dump_json(
        "table1",
        &Table1 {
            end_to_end_gain_pct: rows[0].gain_pct,
            disk_read_gain_pct: rows[1].gain_pct,
            disk_seek_gain_pct: rows[2].gain_pct,
            base_makespan_s: rb.makespan.as_secs_f64(),
            ss_makespan_s: rs.makespan.as_secs_f64(),
            base_pages_read: rb.disk.pages_read,
            ss_pages_read: rs.disk.pages_read,
            base_seeks: rb.disk.seeks,
            ss_seeks: rs.disk.seeks,
            throttle_waits: rs.sharing.waits_injected,
            scans_joined: rs.sharing.scans_joined,
        },
    );
}
