//! Figure 17: amount of data read from disk over time, base vs SS.
//!
//! The paper: the scan-sharing run shows the same jitter (different
//! queries overlapping over time) but reads less in most time units and
//! ends sooner.

use scanshare_bench::*;
use scanshare_engine::SharingMode;
use scanshare_storage::PAGE_SIZE;
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct Fig17 {
    bucket_seconds: f64,
    base_kb_per_bucket: Vec<u64>,
    ss_kb_per_bucket: Vec<u64>,
    base_total_kb: u64,
    ss_total_kb: u64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;
    let base = throughput_workload(&db, 5, months, cfg.seed, SharingMode::Base);
    let ss = throughput_workload(&db, 5, months, cfg.seed, ss_mode());
    let (rb, rs) = run_pair(&db, &base, &ss);

    let kb = |pages: u64| pages * PAGE_SIZE as u64 / 1024;
    let base_kb: Vec<u64> = rb.read_series.buckets().iter().map(|&p| kb(p)).collect();
    let ss_kb: Vec<u64> = rs.read_series.buckets().iter().map(|&p| kb(p)).collect();

    println!("\n== Figure 17: KB read from disk per time unit ==");
    let peak = rb
        .read_series
        .buckets()
        .iter()
        .chain(rs.read_series.buckets())
        .copied()
        .max()
        .unwrap_or(1);
    println!("{}", ascii_series("base", &rb.read_series, 64, peak));
    println!("{}", ascii_series("SS", &rs.read_series, 64, peak));
    println!(
        "totals: base {} KB over {:.1}s, SS {} KB over {:.1}s",
        base_kb.iter().sum::<u64>(),
        rb.makespan.as_secs_f64(),
        ss_kb.iter().sum::<u64>(),
        rs.makespan.as_secs_f64()
    );
    println!("paper reports: same jitter, lower reads in most time units, run ends sooner.");

    println!("\n t(s)    base KB      SS KB");
    let n = base_kb.len().max(ss_kb.len());
    for i in 0..n {
        println!(
            "{:>5} {:>10} {:>10}",
            i,
            base_kb.get(i).copied().unwrap_or(0),
            ss_kb.get(i).copied().unwrap_or(0)
        );
    }

    dump_json(
        "fig17",
        &Fig17 {
            bucket_seconds: rb.read_series.bucket_us() as f64 / 1e6,
            base_total_kb: base_kb.iter().sum(),
            ss_total_kb: ss_kb.iter().sum(),
            base_kb_per_bucket: base_kb,
            ss_kb_per_bucket: ss_kb,
        },
    );
}
