//! CI performance-regression gate binary.
//!
//! ```sh
//! bench_gate --write-baseline results/baseline_smoke.json   # (re)pin
//! bench_gate --gate results/baseline_smoke.json             # CI check
//! bench_gate --gate results/baseline_smoke.json \
//!            --reps 5 --history results/history.jsonl       # + trend
//! ```
//!
//! The smoke workload is pinned (tiny scale, fixed seed, fixed stream
//! count) and runs on virtual time, so its numbers are bit-identical
//! across machines and runs: any drift past the per-metric tolerances in
//! the committed baseline is a real change in engine behavior, not
//! noise. Wall-clock numbers ARE noise, so `--reps N` repeats the smoke
//! pair N times and reports median/MAD plus a seeded-bootstrap 95% CI
//! (virtual metrics are asserted bit-identical across the reps);
//! `--history FILE` appends the run to an append-only JSONL ledger and
//! checks the new wall median against the pooled CI of the trailing
//! ledger window — informational unless `--trend-gate` is given.
//! Exit codes: 0 = pass, 1 = regression (or rep divergence, or a
//! flagged trend under `--trend-gate`), 2 = usage or I/O error.

use scanshare::{DeliveryMode, SharingConfig};
use scanshare_bench::gate::{
    collect_metrics, compare, has_regression, render_diffs, GateBaseline, Provenance, WallSection,
};
use scanshare_bench::history::{self, HistoryEntry, MetricSample, WallStats};
use scanshare_bench::stats::{self, ReplicateStats};
use scanshare_engine::{run_workloads, FaultsConfig, RunReport, SharingMode};
use scanshare_tpch::{generate, throughput_workload, TpchConfig};

/// Streams in the smoke workload.
const SMOKE_STREAMS: usize = 3;

fn smoke_config() -> TpchConfig {
    // Deliberately NOT experiment_config(): the gate must ignore
    // SCANSHARE_SCALE/SEED so the committed baseline always matches.
    TpchConfig::tiny()
}

fn smoke_description(cfg: &TpchConfig, delivery: DeliveryMode) -> String {
    format!(
        "{SMOKE_STREAMS}-stream throughput smoke, scale {}, seed {}{}",
        cfg.scale,
        cfg.seed,
        if delivery.is_pull() {
            ""
        } else {
            ", push delivery"
        }
    )
}

/// Results of the replicated smoke pair: the (bit-identical) reports of
/// the first repetition, the legacy informational wall section (median
/// over reps), and the full replicate summary for the ledger.
struct SmokeRuns {
    base: RunReport,
    ss: RunReport,
    wall: WallSection,
    wall_stats: WallStats,
}

fn run_smoke_pair(
    jobs: usize,
    faults: &FaultsConfig,
    reps: usize,
    delivery: DeliveryMode,
) -> Result<SmokeRuns, String> {
    let cfg = smoke_config();
    let db = generate(&cfg);
    let months = cfg.months as i64;
    let mut base_spec =
        throughput_workload(&db, SMOKE_STREAMS, months, cfg.seed, SharingMode::Base);
    let mut ss_cfg = SharingConfig::new(0);
    ss_cfg.delivery = delivery;
    let mut ss_spec = throughput_workload(
        &db,
        SMOKE_STREAMS,
        months,
        cfg.seed,
        SharingMode::ScanSharing(ss_cfg),
    );
    base_spec.faults = faults.clone();
    ss_spec.faults = faults.clone();
    eprintln!(
        "running pinned smoke workload ({}), {reps} rep(s) ...",
        smoke_description(&cfg, delivery)
    );
    let mut first: Option<(RunReport, RunReport, String, String)> = None;
    let mut wall_ms_samples = Vec::with_capacity(reps);
    let mut pages_samples = Vec::with_capacity(reps);
    for rep in 0..reps.max(1) {
        let started = std::time::Instant::now();
        let mut reports = run_workloads(&db, &[base_spec.clone(), ss_spec.clone()], jobs);
        let wall = started.elapsed();
        let ss = reports.pop().unwrap().expect("ss smoke run");
        let base = reports.pop().unwrap().expect("base smoke run");
        let pages = base.pool.logical_reads + ss.pool.logical_reads;
        wall_ms_samples.push(wall.as_secs_f64() * 1e3);
        pages_samples.push(pages as f64 / wall.as_secs_f64().max(1e-9));
        // The simulator takes no wall-clock input, so every repetition
        // must serialize to the same bytes — a divergence means a
        // nondeterminism bug, which is itself a gate failure.
        let base_fp = serde_json::to_string(&base).expect("report serializes");
        let ss_fp = serde_json::to_string(&ss).expect("report serializes");
        match &first {
            None => first = Some((base, ss, base_fp, ss_fp)),
            Some((_, _, b0, s0)) => {
                if &base_fp != b0 || &ss_fp != s0 {
                    return Err(format!(
                        "virtual metrics diverged between rep 1 and rep {} — \
                         the simulator is nondeterministic",
                        rep + 1
                    ));
                }
            }
        }
    }
    let (base, ss, _, _) = first.expect("at least one rep ran");
    let reps_done = wall_ms_samples.len();
    let wall_ms = ReplicateStats::from_samples(&wall_ms_samples);
    let pages_per_wall_sec = ReplicateStats::from_samples(&pages_samples);
    // Wall-clock throughput is informational only: it varies with the
    // host machine and is never gated. The gated metrics are all
    // virtual-time quantities.
    let wall = WallSection {
        wall_ms: wall_ms.median,
        pages_per_wall_sec: pages_per_wall_sec.median,
        jobs: jobs as u64,
    };
    eprintln!(
        "wall-clock (informational, not gated): median {:.1} ms (MAD {:.2}, \
         95% CI [{:.1}, {:.1}]) over {reps_done} rep(s), \
         {:.0} simulated pages / wall second, --jobs {jobs}",
        wall_ms.median, wall_ms.mad, wall_ms.ci95_lo, wall_ms.ci95_hi, pages_per_wall_sec.median,
    );
    if reps_done > 1 {
        eprintln!("virtual metrics bit-identical across {reps_done} reps: yes");
    }
    if let Some(ps) = &ss.push {
        eprintln!(
            "push delivery (informational, not gated): {:.3} fixes/page \
             ({} drivers, {} attaches, {} pages delivered, {} catch-up pages)",
            ps.fixes_per_page(),
            ps.drivers,
            ps.attaches,
            ps.pages_delivered,
            ps.catchup_pages,
        );
    }
    Ok(SmokeRuns {
        base,
        ss,
        wall,
        wall_stats: WallStats {
            reps: reps_done as u64,
            jobs: jobs as u64,
            wall_ms,
            pages_per_wall_sec,
        },
    })
}

const USAGE: &str = "\
bench_gate — deterministic perf-regression gate

USAGE:
  bench_gate --gate BASELINE.json            compare against a committed
                                             baseline; exit 1 on regression
  bench_gate --write-baseline BASELINE.json  run the smoke workload and
                                             (re)write the baseline, stamped
                                             with git SHA / date / jobs
                                             provenance (informational)

OPTIONS:
  --jobs N       worker threads for the base/scan-sharing pair (default 1);
                 reports are bit-identical for any N, only wall time changes
  --reps N       repeat the smoke pair N times (default 1): virtual metrics
                 are asserted bit-identical across reps, wall time is
                 summarized as median/MAD with a seeded-bootstrap 95% CI
  --history FILE append this run to an append-only JSONL ledger (git SHA,
                 virtual metrics, replicated wall stats) and check the new
                 wall median against the pooled CI of the trailing ledger
                 window (informational trend check)
  --trend-window K
                 prior ledger entries pooled by the trend check (default 5)
  --trend-gate   exit 1 when the trend check flags the new wall median
                 (off by default: wall time is host noise, so the flag is
                 informational until a deployment opts in)
  --faults FILE  apply a FaultsConfig JSON (seeded fault plan + retry
                 policy) to both smoke runs; canned plans live in
                 results/fault_plans/. An empty plan must leave every
                 gated metric at 0.00% delta
  --report-out FILE
                 also save the scan-sharing leg's RunReport as compact
                 JSON — byte-identical across machines, so CI can cmp it
                 against the committed report artifact
  --delivery pull|push
                 delivery mode of the scan-sharing leg (default pull).
                 A push-mode run gates against its own committed baseline
                 (results/baseline_smoke_push.json), tags its ledger entry
                 so trends stay per-mode, and prints the group drivers'
                 fixes-per-page summary (informational, not gated)
";

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_usize(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .map_err(|e| format!("invalid {name} value: {e}")),
    }
}

/// Everything parsed from the command line.
struct Options {
    jobs: usize,
    reps: usize,
    faults: FaultsConfig,
    faults_path: Option<String>,
    report_out: Option<String>,
    history: Option<String>,
    trend_window: usize,
    trend_gate: bool,
    delivery: DeliveryMode,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = flag_value(&args, "--gate");
    let write = flag_value(&args, "--write-baseline");
    let (jobs, reps, trend_window) = match (
        parse_usize(&args, "--jobs", 1),
        parse_usize(&args, "--reps", 1),
        parse_usize(&args, "--trend-window", stats::DEFAULT_WINDOW),
    ) {
        (Ok(j), Ok(r), Ok(w)) => (j, r.max(1), w),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let faults_path = flag_value(&args, "--faults");
    let faults = match &faults_path {
        None => FaultsConfig::default(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match serde_json::from_str(&text) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("invalid fault plan {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    let delivery = match flag_value(&args, "--delivery") {
        None => DeliveryMode::Pull,
        Some(v) => match v.parse() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
    };
    let opts = Options {
        jobs,
        reps,
        faults,
        faults_path,
        report_out: flag_value(&args, "--report-out"),
        history: flag_value(&args, "--history"),
        trend_window,
        trend_gate: args.iter().any(|a| a == "--trend-gate"),
        delivery,
    };
    let code = match (gate, write) {
        (Some(path), None) => run_gate(&path, &opts),
        (None, Some(path)) => write_baseline(&path, &opts),
        _ => {
            eprint!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Save the scan-sharing leg's report as compact JSON (the same bytes
/// `serde_json::to_string` produces everywhere — the artifact CI diffs).
fn save_report_out(path: &str, ss: &RunReport) -> Result<(), String> {
    let json = serde_json::to_string(ss).map_err(|e| format!("cannot serialize report: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("scan-sharing report saved to {path}");
    Ok(())
}

/// Append this run to the ledger and run the trailing-window trend
/// check against the entries that preceded it. Returns whether the
/// check flagged the new wall median (always `false` when the ledger
/// is too short to pool a window).
fn record_and_check_history(runs: &SmokeRuns, opts: &Options) -> Result<bool, String> {
    let Some(path) = &opts.history else {
        return Ok(false);
    };
    // Prior entries first: the check compares against the past, not
    // against a window that already contains the new measurement.
    let prior = if std::path::Path::new(path).exists() {
        history::load(path)?
    } else {
        Vec::new()
    };
    let entry = HistoryEntry {
        git_sha: history::git_sha(),
        recorded_at: history::utc_now_iso(),
        source: "bench_gate".to_string(),
        policy: runs.ss.policy.map(|p| p.to_string()),
        faults: opts.faults_path.clone(),
        delivery: runs.ss.push.as_ref().map(|_| "push".to_string()),
        metrics: collect_metrics(&runs.base, &runs.ss)
            .into_iter()
            .map(|m| MetricSample {
                name: m.name,
                value: m.value,
            })
            .collect(),
        wall: Some(runs.wall_stats.clone()),
    };
    history::append(path, &entry)?;
    eprintln!(
        "history entry appended to {path} ({} entries total)",
        prior.len() + 1
    );
    let prior_medians: Vec<f64> = prior
        .iter()
        .filter_map(|e| e.wall.as_ref().map(|w| w.wall_ms.median))
        .collect();
    let observed = runs.wall_stats.wall_ms.median;
    match stats::change_point(
        &prior_medians,
        observed,
        opts.trend_window,
        stats::DEFAULT_SEED,
    ) {
        None => {
            eprintln!(
                "trend check: skipped ({} prior wall sample(s), need {})",
                prior_medians.len(),
                stats::MIN_WINDOW
            );
            Ok(false)
        }
        Some(cp) => {
            let verdict = if cp.flagged { "FLAGGED" } else { "ok" };
            eprintln!(
                "trend check ({}): wall median {:.1} ms vs pooled 95% CI \
                 [{:.1}, {:.1}] over last {} entries — {verdict}",
                if opts.trend_gate {
                    "gated"
                } else {
                    "informational"
                },
                cp.observed,
                cp.pooled.lo,
                cp.pooled.hi,
                cp.window,
            );
            Ok(cp.flagged)
        }
    }
}

fn write_baseline(path: &str, opts: &Options) -> i32 {
    let cfg = smoke_config();
    let runs = match run_smoke_pair(opts.jobs, &opts.faults, opts.reps, opts.delivery) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return 1;
        }
    };
    if let Some(out) = &opts.report_out {
        if let Err(e) = save_report_out(out, &runs.ss) {
            eprintln!("{e}");
            return 2;
        }
    }
    let baseline = GateBaseline {
        description: smoke_description(&cfg, opts.delivery),
        metrics: collect_metrics(&runs.base, &runs.ss),
        wall: Some(runs.wall.clone()),
        provenance: Some(Provenance {
            git_sha: history::git_sha(),
            recorded_at: history::utc_now_iso(),
            jobs: opts.jobs as u64,
        }),
    };
    let json = match serde_json::to_string_pretty(&baseline) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot serialize baseline: {e}");
            return 2;
        }
    };
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
        return 2;
    }
    println!("baseline written to {path}:");
    for m in &baseline.metrics {
        println!(
            "  {:<20} {:>14.2}  (tol {:.1}%)",
            m.name, m.value, m.tolerance_pct
        );
    }
    if let Some(p) = &baseline.provenance {
        println!(
            "  provenance: {} at {} (--jobs {}) [informational, never gated]",
            p.git_sha, p.recorded_at, p.jobs
        );
    }
    match record_and_check_history(&runs, opts) {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("{e}");
            2
        }
    }
}

fn run_gate(path: &str, opts: &Options) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let baseline: GateBaseline = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("invalid baseline {path}: {e}");
            return 2;
        }
    };
    let runs = match run_smoke_pair(opts.jobs, &opts.faults, opts.reps, opts.delivery) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return 1;
        }
    };
    if let Some(out) = &opts.report_out {
        if let Err(e) = save_report_out(out, &runs.ss) {
            eprintln!("{e}");
            return 2;
        }
    }
    let current = collect_metrics(&runs.base, &runs.ss);
    let diffs = compare(&baseline, &current);
    print!("{}", render_diffs(&baseline.description, &diffs));
    // The committed wall numbers are context, not a gate: name them next
    // to what this host just measured so drifts are easy to eyeball.
    if let Some(b) = &baseline.wall {
        eprintln!(
            "wall vs baseline (informational, not gated): {:.1} ms now vs {:.1} ms \
             committed ({:+.1}% — host-dependent), --jobs {} vs {}",
            runs.wall.wall_ms,
            b.wall_ms,
            (runs.wall.wall_ms - b.wall_ms) / b.wall_ms.max(1e-9) * 100.0,
            runs.wall.jobs,
            b.jobs,
        );
    }
    let trend_flagged = match record_and_check_history(&runs, opts) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if has_regression(&diffs) || (opts.trend_gate && trend_flagged) {
        1
    } else {
        0
    }
}
