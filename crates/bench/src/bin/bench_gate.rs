//! CI performance-regression gate binary.
//!
//! ```sh
//! bench_gate --write-baseline results/baseline_smoke.json   # (re)pin
//! bench_gate --gate results/baseline_smoke.json             # CI check
//! ```
//!
//! The smoke workload is pinned (tiny scale, fixed seed, fixed stream
//! count) and runs on virtual time, so its numbers are bit-identical
//! across machines and runs: any drift past the per-metric tolerances in
//! the committed baseline is a real change in engine behavior, not
//! noise. Exit codes: 0 = pass, 1 = regression, 2 = usage or I/O error.

use scanshare::SharingConfig;
use scanshare_bench::gate::{
    collect_metrics, compare, has_regression, render_diffs, GateBaseline, WallSection,
};
use scanshare_engine::{run_workloads, FaultsConfig, RunReport, SharingMode};
use scanshare_tpch::{generate, throughput_workload, TpchConfig};

/// Streams in the smoke workload.
const SMOKE_STREAMS: usize = 3;

fn smoke_config() -> TpchConfig {
    // Deliberately NOT experiment_config(): the gate must ignore
    // SCANSHARE_SCALE/SEED so the committed baseline always matches.
    TpchConfig::tiny()
}

fn smoke_description(cfg: &TpchConfig) -> String {
    format!(
        "{SMOKE_STREAMS}-stream throughput smoke, scale {}, seed {}",
        cfg.scale, cfg.seed
    )
}

fn run_smoke_pair(jobs: usize, faults: &FaultsConfig) -> (RunReport, RunReport, WallSection) {
    let cfg = smoke_config();
    let db = generate(&cfg);
    let months = cfg.months as i64;
    let mut base_spec =
        throughput_workload(&db, SMOKE_STREAMS, months, cfg.seed, SharingMode::Base);
    let mut ss_spec = throughput_workload(
        &db,
        SMOKE_STREAMS,
        months,
        cfg.seed,
        SharingMode::ScanSharing(SharingConfig::new(0)),
    );
    base_spec.faults = faults.clone();
    ss_spec.faults = faults.clone();
    eprintln!(
        "running pinned smoke workload ({}) ...",
        smoke_description(&cfg)
    );
    let started = std::time::Instant::now();
    let mut reports = run_workloads(&db, &[base_spec, ss_spec], jobs);
    let wall = started.elapsed();
    let ss = reports.pop().unwrap().expect("ss smoke run");
    let base = reports.pop().unwrap().expect("base smoke run");
    // Wall-clock throughput is informational only: it varies with the
    // host machine and is never gated. The gated metrics below are all
    // virtual-time quantities.
    let pages = base.pool.logical_reads + ss.pool.logical_reads;
    let wall = WallSection {
        wall_ms: wall.as_secs_f64() * 1e3,
        pages_per_wall_sec: pages as f64 / (wall.as_secs_f64()).max(1e-9),
        jobs: jobs as u64,
    };
    eprintln!(
        "wall-clock (informational, not gated): {:.1} ms for both runs, \
         {:.0} simulated pages / wall second, --jobs {jobs}",
        wall.wall_ms, wall.pages_per_wall_sec,
    );
    (base, ss, wall)
}

const USAGE: &str = "\
bench_gate — deterministic perf-regression gate

USAGE:
  bench_gate --gate BASELINE.json            compare against a committed
                                             baseline; exit 1 on regression
  bench_gate --write-baseline BASELINE.json  run the smoke workload and
                                             (re)write the baseline

OPTIONS:
  --jobs N       worker threads for the base/scan-sharing pair (default 1);
                 reports are bit-identical for any N, only wall time changes
  --faults FILE  apply a FaultsConfig JSON (seeded fault plan + retry
                 policy) to both smoke runs; canned plans live in
                 results/fault_plans/. An empty plan must leave every
                 gated metric at 0.00% delta
  --report-out FILE
                 also save the scan-sharing leg's RunReport as compact
                 JSON — byte-identical across machines, so CI can cmp it
                 against the committed report artifact
";

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = flag_value(&args, "--gate");
    let write = flag_value(&args, "--write-baseline");
    let jobs = match flag_value(&args, "--jobs")
        .map(|v| v.parse::<usize>())
        .transpose()
    {
        Ok(j) => j.unwrap_or(1),
        Err(e) => {
            eprintln!("invalid --jobs value: {e}");
            std::process::exit(2);
        }
    };
    let faults = match flag_value(&args, "--faults") {
        None => FaultsConfig::default(),
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match serde_json::from_str(&text) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("invalid fault plan {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    let report_out = flag_value(&args, "--report-out");
    let code = match (gate, write) {
        (Some(path), None) => run_gate(&path, jobs, &faults, report_out.as_deref()),
        (None, Some(path)) => write_baseline(&path, jobs, &faults, report_out.as_deref()),
        _ => {
            eprint!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Save the scan-sharing leg's report as compact JSON (the same bytes
/// `serde_json::to_string` produces everywhere — the artifact CI diffs).
fn save_report_out(path: &str, ss: &RunReport) -> Result<(), String> {
    let json = serde_json::to_string(ss).map_err(|e| format!("cannot serialize report: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("scan-sharing report saved to {path}");
    Ok(())
}

fn write_baseline(path: &str, jobs: usize, faults: &FaultsConfig, report_out: Option<&str>) -> i32 {
    let cfg = smoke_config();
    let (base, ss, wall) = run_smoke_pair(jobs, faults);
    if let Some(out) = report_out {
        if let Err(e) = save_report_out(out, &ss) {
            eprintln!("{e}");
            return 2;
        }
    }
    let baseline = GateBaseline {
        description: smoke_description(&cfg),
        metrics: collect_metrics(&base, &ss),
        wall: Some(wall),
    };
    let json = match serde_json::to_string_pretty(&baseline) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot serialize baseline: {e}");
            return 2;
        }
    };
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
        return 2;
    }
    println!("baseline written to {path}:");
    for m in &baseline.metrics {
        println!(
            "  {:<20} {:>14.2}  (tol {:.1}%)",
            m.name, m.value, m.tolerance_pct
        );
    }
    0
}

fn run_gate(path: &str, jobs: usize, faults: &FaultsConfig, report_out: Option<&str>) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let baseline: GateBaseline = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("invalid baseline {path}: {e}");
            return 2;
        }
    };
    let (base, ss, wall) = run_smoke_pair(jobs, faults);
    if let Some(out) = report_out {
        if let Err(e) = save_report_out(out, &ss) {
            eprintln!("{e}");
            return 2;
        }
    }
    let current = collect_metrics(&base, &ss);
    let diffs = compare(&baseline, &current);
    print!("{}", render_diffs(&baseline.description, &diffs));
    // The committed wall numbers are context, not a gate: name them next
    // to what this host just measured so drifts are easy to eyeball.
    if let Some(b) = &baseline.wall {
        eprintln!(
            "wall vs baseline (informational, not gated): {:.1} ms now vs {:.1} ms \
             committed ({:+.1}% — host-dependent), --jobs {} vs {}",
            wall.wall_ms,
            b.wall_ms,
            (wall.wall_ms - b.wall_ms) / b.wall_ms.max(1e-9) * 100.0,
            wall.jobs,
            b.jobs,
        );
    }
    if has_regression(&diffs) {
        1
    } else {
        0
    }
}
