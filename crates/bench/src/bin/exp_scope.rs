//! A2: sharing scope — table scans only (the titled ICDE 2007 paper) vs
//! table + index scans (with the VLDB 2007 SISCAN extension).
//!
//! The novelty claim of the index-scan paper is precisely that existing
//! systems shared *table* scans only; this experiment quantifies what
//! each scope buys on the 5-stream TPC-H run (18 block index scans and
//! 29 table scans per stream).

use scanshare_bench::*;
use scanshare_engine::{run_workload, EngineConfig, SharingMode, WorkloadSpec};
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct ScopeRow {
    scope: String,
    makespan_s: f64,
    pages_read: u64,
    seeks: u64,
    end_to_end_gain_pct: f64,
}

fn with_scope(spec: &WorkloadSpec, table: bool, index: bool) -> WorkloadSpec {
    WorkloadSpec {
        engine: EngineConfig {
            share_table_scans: table,
            share_index_scans: index,
            ..spec.engine.clone()
        },
        ..spec.clone()
    }
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;
    let base = throughput_workload(&db, 5, months, cfg.seed, SharingMode::Base);
    let ss = throughput_workload(&db, 5, months, cfg.seed, ss_mode());

    let scopes = vec![
        ("base (no sharing)", with_scope(&base, false, false)),
        ("table scans only (ICDE'07)", with_scope(&ss, true, false)),
        ("index scans only", with_scope(&ss, false, true)),
        ("table + index (VLDB'07)", with_scope(&ss, true, true)),
    ];

    println!("\n== A2: sharing scope (5-stream TPC-H) ==");
    println!(
        "{:<28} {:>10} {:>12} {:>8} {:>8}",
        "scope", "time (s)", "pages read", "seeks", "gain"
    );
    let mut rows = Vec::new();
    let mut base_time = 0.0;
    for (name, spec) in scopes {
        let r = run_workload(&db, &spec).expect("run");
        let t = r.makespan.as_secs_f64();
        if base_time == 0.0 {
            base_time = t;
        }
        let g = pct_gain(base_time, t);
        println!(
            "{:<28} {:>10.2} {:>12} {:>8} {:>7.1}%",
            name, t, r.disk.pages_read, r.disk.seeks, g
        );
        rows.push(ScopeRow {
            scope: name.to_string(),
            makespan_s: t,
            pages_read: r.disk.pages_read,
            seeks: r.disk.seeks,
            end_to_end_gain_pct: g,
        });
    }
    println!("\nexpected shape: each scope helps alone; the union wins — index-scan");
    println!("sharing adds gains on top of what table-scan sharing already delivers.");
    dump_json("scope", &rows);
}
