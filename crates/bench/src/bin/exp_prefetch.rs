//! A5: does scan sharing still pay once the engine prefetches?
//!
//! The paper's DB2 prefetches extents aggressively (the throttle
//! threshold is even expressed in "prefetch extents"). Our calibrated
//! baseline reads synchronously; this experiment re-runs the 5-stream
//! Table 1 comparison with one-extent read-ahead enabled in *both*
//! modes, confirming the sharing gains are not an artifact of
//! synchronous I/O.

use scanshare_bench::*;
use scanshare_engine::{run_workload, EngineConfig, SharingMode, WorkloadSpec};
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct PrefetchRow {
    variant: String,
    makespan_s: f64,
    pages_read: u64,
    seeks: u64,
}

fn with_prefetch(spec: &WorkloadSpec) -> WorkloadSpec {
    WorkloadSpec {
        engine: EngineConfig {
            prefetch_extents: 1,
            ..spec.engine.clone()
        },
        ..spec.clone()
    }
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;
    let base = throughput_workload(&db, 5, months, cfg.seed, SharingMode::Base);
    let ss = throughput_workload(&db, 5, months, cfg.seed, ss_mode());

    let variants = vec![
        ("base, no prefetch", base.clone()),
        ("SS, no prefetch", ss.clone()),
        ("base + prefetch", with_prefetch(&base)),
        ("SS + prefetch", with_prefetch(&ss)),
    ];
    println!("\n== A5: prefetching x sharing (5-stream TPC-H) ==");
    println!(
        "{:<20} {:>10} {:>12} {:>8}",
        "variant", "time (s)", "pages read", "seeks"
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, spec) in variants {
        let r = run_workload(&db, &spec).expect("run");
        println!(
            "{:<20} {:>10.2} {:>12} {:>8}",
            name,
            r.makespan.as_secs_f64(),
            r.disk.pages_read,
            r.disk.seeks
        );
        rows.push(PrefetchRow {
            variant: name.to_string(),
            makespan_s: r.makespan.as_secs_f64(),
            pages_read: r.disk.pages_read,
            seeks: r.disk.seeks,
        });
        results.push(r);
    }
    let gain_noprefetch = pct_gain(rows[0].makespan_s, rows[1].makespan_s);
    let gain_prefetch = pct_gain(rows[2].makespan_s, rows[3].makespan_s);
    println!(
        "\nsharing gain without prefetch: {gain_noprefetch:.1}%; with prefetch: {gain_prefetch:.1}%"
    );
    println!("expected shape: prefetch speeds both modes up; sharing still wins on top.");
    dump_json("prefetch", &rows);
}
