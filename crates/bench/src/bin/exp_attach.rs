//! A8: QPipe-style attach vs the paper's placement + throttling.
//!
//! Related work \[19\] (Harizopoulos et al.) shares scans by letting new
//! operators *attach* to an ongoing scan's page stream. The paper's
//! critique: "while this approach works well for scans with similar
//! speeds, in practice scan speeds can vary by large margins … the
//! benefit can be lower as scans may start drifting apart."
//!
//! Workload A (homogeneous): several Q6-like scans of the same year —
//! attach should do almost as well as the full mechanism.
//! Workload B (heterogeneous): the same ranges scanned by a mix of
//! CPU-heavy and I/O-light queries — attach drifts, the paper's
//! throttled groups hold together.

use scanshare::SharingConfig;
use scanshare_bench::*;
use scanshare_engine::{
    run_workload, Access, AggSpec, CpuClass, Pred, Query, ScanSpec, SharingMode, Stream,
    WorkloadSpec,
};
use scanshare_storage::SimDuration;
use scanshare_tpch::gen::lineitem_cols as li;
use scanshare_tpch::workload::paper_pool_pages;
use serde::Serialize;

#[derive(Serialize)]
struct AttachRow {
    workload: String,
    mode: String,
    makespan_s: f64,
    pages_read: u64,
    gain_vs_base_pct: f64,
}

fn li_scan(name: &str, lo: i64, hi: i64, cpu: CpuClass) -> Query {
    Query::single(
        name,
        ScanSpec {
            table: "lineitem".into(),
            access: Access::IndexRange { lo, hi },
            pred: Pred::True,
            agg: AggSpec::sums(vec![li::EXTENDEDPRICE]),
            cpu,
            require_order: false,
            query_priority: Default::default(),
            repeat: 1,
        },
    )
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let last = cfg.last_month();
    let lo = last - 23;

    let homogeneous: Vec<Stream> = (0..4)
        .map(|i| Stream {
            queries: vec![li_scan("even", lo, last, CpuClass::io_bound())],
            start_offset: SimDuration::from_millis(80 * i),
        })
        .collect();
    let heterogeneous: Vec<Stream> = (0..4)
        .map(|i| {
            let cpu = if i % 2 == 0 {
                CpuClass::io_bound()
            } else {
                CpuClass::cpu_bound() // 6x the per-row work: a slow reader
            };
            Stream {
                queries: vec![li_scan(
                    if i % 2 == 0 { "fast" } else { "slow" },
                    lo,
                    last,
                    cpu,
                )],
                start_offset: SimDuration::from_millis(80 * i),
            }
        })
        .collect();

    let modes: Vec<(&str, SharingMode)> = vec![
        ("base", SharingMode::Base),
        (
            "attach (QPipe [19])",
            SharingMode::ScanSharing(SharingConfig::attach_baseline(0)),
        ),
        ("full SS (paper)", ss_mode()),
    ];

    let mut rows = Vec::new();
    for (wname, streams) in [
        ("homogeneous", &homogeneous),
        ("heterogeneous", &heterogeneous),
    ] {
        println!("\n== A8/{wname}: 4 overlapping 2-year scans ==");
        println!(
            "{:<22} {:>10} {:>12} {:>8}",
            "mode", "time (s)", "pages read", "gain"
        );
        let mut base_time = 0.0;
        for (mname, mode) in &modes {
            let spec = WorkloadSpec {
                streams: streams.clone(),
                pool_pages: paper_pool_pages(&db),
                engine: Default::default(),
                mode: mode.clone(),
                faults: Default::default(),
                slo: Default::default(),
            };
            let r = run_workload(&db, &spec).expect("run");
            let t = r.makespan.as_secs_f64();
            if base_time == 0.0 {
                base_time = t;
            }
            println!(
                "{:<22} {:>10.2} {:>12} {:>7.1}%",
                mname,
                t,
                r.disk.pages_read,
                pct_gain(base_time, t)
            );
            rows.push(AttachRow {
                workload: wname.to_string(),
                mode: mname.to_string(),
                makespan_s: t,
                pages_read: r.disk.pages_read,
                gain_vs_base_pct: pct_gain(base_time, t),
            });
        }
    }
    println!("\nexpected shape: attach ~ full SS on homogeneous speeds; on mixed");
    println!("speeds attach drifts apart and the paper's throttled groups win.");
    dump_json("attach", &rows);
}
