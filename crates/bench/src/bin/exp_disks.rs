//! A6: sharing gains vs storage parallelism.
//!
//! The paper's two boxes differ in storage (FAStT manager vs 16 SSA
//! disks). This experiment scales the striped array from 1 to 16 disks
//! and re-measures the 5-stream Table 1 comparison. More spindles soak
//! up contention until the run turns CPU-bound and the *time* gain
//! fades; the *read* savings persist at every width — which is the
//! paper's "reduced disk utilization may be used to scale to a larger
//! number of streams with the same hardware" point seen from the other
//! side.

use scanshare_bench::*;
use scanshare_engine::{run_workload, EngineConfig, SharingMode, WorkloadSpec};
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct DiskRow {
    n_disks: u32,
    base_s: f64,
    ss_s: f64,
    gain_pct: f64,
    base_reads: u64,
    ss_reads: u64,
}

fn with_disks(spec: &WorkloadSpec, n: u32) -> WorkloadSpec {
    WorkloadSpec {
        engine: EngineConfig {
            n_disks: n,
            ..spec.engine.clone()
        },
        ..spec.clone()
    }
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;
    let base = throughput_workload(&db, 5, months, cfg.seed, SharingMode::Base);
    let ss = throughput_workload(&db, 5, months, cfg.seed, ss_mode());

    println!("\n== A6: sharing gain vs number of disks (5-stream TPC-H) ==");
    println!(
        "{:<8} {:>11} {:>11} {:>8} {:>12} {:>12}",
        "disks", "base (s)", "SS (s)", "gain", "base reads", "SS reads"
    );
    let mut rows = Vec::new();
    for n in [1u32, 2, 4, 8, 16] {
        let rb = run_workload(&db, &with_disks(&base, n)).expect("base");
        let rs = run_workload(&db, &with_disks(&ss, n)).expect("ss");
        let b = rb.makespan.as_secs_f64();
        let s = rs.makespan.as_secs_f64();
        println!(
            "{:<8} {:>11.2} {:>11.2} {:>7.1}% {:>12} {:>12}",
            n,
            b,
            s,
            pct_gain(b, s),
            rb.disk.pages_read,
            rs.disk.pages_read
        );
        rows.push(DiskRow {
            n_disks: n,
            base_s: b,
            ss_s: s,
            gain_pct: pct_gain(b, s),
            base_reads: rb.disk.pages_read,
            ss_reads: rs.disk.pages_read,
        });
    }
    println!("\nshape: end-to-end gains are large while the disk is the bottleneck and");
    println!("fade once enough spindles make the run CPU-bound — but the ~28% read");
    println!("savings persist at every width, which is the capacity the paper says can");
    println!("be spent on more streams with the same hardware.");
    dump_json("disks", &rows);
}
