//! A1: ablation of the three mechanisms.
//!
//! DESIGN.md calls out three separable design choices: placement (start
//! new scans at ongoing scans' positions), throttling (slow drifting
//! leaders), and page re-prioritization (leaders high / trailers low).
//! This experiment toggles each alone and all together on the 5-stream
//! TPC-H run.

use scanshare::SharingConfig;
use scanshare_bench::*;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    variant: String,
    makespan_s: f64,
    pages_read: u64,
    seeks: u64,
    end_to_end_gain_pct: f64,
    read_gain_pct: f64,
}

fn variant(
    name: &str,
    placement: bool,
    throttling: bool,
    priorities: bool,
) -> (String, SharingMode) {
    (
        name.to_string(),
        SharingMode::ScanSharing(SharingConfig {
            enable_placement: placement,
            enable_throttling: throttling,
            enable_priorities: priorities,
            ..SharingConfig::new(0)
        }),
    )
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;

    let variants = vec![
        ("base".to_string(), SharingMode::Base),
        variant("placement only", true, false, false),
        variant("throttling only", false, true, false),
        variant("priorities only", false, false, true),
        variant("placement+throttling", true, true, false),
        variant("all (full SS)", true, true, true),
    ];

    println!("\n== A1: mechanism ablation (5-stream TPC-H) ==");
    println!(
        "{:<22} {:>10} {:>12} {:>8} {:>8} {:>8}",
        "variant", "time (s)", "pages read", "seeks", "t-gain", "r-gain"
    );
    let mut rows = Vec::new();
    let mut base_time = 0.0;
    let mut base_reads = 0u64;
    for (name, mode) in variants {
        let spec = throughput_workload(&db, 5, months, cfg.seed, mode);
        let r = run_workload(&db, &spec).expect("run");
        let t = r.makespan.as_secs_f64();
        if name == "base" {
            base_time = t;
            base_reads = r.disk.pages_read;
        }
        let tg = pct_gain(base_time, t);
        let rg = pct_gain(base_reads as f64, r.disk.pages_read as f64);
        println!(
            "{:<22} {:>10.2} {:>12} {:>8} {:>7.1}% {:>7.1}%",
            name, t, r.disk.pages_read, r.disk.seeks, tg, rg
        );
        rows.push(AblationRow {
            variant: name,
            makespan_s: t,
            pages_read: r.disk.pages_read,
            seeks: r.disk.seeks,
            end_to_end_gain_pct: tg,
            read_gain_pct: rg,
        });
    }
    println!("\nexpected shape: placement delivers the bulk; throttling and priorities");
    println!("compound it by keeping joined scans together and protecting their pages.");
    dump_json("ablation", &rows);
}
