//! Figure 18: disk seeks per time unit, base vs SS.
//!
//! The paper: "with our prototype, scans are synchronized and thus tend
//! to reuse the pages demanded by each other … they demand [the same
//! page set] in such an order that the disk has to seek less often."

use scanshare_bench::*;
use scanshare_engine::SharingMode;
use scanshare_tpch::throughput_workload;
use serde::Serialize;

#[derive(Serialize)]
struct Fig18 {
    bucket_seconds: f64,
    base_seeks_per_bucket: Vec<u64>,
    ss_seeks_per_bucket: Vec<u64>,
    base_total_seeks: u64,
    ss_total_seeks: u64,
}

fn main() {
    let cfg = experiment_config();
    let db = build_database(&cfg);
    let months = cfg.months as i64;
    let base = throughput_workload(&db, 5, months, cfg.seed, SharingMode::Base);
    let ss = throughput_workload(&db, 5, months, cfg.seed, ss_mode());
    let (rb, rs) = run_pair(&db, &base, &ss);

    println!("\n== Figure 18: disk seeks per time unit ==");
    let peak = rb
        .seek_series
        .buckets()
        .iter()
        .chain(rs.seek_series.buckets())
        .copied()
        .max()
        .unwrap_or(1);
    println!("{}", ascii_series("base", &rb.seek_series, 64, peak));
    println!("{}", ascii_series("SS", &rs.seek_series, 64, peak));
    println!(
        "totals: base {} seeks, SS {} seeks ({:.1}% fewer)",
        rb.disk.seeks,
        rs.disk.seeks,
        pct_gain(rb.disk.seeks as f64, rs.disk.seeks as f64)
    );
    println!("paper reports: seeks much reduced during most time intervals.");

    println!("\n t(s)   base seeks   SS seeks");
    let b = rb.seek_series.buckets();
    let s = rs.seek_series.buckets();
    for i in 0..b.len().max(s.len()) {
        println!(
            "{:>5} {:>11} {:>10}",
            i,
            b.get(i).copied().unwrap_or(0),
            s.get(i).copied().unwrap_or(0)
        );
    }

    dump_json(
        "fig18",
        &Fig18 {
            bucket_seconds: rb.seek_series.bucket_us() as f64 / 1e6,
            base_seeks_per_bucket: b.to_vec(),
            ss_seeks_per_bucket: s.to_vec(),
            base_total_seeks: rb.disk.seeks,
            ss_total_seeks: rs.disk.seeks,
        },
    );
}
