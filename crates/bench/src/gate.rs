//! CI performance-regression gate.
//!
//! `bench_gate` runs a pinned, fully deterministic smoke workload (the
//! simulator runs on virtual time, so the numbers are bit-identical
//! across machines), extracts headline metrics from the base and
//! scan-sharing runs, and diffs them against a committed baseline with
//! per-metric tolerances. CI fails when a metric regresses past its
//! tolerance — a makespan that grew, a hit ratio or sharing gain that
//! shrank — catching performance regressions the way unit tests catch
//! functional ones.

use scanshare_engine::metrics::gain;
use scanshare_engine::RunReport;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Which direction is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Better {
    /// Smaller is better (times, reads, seeks).
    Lower,
    /// Larger is better (hit ratios, gains).
    Higher,
}

/// One gated metric: its value, direction, and allowed drift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateMetric {
    /// Metric name (stable across runs; the diff key).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Improvement direction.
    pub better: Better,
    /// Allowed drift in the *worse* direction, as a percentage of the
    /// baseline's absolute value.
    pub tolerance_pct: f64,
}

/// Host wall-clock throughput of the run that produced a baseline.
///
/// Structured counterpart of the informational line `bench_gate` prints:
/// committed so drifts are visible in review diffs, but **never gated**
/// (tolerance is effectively infinite) because wall time varies with the
/// host machine — only virtual-time metrics are deterministic enough to
/// fail CI on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallSection {
    /// Wall milliseconds for the base + scan-sharing smoke pair.
    pub wall_ms: f64,
    /// Simulated pages per wall-second across both runs.
    pub pages_per_wall_sec: f64,
    /// Worker threads the pair ran on.
    pub jobs: u64,
}

/// Who wrote a baseline, and when: stamped by `bench_gate
/// --write-baseline` (and therefore `scripts/bench_gate.sh
/// --rebaseline`) so future diffs can say what a baseline came from.
/// Purely informational — [`compare`] never reads it, and baselines
/// written before the section existed still parse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Git commit of the tree the baseline was measured on.
    pub git_sha: String,
    /// ISO-8601 UTC timestamp of the rebaseline.
    pub recorded_at: String,
    /// Worker threads the measuring run used.
    pub jobs: u64,
}

/// A committed performance baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateBaseline {
    /// Where the numbers came from (workload, scale, seed).
    pub description: String,
    /// The gated metrics.
    pub metrics: Vec<GateMetric>,
    /// Informational wall-clock numbers; absent in older baselines and
    /// ignored by [`compare`].
    #[serde(default)]
    pub wall: Option<WallSection>,
    /// Who/when/how the baseline was written; absent in older baselines
    /// and ignored by [`compare`].
    #[serde(default)]
    pub provenance: Option<Provenance>,
}

/// One metric's comparison against the baseline.
#[derive(Debug, Clone, Serialize)]
pub struct GateDiff {
    /// Metric name.
    pub name: String,
    /// Committed value.
    pub baseline: f64,
    /// Value measured now (`None`: the metric disappeared).
    pub current: Option<f64>,
    /// Allowed drift.
    pub tolerance_pct: f64,
    /// Relative change in percent (positive = value grew).
    pub delta_pct: f64,
    /// Whether this metric fails the gate.
    pub regressed: bool,
}

/// Extract the gated metrics from a base/scan-sharing run pair. The
/// tolerances encode how much each headline number may drift before CI
/// fails: timing 5 %, I/O counts 2 %, ratios and gains 10 % relative.
pub fn collect_metrics(base: &RunReport, ss: &RunReport) -> Vec<GateMetric> {
    let m = |name: &str, value: f64, better: Better, tolerance_pct: f64| GateMetric {
        name: name.to_string(),
        value,
        better,
        tolerance_pct,
    };
    vec![
        m(
            "base_makespan_us",
            base.makespan.as_micros() as f64,
            Better::Lower,
            5.0,
        ),
        m(
            "ss_makespan_us",
            ss.makespan.as_micros() as f64,
            Better::Lower,
            5.0,
        ),
        m(
            "base_pages_read",
            base.disk.pages_read as f64,
            Better::Lower,
            2.0,
        ),
        m(
            "ss_pages_read",
            ss.disk.pages_read as f64,
            Better::Lower,
            2.0,
        ),
        m("ss_seeks", ss.disk.seeks as f64, Better::Lower, 5.0),
        m(
            "ss_hit_ratio_pct",
            ss.pool.hit_ratio() * 100.0,
            Better::Higher,
            10.0,
        ),
        m(
            "gain_time_pct",
            gain(
                base.makespan.as_micros() as f64,
                ss.makespan.as_micros() as f64,
            ) * 100.0,
            Better::Higher,
            10.0,
        ),
        m(
            "gain_reads_pct",
            gain(base.disk.pages_read as f64, ss.disk.pages_read as f64) * 100.0,
            Better::Higher,
            10.0,
        ),
    ]
}

/// Diff current metrics against a baseline. Every baseline metric must
/// be present and within tolerance; metrics only present in `current`
/// are ignored (they will be gated once committed to the baseline).
pub fn compare(baseline: &GateBaseline, current: &[GateMetric]) -> Vec<GateDiff> {
    baseline
        .metrics
        .iter()
        .map(|b| {
            let cur = current.iter().find(|c| c.name == b.name);
            let slack = b.value.abs() * b.tolerance_pct / 100.0;
            let (current_value, regressed, delta_pct) = match cur {
                None => (None, true, 0.0),
                Some(c) => {
                    let regressed = match b.better {
                        Better::Lower => c.value > b.value + slack,
                        Better::Higher => c.value < b.value - slack,
                    };
                    let delta_pct = if b.value.abs() > f64::EPSILON {
                        (c.value - b.value) / b.value.abs() * 100.0
                    } else {
                        0.0
                    };
                    (Some(c.value), regressed, delta_pct)
                }
            };
            GateDiff {
                name: b.name.clone(),
                baseline: b.value,
                current: current_value,
                tolerance_pct: b.tolerance_pct,
                delta_pct,
                regressed,
            }
        })
        .collect()
}

/// Whether any diff fails the gate.
pub fn has_regression(diffs: &[GateDiff]) -> bool {
    diffs.iter().any(|d| d.regressed)
}

/// Render the diff table, flagging regressions.
pub fn render_diffs(description: &str, diffs: &[GateDiff]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "perf gate vs baseline: {description}");
    let _ = writeln!(
        out,
        "{:<20} {:>14} {:>14} {:>9} {:>7}  verdict",
        "metric", "baseline", "current", "delta", "tol"
    );
    for d in diffs {
        let current = match d.current {
            Some(v) => format!("{v:.2}"),
            None => "missing".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<20} {:>14.2} {:>14} {:>8.2}% {:>6.1}%  {}",
            d.name,
            d.baseline,
            current,
            d.delta_pct,
            d.tolerance_pct,
            if d.regressed { "REGRESSED" } else { "ok" }
        );
    }
    let n = diffs.iter().filter(|d| d.regressed).count();
    if n > 0 {
        let _ = writeln!(out, "FAIL: {n} metric(s) regressed past tolerance");
    } else {
        let _ = writeln!(out, "PASS: all {} metrics within tolerance", diffs.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &str, value: f64, better: Better, tol: f64) -> GateMetric {
        GateMetric {
            name: name.into(),
            value,
            better,
            tolerance_pct: tol,
        }
    }

    fn baseline() -> GateBaseline {
        GateBaseline {
            description: "test".into(),
            metrics: vec![
                metric("time", 100.0, Better::Lower, 5.0),
                metric("hit", 80.0, Better::Higher, 10.0),
            ],
            wall: None,
            provenance: None,
        }
    }

    #[test]
    fn within_tolerance_passes_both_directions() {
        let current = vec![
            metric("time", 104.9, Better::Lower, 5.0),
            metric("hit", 72.1, Better::Higher, 10.0),
        ];
        let diffs = compare(&baseline(), &current);
        assert!(!has_regression(&diffs));
        assert!((diffs[0].delta_pct - 4.9).abs() < 1e-9);
        // Improvements never fail, however large.
        let better = vec![
            metric("time", 10.0, Better::Lower, 5.0),
            metric("hit", 99.0, Better::Higher, 10.0),
        ];
        assert!(!has_regression(&compare(&baseline(), &better)));
    }

    #[test]
    fn past_tolerance_fails_in_the_worse_direction_only() {
        let slow = vec![
            metric("time", 105.1, Better::Lower, 5.0),
            metric("hit", 80.0, Better::Higher, 10.0),
        ];
        let diffs = compare(&baseline(), &slow);
        assert!(diffs[0].regressed && !diffs[1].regressed);
        let cold = vec![
            metric("time", 100.0, Better::Lower, 5.0),
            metric("hit", 71.9, Better::Higher, 10.0),
        ];
        let diffs = compare(&baseline(), &cold);
        assert!(!diffs[0].regressed && diffs[1].regressed);
    }

    #[test]
    fn missing_metric_regresses_and_extra_metrics_are_ignored() {
        let current = vec![
            metric("time", 100.0, Better::Lower, 5.0),
            metric("brand_new", 1.0, Better::Lower, 5.0),
        ];
        let diffs = compare(&baseline(), &current);
        assert_eq!(diffs.len(), 2);
        let hit = diffs.iter().find(|d| d.name == "hit").unwrap();
        assert!(hit.regressed && hit.current.is_none());
        assert!(!diffs.iter().any(|d| d.name == "brand_new"));
    }

    #[test]
    fn negative_baselines_use_absolute_slack() {
        // A negative gain (sharing currently hurts) still gates sanely:
        // Higher-is-better with baseline -10 and 10% tolerance allows
        // down to -11.
        let b = GateBaseline {
            description: "neg".into(),
            metrics: vec![metric("gain", -10.0, Better::Higher, 10.0)],
            wall: None,
            provenance: None,
        };
        assert!(!has_regression(&compare(
            &b,
            &[metric("gain", -10.9, Better::Higher, 10.0)]
        )));
        assert!(has_regression(&compare(
            &b,
            &[metric("gain", -11.1, Better::Higher, 10.0)]
        )));
    }

    #[test]
    fn render_names_verdicts_and_baseline_round_trips_json() {
        let diffs = compare(&baseline(), &[metric("time", 200.0, Better::Lower, 5.0)]);
        let text = render_diffs("test", &diffs);
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("missing"));
        let json = serde_json::to_string_pretty(&baseline()).unwrap();
        let back: GateBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, baseline());
    }

    #[test]
    fn wall_section_is_optional_and_never_gated() {
        // Baselines written before the wall section still parse.
        let legacy = r#"{"description": "old", "metrics": []}"#;
        let b: GateBaseline = serde_json::from_str(legacy).unwrap();
        assert!(b.wall.is_none());
        // A populated wall section round-trips and plays no part in the
        // gate verdict, however wildly the host numbers differ.
        let mut with = baseline();
        with.wall = Some(WallSection {
            wall_ms: 12.5,
            pages_per_wall_sec: 1.5e6,
            jobs: 2,
        });
        let json = serde_json::to_string(&with).unwrap();
        assert!(json.contains("pages_per_wall_sec"), "got: {json}");
        let back: GateBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with);
        let same_metrics = with.metrics.clone();
        assert!(!has_regression(&compare(&with, &same_metrics)));
    }

    #[test]
    fn provenance_is_optional_round_trips_and_is_never_gated() {
        // Pre-provenance baselines still parse.
        let legacy = r#"{"description": "old", "metrics": []}"#;
        let b: GateBaseline = serde_json::from_str(legacy).unwrap();
        assert!(b.provenance.is_none());
        // A stamped baseline round-trips and never changes a verdict.
        let mut with = baseline();
        with.provenance = Some(Provenance {
            git_sha: "ba0b607aaaaa".into(),
            recorded_at: "2026-08-09T12:00:00Z".into(),
            jobs: 2,
        });
        let json = serde_json::to_string(&with).unwrap();
        assert!(json.contains("recorded_at"), "got: {json}");
        let back: GateBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with);
        let same_metrics = with.metrics.clone();
        assert!(!has_regression(&compare(&with, &same_metrics)));
    }
}
