//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one experiment:
//!
//! | binary         | paper artifact |
//! |----------------|----------------|
//! | `exp_overhead` | §8 text: single-stream overhead well below 1 % |
//! | `exp_fig15`    | Figure 15: 3 staggered Q6 streams (I/O-intensive) |
//! | `exp_fig16`    | Figure 16: 3 staggered Q1 streams (CPU-intensive) |
//! | `exp_fig17`    | Figure 17: disk reads over time, base vs SS |
//! | `exp_fig18`    | Figure 18: disk seeks over time, base vs SS |
//! | `exp_table1`   | Table 1: 5-stream TPC-H end-to-end/read/seek gains |
//! | `exp_fig19`    | Figure 19: per-stream gains |
//! | `exp_fig20`    | Figure 20: per-query gains |
//! | `exp_fig8_9`   | Figures 8/9: sharing-potential estimates |
//! | `exp_ablation` | A1: placement / throttling / priorities toggles |
//! | `exp_scope`    | A2: table-scan-only (ICDE) vs +index (VLDB) scope |
//! | `exp_fairness` | A3: fairness-cap sweep |
//! | `exp_policy`   | A9: sharing-policy ablation (grouping / attach / elevator) |
//!
//! Every binary prints a human-readable table and writes the raw numbers
//! as JSON under `results/`. Scale via `SCANSHARE_SCALE` (default 1.0)
//! and seed via `SCANSHARE_SEED` (default 42).

pub mod gate;
pub mod history;
pub mod micro;
pub mod stats;

use scanshare::SharingConfig;
use scanshare_engine::{run_workload, Database, RunReport, SharingMode, WorkloadSpec};
use scanshare_storage::TimeSeries;
use scanshare_tpch::{generate, TpchConfig};
use serde::Serialize;

/// Scale/seed configuration read from the environment.
pub fn experiment_config() -> TpchConfig {
    let scale: f64 = std::env::var("SCANSHARE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let seed: u64 = std::env::var("SCANSHARE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    TpchConfig {
        scale,
        seed,
        ..TpchConfig::default()
    }
}

/// Generate the experiment database, logging its size.
pub fn build_database(cfg: &TpchConfig) -> Database {
    eprintln!(
        "generating TPC-H-like database (scale {}, seed {}) ...",
        cfg.scale, cfg.seed
    );
    let db = generate(cfg);
    eprintln!(
        "  tables: {:?}, total pages: {}",
        db.table_names(),
        db.total_table_pages()
    );
    db
}

/// The full-featured scan-sharing mode (pool size filled in by the run).
pub fn ss_mode() -> SharingMode {
    SharingMode::ScanSharing(SharingConfig::new(0))
}

/// [`ss_mode`] with push delivery: one group driver fixes each page
/// once and pushes it through every attached consumer's row pipeline.
pub fn push_mode() -> SharingMode {
    let mut cfg = SharingConfig::new(0);
    cfg.delivery = scanshare::DeliveryMode::Push;
    SharingMode::ScanSharing(cfg)
}

/// Worker threads for fanning a sweep's independent runs out in
/// parallel: `SCANSHARE_JOBS` (default 1). Every run is a deterministic
/// simulation over virtual time, so the job count changes only the
/// sweep's wall-clock time, never a reported number.
pub fn sweep_jobs() -> usize {
    std::env::var("SCANSHARE_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or(1)
}

/// Stagger offset proportional to a query's solo runtime: run the query
/// once alone and take `frac` of its elapsed time. The paper staggers by
/// 10 s against a 100 GB database; a fixed fraction keeps the overlap
/// geometry identical across scales.
pub fn calibrated_stagger(
    db: &Database,
    query: &scanshare_engine::Query,
    frac: f64,
) -> scanshare_storage::SimDuration {
    let solo = scanshare_tpch::staggered_workload(
        db,
        query,
        1,
        scanshare_storage::SimDuration::ZERO,
        SharingMode::Base,
    );
    let r = run_workload(db, &solo).expect("solo calibration run");
    let us = (r.makespan.as_micros() as f64 * frac) as u64;
    eprintln!(
        "calibration: solo run {:.2}s -> stagger {:.2}s",
        r.makespan.as_secs_f64(),
        us as f64 / 1e6
    );
    scanshare_storage::SimDuration::from_micros(us.max(1))
}

/// Run base and scan-sharing variants of a workload. When the binary was
/// invoked with `--metrics-out PATH` (or `SCANSHARE_METRICS_OUT` is set),
/// both runs' observability snapshots are appended to that file as
/// labeled JSON-lines.
pub fn run_pair(db: &Database, base: &WorkloadSpec, ss: &WorkloadSpec) -> (RunReport, RunReport) {
    eprintln!("running base ...");
    let rb = run_workload(db, base).expect("base run");
    eprintln!(
        "  base makespan: {} ({} pages read, {} seeks)",
        rb.makespan, rb.disk.pages_read, rb.disk.seeks
    );
    eprintln!("running scan-sharing ...");
    let rs = run_workload(db, ss).expect("ss run");
    eprintln!(
        "  ss makespan:   {} ({} pages read, {} seeks)",
        rs.makespan, rs.disk.pages_read, rs.disk.seeks
    );
    record_metrics("base", &rb);
    record_metrics("scan-sharing", &rs);
    record_history(&rb, &rs);
    (rb, rs)
}

/// Extract `--metrics-out PATH` from an argument vector.
pub fn metrics_out_from(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The metrics sink path, resolved once per process: `--metrics-out`
/// beats `SCANSHARE_METRICS_OUT`. The file is truncated on first use so
/// each experiment invocation starts a fresh log.
fn metrics_out_file() -> Option<&'static str> {
    static PATH: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let argv: Vec<String> = std::env::args().collect();
        let path =
            metrics_out_from(&argv).or_else(|| std::env::var("SCANSHARE_METRICS_OUT").ok())?;
        if let Err(e) = std::fs::write(&path, "") {
            eprintln!("cannot open metrics sink {path}: {e}");
            return None;
        }
        Some(path)
    })
    .as_deref()
}

/// Append one labeled metrics snapshot to the `--metrics-out` sink (a
/// no-op when none is configured). Public so experiment binaries can log
/// runs that do not go through [`run_pair`].
pub fn record_metrics(label: &str, report: &RunReport) {
    let Some(path) = metrics_out_file() else {
        return;
    };
    #[derive(Serialize)]
    struct Line {
        label: String,
        makespan_us: u64,
        metrics: scanshare::MetricsSnapshot,
    }
    let line = Line {
        label: label.to_string(),
        makespan_us: report.makespan.as_micros(),
        metrics: report.metrics.clone(),
    };
    match serde_json::to_string(&line) {
        Ok(json) => {
            use std::io::Write as _;
            if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(path) {
                let _ = writeln!(f, "{json}");
                eprintln!("  metrics[{label}] appended to {path}");
            }
        }
        Err(e) => eprintln!("metrics serialize failed: {e}"),
    }
}

/// Extract `--history PATH` from an argument vector.
pub fn history_out_from(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--history")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The run-history ledger path, resolved once per process:
/// `--history` beats `SCANSHARE_HISTORY`. Unlike the metrics sink the
/// ledger is append-only — it accumulates trajectory across
/// invocations, so it is never truncated here.
fn history_out_file() -> Option<&'static str> {
    static PATH: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let argv: Vec<String> = std::env::args().collect();
        history_out_from(&argv).or_else(|| std::env::var("SCANSHARE_HISTORY").ok())
    })
    .as_deref()
}

/// Append a [`history::HistoryEntry`] for a base/scan-sharing pair to
/// the `--history` (or `SCANSHARE_HISTORY`) ledger — a no-op when none
/// is configured. The entry carries the same 8 virtual-clock metrics
/// the CI gate pins, stamped with the producing binary's name and the
/// working tree's git SHA, so every `exp_*` sweep can feed the same
/// trajectory `scanshare history` renders.
pub fn record_history(base: &RunReport, ss: &RunReport) {
    let Some(path) = history_out_file() else {
        return;
    };
    let source = std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let entry = history::HistoryEntry {
        git_sha: history::git_sha(),
        recorded_at: history::utc_now_iso(),
        source,
        policy: ss.policy.map(|p| p.to_string()),
        faults: None,
        // A push-mode run stamps its summary on the report; pull runs
        // stay untagged so old and new ledgers trend the same series.
        delivery: ss.push.as_ref().map(|_| "push".to_string()),
        metrics: gate::collect_metrics(base, ss)
            .into_iter()
            .map(|m| history::MetricSample {
                name: m.name,
                value: m.value,
            })
            .collect(),
        wall: None,
    };
    match history::append(path, &entry) {
        Ok(()) => eprintln!("  history entry appended to {path}"),
        Err(e) => eprintln!("history append failed: {e}"),
    }
}

/// Percent improvement of `ss` over `base`.
pub fn pct_gain(base: f64, ss: f64) -> f64 {
    scanshare_engine::metrics::gain(base, ss) * 100.0
}

/// Render a compact ASCII bar chart of a series (re-binned to `bins`).
pub fn ascii_series(label: &str, series: &TimeSeries, bins: usize, peak: u64) -> String {
    let data = series.rebin(bins);
    let peak = peak.max(1);
    let ramp: &[u8] = b" .:-=+*#%@";
    let mut out = format!("{label:>6} |");
    for v in &data {
        let h = ((v * 9) / peak).min(9) as usize;
        out.push(ramp[h] as char);
    }
    out.push('|');
    out
}

/// Write an experiment's raw numbers to `results/<name>.json`.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if std::fs::write(&path, s).is_ok() {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("json dump failed: {e}"),
    }
}

/// A two-column (base vs SS) summary row.
#[derive(Debug, Serialize)]
pub struct GainRow {
    /// Metric name.
    pub metric: String,
    /// Base value.
    pub base: f64,
    /// Scan-sharing value.
    pub ss: f64,
    /// Percent gain.
    pub gain_pct: f64,
}

impl GainRow {
    /// Build a row.
    pub fn new(metric: impl Into<String>, base: f64, ss: f64) -> Self {
        let metric = metric.into();
        GainRow {
            gain_pct: pct_gain(base, ss),
            metric,
            base,
            ss,
        }
    }
}

/// Print rows as an aligned table.
pub fn print_gain_table(title: &str, rows: &[GainRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "metric", "base", "scan-sharing", "gain"
    );
    for r in rows {
        println!(
            "{:<28} {:>14.2} {:>14.2} {:>8.1}%",
            r.metric, r.base, r.ss, r.gain_pct
        );
    }
}

/// Print the CPU breakdown of a run as percentages (Figures 15/16 left).
pub fn print_breakdown(label: &str, report: &RunReport) {
    let (u, s, i, w) = report.breakdown.percentages();
    println!("{label:<6} user {u:5.1}%  system {s:5.1}%  idle {i:5.1}%  iowait {w:5.1}%");
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_storage::SimTime;

    #[test]
    fn metrics_out_flag_is_extracted_from_argv() {
        let args = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        assert_eq!(
            metrics_out_from(&args("exp_table1 --metrics-out m.jsonl")),
            Some("m.jsonl".into())
        );
        assert_eq!(metrics_out_from(&args("exp_table1")), None);
        assert_eq!(metrics_out_from(&args("exp_table1 --metrics-out")), None);
    }

    #[test]
    fn gain_row_computes_percentage() {
        let r = GainRow::new("x", 100.0, 79.0);
        assert!((r.gain_pct - 21.0).abs() < 1e-9);
    }

    #[test]
    fn ascii_series_is_fixed_width() {
        let mut s = TimeSeries::new(1000);
        for i in 0..100 {
            s.add(SimTime::from_micros(i * 1000), i);
        }
        let line = ascii_series("base", &s, 40, s.buckets().iter().copied().max().unwrap());
        assert_eq!(line.chars().filter(|&c| c == '|').count(), 2);
        assert!(line.len() >= 40);
    }
}
