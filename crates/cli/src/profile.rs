//! Self-profiler rendering for `scanshare profile`.
//!
//! Turns a [`ProfileSummary`] — either embedded in a saved report by
//! `run --profile-out` or freshly recorded by `profile --smoke` — into
//! a per-phase cost table (both clocks) and, with `--collapse`, the
//! folded-stack text that flamegraph tooling consumes directly.

use scanshare::ProfileSummary;
use std::fmt::Write;

fn vt_secs(us: u64) -> f64 {
    us as f64 / 1e6
}

fn wall_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render the per-phase table: virtual inclusive/exclusive time with
/// share-of-total, and — when the summary still carries its wall-clock
/// section — host-side exclusive milliseconds with share-of-recording.
///
/// Virtual exclusive percentages can sum past 100%: concurrently
/// simulated streams each bank their own virtual time (stream-seconds),
/// while the wall column always partitions the single-threaded
/// recording exactly.
pub fn render_profile(sum: &ProfileSummary, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== span profile: {} spans ({} dropped), total virtual time {:.3}s ==",
        sum.spans,
        sum.dropped,
        vt_secs(sum.total_vt_us),
    );
    let name_w = sum
        .phases
        .iter()
        .map(|p| p.name.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let _ = writeln!(
        out,
        "  {:<name_w$} {:>8} {:>12} {:>12} {:>7} {:>14} {:>7}",
        "phase", "count", "vt incl(s)", "vt excl(s)", "vt%", "wall excl(ms)", "wall%"
    );
    let total_vt = sum.total_vt_us.max(1) as f64;
    for (i, p) in sum.phases.iter().enumerate() {
        let (wall_col, wall_pct) = match &sum.wall {
            Some(w) => {
                let ph = w.phases.get(i).filter(|wp| wp.name == p.name);
                let excl = ph.map(|wp| wp.excl_ns).unwrap_or(0);
                (
                    format!("{:>14.3}", wall_ms(excl)),
                    format!("{:>6.1}%", excl as f64 * 100.0 / w.total_ns.max(1) as f64),
                )
            }
            None => (format!("{:>14}", "-"), format!("{:>7}", "-")),
        };
        let _ = writeln!(
            out,
            "  {:<name_w$} {:>8} {:>12.3} {:>12.3} {:>6.1}% {wall_col} {wall_pct}",
            p.name,
            p.count,
            vt_secs(p.vt_incl_us),
            vt_secs(p.vt_excl_us),
            p.vt_excl_us as f64 * 100.0 / total_vt,
        );
    }
    let hottest = &sum.hottest[..top.min(sum.hottest.len())];
    if !hottest.is_empty() {
        let _ = writeln!(out, "\n== hottest spans (top {}) ==", hottest.len());
        for h in hottest {
            let _ = writeln!(
                out,
                "  {:<20} {:<10} start {:>9.3}s  {:>9.3}s",
                h.name,
                h.track.label(),
                vt_secs(h.vt_start_us),
                vt_secs(h.vt_us),
            );
        }
    }
    out
}

/// Render the folded flamegraph stacks (`a;b;c <µs>` per line) — the
/// exact input format of `flamegraph.pl` / speedscope.
pub fn render_collapsed(sum: &ProfileSummary) -> String {
    sum.collapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare::{SpanProfiler, Track};
    use scanshare_storage::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn sample() -> ProfileSummary {
        let p = SpanProfiler::default();
        let root = p.begin(Track::Driver, "engine.run", t(0));
        let step = p.begin(Track::Stream(0), "scan.step", t(0));
        let fetch = p.begin_child("extent.fetch", t(0));
        p.end(fetch, t(700));
        p.end(step, t(1_000));
        p.end(root, t(1_500));
        p.summary()
    }

    #[test]
    fn table_names_phases_and_both_clocks() {
        let text = render_profile(&sample(), 10);
        assert!(text.contains("3 spans"), "got: {text}");
        assert!(text.contains("total virtual time 0.002s"), "got: {text}");
        for phase in ["engine.run", "scan.step", "extent.fetch"] {
            assert!(text.contains(phase), "missing {phase}: {text}");
        }
        assert!(text.contains("wall excl(ms)"), "got: {text}");
        assert!(text.contains("hottest spans"), "got: {text}");
    }

    #[test]
    fn stripped_summary_renders_dashes_for_wall() {
        let text = render_profile(&sample().virtual_only(), 2);
        assert!(text.contains('-'), "got: {text}");
        assert!(text.contains("hottest spans (top 2)"), "got: {text}");
    }

    #[test]
    fn collapsed_is_flamegraph_folded_format() {
        let folded = render_collapsed(&sample());
        assert!(
            folded.contains("engine.run;scan.step;extent.fetch 700"),
            "got: {folded}"
        );
        for line in folded.lines() {
            let (_, n) = line.rsplit_once(' ').expect("stack <µs>");
            n.parse::<u64>().expect("exclusive µs");
        }
    }
}
