//! Library half of the `scanshare` command-line driver.
//!
//! The CLI runs scan-sharing comparisons without writing any Rust:
//!
//! ```sh
//! scanshare throughput --streams 5 --scale 0.5      # Table-1-style run
//! scanshare staggered --query q6 --copies 3         # Figure-15-style run
//! scanshare spec-template > myrun.json              # editable spec
//! scanshare run --spec myrun.json --compare         # base vs sharing
//! ```
//!
//! Argument parsing is hand-rolled (no extra dependencies): flags are
//! `--name value` pairs validated against each subcommand's schema.

use scanshare::SharingConfig;
use scanshare_engine::{run_workload, Database, RunReport, SharingMode, WorkloadSpec};
use scanshare_tpch::{generate, q1, q6, staggered_workload, throughput_workload, TpchConfig};
use serde::{Deserialize, Serialize};

/// A self-contained run description: the database to generate plus the
/// workload to execute against it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSpec {
    /// Data generator configuration.
    pub tpch: TpchConfig,
    /// The workload (streams, pool, engine, mode).
    pub workload: WorkloadSpec,
}

impl RunSpec {
    /// A small editable example spec.
    pub fn template() -> Self {
        let tpch = TpchConfig {
            scale: 0.2,
            ..TpchConfig::default()
        };
        let db = generate(&tpch);
        let workload = throughput_workload(
            &db,
            2,
            tpch.months as i64,
            tpch.seed,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        RunSpec { tpch, workload }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `throughput --streams N --scale S --seed X` (always compares
    /// base vs scan-sharing — that is the point of the run)
    Throughput {
        streams: usize,
        scale: f64,
        seed: u64,
    },
    /// `staggered --query q1|q6 --copies N --scale S [--stagger-frac F]`
    Staggered {
        query: String,
        copies: usize,
        scale: f64,
        seed: u64,
        stagger_frac: f64,
    },
    /// `run --spec FILE [--db FILE] [--compare]`
    Run {
        spec: String,
        db: Option<String>,
        compare: bool,
    },
    /// `generate --scale S --seed X --out FILE`
    Generate {
        scale: f64,
        seed: u64,
        out: String,
    },
    /// `spec-template`
    SpecTemplate,
    /// `help`
    Help,
}

/// Error from argument parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, UsageError> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| UsageError(format!("invalid value '{v}' for {name}"))),
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, UsageError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "throughput" => Ok(Command::Throughput {
            streams: parse_flag(args, "--streams", 3)?,
            scale: parse_flag(args, "--scale", 0.5)?,
            seed: parse_flag(args, "--seed", 42)?,
        }),
        "staggered" => {
            let query: String = parse_flag(args, "--query", "q6".to_string())?;
            if query != "q1" && query != "q6" {
                return Err(UsageError(format!(
                    "unknown query '{query}' (expected q1 or q6)"
                )));
            }
            Ok(Command::Staggered {
                query,
                copies: parse_flag(args, "--copies", 3)?,
                scale: parse_flag(args, "--scale", 0.5)?,
                seed: parse_flag(args, "--seed", 42)?,
                stagger_frac: parse_flag(args, "--stagger-frac", 0.15)?,
            })
        }
        "run" => {
            let spec = flag_value(args, "--spec")
                .ok_or_else(|| UsageError("run requires --spec FILE".into()))?
                .to_string();
            Ok(Command::Run {
                spec,
                db: flag_value(args, "--db").map(String::from),
                compare: args.iter().any(|a| a == "--compare"),
            })
        }
        "generate" => Ok(Command::Generate {
            scale: parse_flag(args, "--scale", 0.5)?,
            seed: parse_flag(args, "--seed", 42)?,
            out: flag_value(args, "--out")
                .ok_or_else(|| UsageError("generate requires --out FILE".into()))?
                .to_string(),
        }),
        "spec-template" => Ok(Command::SpecTemplate),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown command '{other}'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
scanshare — scan-sharing reproduction driver

USAGE:
  scanshare throughput [--streams N] [--scale S] [--seed X]
      N-stream TPC-H throughput run, base vs scan-sharing (Table 1 setup).
  scanshare staggered [--query q1|q6] [--copies N] [--scale S] [--seed X]
                      [--stagger-frac F]
      Staggered single-query run (Figure 15/16 setup).
  scanshare run --spec FILE [--db FILE] [--compare]
      Execute a JSON RunSpec; --compare forces base vs scan-sharing;
      --db loads a previously generated database instead of regenerating.
  scanshare generate [--scale S] [--seed X] --out FILE
      Generate the TPC-H-like database once and save it for reuse.
  scanshare spec-template
      Print an editable RunSpec JSON to stdout.
  scanshare help
      This text.
";

/// Print one run's headline numbers.
pub fn print_report(label: &str, r: &RunReport) {
    println!(
        "{label:<14} time {:>8.2}s  reads {:>9}  seeks {:>7}  hit {:>5.1}%  queries {}",
        r.makespan.as_secs_f64(),
        r.disk.pages_read,
        r.disk.seeks,
        r.pool.hit_ratio() * 100.0,
        r.queries.len()
    );
}

/// Print a base-vs-sharing comparison.
pub fn print_comparison(base: &RunReport, ss: &RunReport) {
    print_report("base", base);
    print_report("scan-sharing", ss);
    let gain = |b: f64, s: f64| if b > 0.0 { (1.0 - s / b) * 100.0 } else { 0.0 };
    println!(
        "{:<14} time {:>7.1}%   reads {:>7.1}%   seeks {:>6.1}%",
        "gain",
        gain(base.makespan.as_secs_f64(), ss.makespan.as_secs_f64()),
        gain(base.disk.pages_read as f64, ss.disk.pages_read as f64),
        gain(base.disk.seeks as f64, ss.disk.seeks as f64),
    );
}

fn force_mode(spec: &WorkloadSpec, mode: SharingMode) -> WorkloadSpec {
    WorkloadSpec {
        mode,
        ..spec.clone()
    }
}

/// Execute a parsed command. Returns a process exit code.
pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::SpecTemplate => {
            let spec = RunSpec::template();
            println!(
                "{}",
                serde_json::to_string_pretty(&spec).expect("spec serializes")
            );
            0
        }
        Command::Throughput {
            streams,
            scale,
            seed,
        } => {
            let tpch = TpchConfig {
                scale,
                seed,
                ..TpchConfig::default()
            };
            let db = generate(&tpch);
            let months = tpch.months as i64;
            let ss_spec = throughput_workload(
                &db,
                streams,
                months,
                seed,
                SharingMode::ScanSharing(SharingConfig::new(0)),
            );
            run_maybe_compare(&db, &ss_spec, true)
        }
        Command::Staggered {
            query,
            copies,
            scale,
            seed,
            stagger_frac,
        } => {
            let tpch = TpchConfig {
                scale,
                seed,
                ..TpchConfig::default()
            };
            let db = generate(&tpch);
            let q = if query == "q1" {
                q1()
            } else {
                q6(tpch.months as i64, seed)
            };
            // Calibrate the stagger from a solo run.
            let solo = staggered_workload(
                &db,
                &q,
                1,
                scanshare_storage::SimDuration::ZERO,
                SharingMode::Base,
            );
            let solo_run = run_workload(&db, &solo).expect("solo run");
            let stagger = scanshare_storage::SimDuration::from_micros(
                (solo_run.makespan.as_micros() as f64 * stagger_frac).max(1.0) as u64,
            );
            let ss_spec = staggered_workload(
                &db,
                &q,
                copies,
                stagger,
                SharingMode::ScanSharing(SharingConfig::new(0)),
            );
            run_maybe_compare(&db, &ss_spec, true)
        }
        Command::Run { spec, db, compare } => {
            let text = match std::fs::read_to_string(&spec) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {spec}: {e}");
                    return 2;
                }
            };
            let parsed: RunSpec = match serde_json::from_str(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("invalid spec {spec}: {e}");
                    return 2;
                }
            };
            let database = match db {
                Some(path) => match Database::load(&path) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("cannot load {path}: {e}");
                        return 2;
                    }
                },
                None => generate(&parsed.tpch),
            };
            run_maybe_compare(&database, &parsed.workload, compare)
        }
        Command::Generate { scale, seed, out } => {
            let tpch = TpchConfig {
                scale,
                seed,
                ..TpchConfig::default()
            };
            let db = generate(&tpch);
            match db.save(&out) {
                Ok(()) => {
                    println!(
                        "saved {} tables / {} pages to {out}",
                        db.table_names().len(),
                        db.total_table_pages()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("save failed: {e}");
                    1
                }
            }
        }
    }
}

fn run_maybe_compare(db: &Database, spec: &WorkloadSpec, compare: bool) -> i32 {
    if compare {
        let base = force_mode(spec, SharingMode::Base);
        let ss = force_mode(
            spec,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let rb = match run_workload(db, &base) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("base run failed: {e}");
                return 1;
            }
        };
        let rs = match run_workload(db, &ss) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("scan-sharing run failed: {e}");
                return 1;
            }
        };
        print_comparison(&rb, &rs);
        0
    } else {
        match run_workload(db, spec) {
            Ok(r) => {
                print_report("run", &r);
                0
            }
            Err(e) => {
                eprintln!("run failed: {e}");
                1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_throughput_with_defaults() {
        let cmd = parse_args(&args("throughput")).unwrap();
        assert_eq!(
            cmd,
            Command::Throughput {
                streams: 3,
                scale: 0.5,
                seed: 42,
            }
        );
    }

    #[test]
    fn parses_throughput_flags() {
        let cmd = parse_args(&args("throughput --streams 5 --scale 0.1 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Throughput {
                streams: 5,
                scale: 0.1,
                seed: 7,
            }
        );
    }

    #[test]
    fn parses_staggered() {
        let cmd =
            parse_args(&args("staggered --query q1 --copies 4 --stagger-frac 0.3")).unwrap();
        assert_eq!(
            cmd,
            Command::Staggered {
                query: "q1".into(),
                copies: 4,
                scale: 0.5,
                seed: 42,
                stagger_frac: 0.3
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("staggered --query q99")).is_err());
        assert!(parse_args(&args("throughput --streams nope")).is_err());
        assert!(parse_args(&args("run")).is_err());
        assert!(parse_args(&args("generate")).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
    }

    #[test]
    fn generate_then_run_from_saved_db() {
        let dir = std::env::temp_dir();
        let db_path = dir.join(format!("scanshare_cli_{}.db", std::process::id()));
        let tpch = TpchConfig::tiny();
        let db = generate(&tpch);
        db.save(&db_path).unwrap();
        let loaded = Database::load(&db_path).unwrap();
        std::fs::remove_file(&db_path).ok();
        let w = throughput_workload(&loaded, 1, tpch.months as i64, 1, SharingMode::Base);
        assert_eq!(run_maybe_compare(&loaded, &w, false), 0);
    }

    #[test]
    fn empty_and_help_yield_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn spec_template_roundtrips_through_json() {
        let spec = RunSpec::template();
        let json = serde_json::to_string(&spec).unwrap();
        let back: RunSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tpch.scale, spec.tpch.scale);
        assert_eq!(back.workload.streams.len(), spec.workload.streams.len());
        assert_eq!(back.workload.pool_pages, spec.workload.pool_pages);
    }

    #[test]
    fn run_spec_executes_end_to_end() {
        // Tiny spec, run through the same path as the binary.
        let tpch = TpchConfig::tiny();
        let db = generate(&tpch);
        let workload = throughput_workload(
            &db,
            1,
            tpch.months as i64,
            tpch.seed,
            SharingMode::Base,
        );
        let code = run_maybe_compare(&db, &workload, true);
        assert_eq!(code, 0);
    }
}
