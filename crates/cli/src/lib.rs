//! Library half of the `scanshare` command-line driver.
//!
//! The CLI runs scan-sharing comparisons without writing any Rust:
//!
//! ```sh
//! scanshare throughput --streams 5 --scale 0.5      # Table-1-style run
//! scanshare staggered --query q6 --copies 3         # Figure-15-style run
//! scanshare spec-template > myrun.json              # editable spec
//! scanshare run --spec myrun.json --compare         # base vs sharing
//! ```
//!
//! Argument parsing is hand-rolled (no extra dependencies): flags are
//! `--name value` pairs validated against each subcommand's schema.

use scanshare::{DeliveryMode, SharingConfig, SharingPolicyKind, SpanProfiler};
use scanshare_engine::{
    run_workload, run_workload_hooked, Database, FaultsConfig, RunHooks, RunReport, SharingMode,
    Tracer, WorkloadSpec,
};
use scanshare_tpch::{generate, q1, q6, staggered_workload, throughput_workload, TpchConfig};
use serde::{Deserialize, Serialize};

pub mod diff;
pub mod explain;
pub mod history;
pub mod profile;
pub mod render;
pub mod watch;

/// A self-contained run description: the database to generate plus the
/// workload to execute against it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSpec {
    /// Data generator configuration.
    pub tpch: TpchConfig,
    /// The workload (streams, pool, engine, mode).
    pub workload: WorkloadSpec,
}

impl RunSpec {
    /// A small editable example spec.
    pub fn template() -> Self {
        let tpch = TpchConfig {
            scale: 0.2,
            ..TpchConfig::default()
        };
        let db = generate(&tpch);
        let workload = throughput_workload(
            &db,
            2,
            tpch.months as i64,
            tpch.seed,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        RunSpec { tpch, workload }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `throughput --streams N --scale S --seed X` (always compares
    /// base vs scan-sharing — that is the point of the run)
    Throughput {
        streams: usize,
        scale: f64,
        seed: u64,
    },
    /// `staggered --query q1|q6 --copies N --scale S [--stagger-frac F]`
    Staggered {
        query: String,
        copies: usize,
        scale: f64,
        seed: u64,
        stagger_frac: f64,
    },
    /// `run --spec FILE [--db FILE] [--faults FILE] [--compare]
    /// [--policy grouping|attach|elevator] [--delivery pull|push]
    /// [--report OUT] [--trace-out OUT]`
    Run {
        spec: String,
        db: Option<String>,
        faults: Option<String>,
        compare: bool,
        policy: Option<SharingPolicyKind>,
        delivery: Option<DeliveryMode>,
        outputs: RunOutputs,
    },
    /// `trace --artifact FILE`: replay a saved report's event log.
    Trace { artifact: String },
    /// `metrics --artifact FILE [--quantiles]`: render a saved report's
    /// metrics; `--quantiles` expands each histogram into p50/p90/p95/p99
    /// plus its bucket table.
    Metrics { artifact: String, quantiles: bool },
    /// `profile --artifact FILE | --smoke [--collapse] [--top N]`:
    /// render the self-profiler summary of a saved profiled report, or
    /// of a freshly recorded built-in smoke run.
    Profile {
        artifact: Option<String>,
        smoke: bool,
        collapse: bool,
        top: usize,
    },
    /// `explain --artifact FILE [--scan ID]`: narrate a saved report's
    /// decision provenance — why each scan was placed, throttled, capped,
    /// and re-prioritized.
    Explain { artifact: String, scan: Option<u64> },
    /// `watch --spec FILE [--db FILE] [--tick-ms N] [--tail N]
    /// [--no-clear]`: run a spec with a live ASCII dashboard.
    Watch {
        spec: String,
        db: Option<String>,
        tick_ms: u64,
        tail: usize,
        no_clear: bool,
    },
    /// `bench [--streams N] [--scale S] [--seed X] [--runs R] [--jobs J]`:
    /// wall-clock benchmark of the simulator itself — R independent
    /// copies of the base and scan-sharing throughput runs, fanned over
    /// J worker threads.
    Bench {
        streams: usize,
        scale: f64,
        seed: u64,
        runs: usize,
        jobs: usize,
    },
    /// `history [--ledger FILE] [--metric NAME] [--last K] [--json]
    /// [--check [--strict]] [--window K]`: render a run-history ledger
    /// as per-metric trend tables with sparklines; `--check` validates
    /// the ledger and runs the wall-time change-point check.
    History(history::HistoryOptions),
    /// `diff A.json B.json [--json]`: structural diff of two saved
    /// RunReports — headline deltas, per-scan stretch movement, group
    /// lifetimes, series endpoints, SLO flips, fault deltas.
    Diff { a: String, b: String, json: bool },
    /// `generate --scale S --seed X --out FILE`
    Generate { scale: f64, seed: u64, out: String },
    /// `spec-template`
    SpecTemplate,
    /// `help`
    Help,
}

/// Where `run` saves its artifacts, if anywhere. The measured run (the
/// scan-sharing side under `--compare`) executes with a tracer attached
/// whenever either output is requested, so the saved report embeds both
/// the metrics snapshot and the replayable event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOutputs {
    /// `--report OUT`: full [`RunReport`] as JSON.
    pub report: Option<String>,
    /// `--trace-out OUT`: the trace alone, as JSON-lines.
    pub trace: Option<String>,
    /// `--profile-out OUT`: span profile as Chrome trace-event JSON
    /// (open at ui.perfetto.dev). Also embeds the folded
    /// [`scanshare::ProfileSummary`] into the report.
    pub profile: Option<String>,
}

impl RunOutputs {
    fn any(&self) -> bool {
        self.report.is_some() || self.trace.is_some()
    }

    fn save(&self, r: &RunReport) -> Result<(), String> {
        if let Some(path) = &self.report {
            scanshare_engine::persist::save_report(r, path)?;
            eprintln!("report saved to {path}");
        }
        if let Some(path) = &self.trace {
            let jsonl = scanshare_engine::trace::records_to_jsonl(&r.trace);
            std::fs::write(path, jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("trace saved to {path}");
        }
        Ok(())
    }
}

/// Error from argument parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, UsageError> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| UsageError(format!("invalid value '{v}' for {name}"))),
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, UsageError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "throughput" => Ok(Command::Throughput {
            streams: parse_flag(args, "--streams", 3)?,
            scale: parse_flag(args, "--scale", 0.5)?,
            seed: parse_flag(args, "--seed", 42)?,
        }),
        "staggered" => {
            let query: String = parse_flag(args, "--query", "q6".to_string())?;
            if query != "q1" && query != "q6" {
                return Err(UsageError(format!(
                    "unknown query '{query}' (expected q1 or q6)"
                )));
            }
            Ok(Command::Staggered {
                query,
                copies: parse_flag(args, "--copies", 3)?,
                scale: parse_flag(args, "--scale", 0.5)?,
                seed: parse_flag(args, "--seed", 42)?,
                stagger_frac: parse_flag(args, "--stagger-frac", 0.15)?,
            })
        }
        "run" => {
            let spec = flag_value(args, "--spec")
                .ok_or_else(|| UsageError("run requires --spec FILE".into()))?
                .to_string();
            Ok(Command::Run {
                spec,
                db: flag_value(args, "--db").map(String::from),
                faults: flag_value(args, "--faults").map(String::from),
                compare: args.iter().any(|a| a == "--compare"),
                policy: match flag_value(args, "--policy") {
                    None => None,
                    Some(v) => Some(v.parse().map_err(UsageError)?),
                },
                delivery: match flag_value(args, "--delivery") {
                    None => None,
                    Some(v) => Some(v.parse().map_err(UsageError)?),
                },
                outputs: RunOutputs {
                    report: flag_value(args, "--report").map(String::from),
                    trace: flag_value(args, "--trace-out").map(String::from),
                    profile: flag_value(args, "--profile-out").map(String::from),
                },
            })
        }
        "trace" => Ok(Command::Trace {
            artifact: flag_value(args, "--artifact")
                .ok_or_else(|| UsageError("trace requires --artifact FILE".into()))?
                .to_string(),
        }),
        "metrics" => Ok(Command::Metrics {
            artifact: flag_value(args, "--artifact")
                .ok_or_else(|| UsageError("metrics requires --artifact FILE".into()))?
                .to_string(),
            quantiles: args.iter().any(|a| a == "--quantiles"),
        }),
        "profile" => {
            let artifact = flag_value(args, "--artifact").map(String::from);
            let smoke = args.iter().any(|a| a == "--smoke");
            if artifact.is_none() && !smoke {
                return Err(UsageError(
                    "profile requires --artifact FILE or --smoke".into(),
                ));
            }
            Ok(Command::Profile {
                artifact,
                smoke,
                collapse: args.iter().any(|a| a == "--collapse"),
                top: parse_flag(args, "--top", 10)?,
            })
        }
        "explain" => Ok(Command::Explain {
            artifact: flag_value(args, "--artifact")
                .ok_or_else(|| UsageError("explain requires --artifact FILE".into()))?
                .to_string(),
            scan: match flag_value(args, "--scan") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("invalid value '{v}' for --scan")))?,
                ),
            },
        }),
        "watch" => Ok(Command::Watch {
            spec: flag_value(args, "--spec")
                .ok_or_else(|| UsageError("watch requires --spec FILE".into()))?
                .to_string(),
            db: flag_value(args, "--db").map(String::from),
            tick_ms: parse_flag(args, "--tick-ms", 250)?,
            tail: parse_flag(args, "--tail", 8)?,
            no_clear: args.iter().any(|a| a == "--no-clear"),
        }),
        "bench" => Ok(Command::Bench {
            streams: parse_flag(args, "--streams", 3)?,
            scale: parse_flag(args, "--scale", 0.1)?,
            seed: parse_flag(args, "--seed", 42)?,
            runs: parse_flag(args, "--runs", 2)?,
            jobs: parse_flag(args, "--jobs", 1)?,
        }),
        "history" => Ok(Command::History(history::HistoryOptions {
            ledger: parse_flag(args, "--ledger", history::HistoryOptions::default().ledger)?,
            metric: flag_value(args, "--metric").map(String::from),
            last: parse_flag(args, "--last", 0)?,
            json: args.iter().any(|a| a == "--json"),
            check: args.iter().any(|a| a == "--check"),
            strict: args.iter().any(|a| a == "--strict"),
            window: parse_flag(args, "--window", scanshare_bench::stats::DEFAULT_WINDOW)?,
        })),
        "diff" => {
            // Two positional report paths; flags may appear anywhere.
            let mut files = Vec::new();
            for a in &args[1..] {
                if a == "--json" {
                    continue;
                }
                if a.starts_with("--") {
                    return Err(UsageError(format!("unknown flag '{a}' for diff")));
                }
                files.push(a.clone());
            }
            let [a, b] = files.as_slice() else {
                return Err(UsageError(
                    "diff requires exactly two report files: diff A.json B.json".into(),
                ));
            };
            Ok(Command::Diff {
                a: a.clone(),
                b: b.clone(),
                json: args.iter().any(|x| x == "--json"),
            })
        }
        "generate" => Ok(Command::Generate {
            scale: parse_flag(args, "--scale", 0.5)?,
            seed: parse_flag(args, "--seed", 42)?,
            out: flag_value(args, "--out")
                .ok_or_else(|| UsageError("generate requires --out FILE".into()))?
                .to_string(),
        }),
        "spec-template" => Ok(Command::SpecTemplate),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown command '{other}'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
scanshare — scan-sharing reproduction driver

USAGE:
  scanshare throughput [--streams N] [--scale S] [--seed X]
      N-stream TPC-H throughput run, base vs scan-sharing (Table 1 setup).
  scanshare staggered [--query q1|q6] [--copies N] [--scale S] [--seed X]
                      [--stagger-frac F]
      Staggered single-query run (Figure 15/16 setup).
  scanshare run --spec FILE [--db FILE] [--faults FILE] [--compare]
                [--policy grouping|attach|elevator] [--delivery pull|push]
                [--report OUT] [--trace-out OUT] [--profile-out OUT]
      Execute a JSON RunSpec. The spec's workload section may carry an
      optional \"faults\" subsection (a FaultsConfig: seeded fault plan
      plus retry/timeout policy) — `scanshare spec-template` shows the
      shape. --compare forces base vs scan-sharing;
      --db loads a previously generated database instead of regenerating;
      --faults overrides the spec's \"faults\" subsection with a
      FaultsConfig JSON file;
      --policy selects the scan-sharing policy: grouping (default; the
      paper's grouping + throttling machinery), attach (join the newest
      compatible scan, never throttle), or elevator (one circulating
      read cursor per table);
      --delivery selects how pages reach a group's consumers: pull
      (default; every scan fixes its own pages) or push (one group
      driver fixes each page once and pushes it through every attached
      consumer's row pipeline; the report gains a \"push\" section with
      driver/attach/catch-up counters);
      --report saves the full RunReport (metrics + trace) as JSON,
      --trace-out saves the event log alone as JSON-lines, and
      --profile-out records a hierarchical span profile and saves it as
      Chrome trace-event JSON (open at ui.perfetto.dev; one track per
      scan stream plus manager and driver tracks). With --profile-out
      the report also embeds a folded profile summary readable by
      `scanshare profile`.
      The spec's workload section may also carry an \"slo\" subsection:
      declarative service-level rules (e.g. {\"name\": \"fair\",
      \"metric\": \"p99_stretch\", \"op\": \"<=\", \"value\": 1.5})
      evaluated at end of run into pass/fail verdicts in the report.
      Exits 0 on success, 1 on engine failure, 2 on bad input, 3 when
      injected faults aborted at least one scan (degraded run), and 4
      when the run completed but breached at least one SLO rule.
  scanshare trace --artifact FILE
      Replay a saved RunReport (or raw JSON-lines trace): scan
      lifecycles with attributed throttle waits, then the event log.
  scanshare metrics --artifact FILE [--quantiles]
      Render a saved RunReport's metrics snapshot: counters, latency
      histograms, and per-group/per-scan timelines as text tables.
      --quantiles expands every histogram with p50/p90/p95/p99 rows and
      its full bucket table (inclusive upper bounds).
  scanshare profile (--artifact FILE | --smoke) [--collapse] [--top N]
      Render the self-profiler summary: per-phase inclusive/exclusive
      times on both clocks (deterministic virtual µs, host wall ns) and
      the hottest spans. --artifact reads a report saved by
      `run --profile-out`; --smoke records a fresh built-in run.
      --collapse instead prints flamegraph-folded stacks
      (`phase;child µs` per line) for flamegraph.pl or speedscope.
  scanshare explain --artifact FILE [--scan ID]
      Narrate a saved RunReport's decision provenance: per-scan causal
      stories (placement candidates vs threshold, throttle distance vs
      threshold, slowdown vs fairness cap) and per-group timelines.
      With --scan, only that scan's narrative.
  scanshare watch --spec FILE [--db FILE] [--tick-ms N] [--tail N]
                  [--no-clear]
      Execute a JSON RunSpec with a live ASCII dashboard: group
      topology, per-scan throttle state, pool-residency heatmap, and
      the decision tail, redrawn every N ms (--no-clear appends frames
      instead of clearing, for piped output).
  scanshare bench [--streams N] [--scale S] [--seed X] [--runs R]
                  [--jobs J]
      Wall-clock benchmark of the simulator itself: R independent
      copies of the base and scan-sharing throughput runs fanned over
      J worker threads. Prints wall time and simulated pages per
      wall-second; simulated results are bit-identical for any J.
  scanshare history [--ledger FILE] [--metric NAME] [--last K] [--json]
                    [--check] [--strict] [--window K]
      Render a run-history ledger (default results/history.jsonl,
      written by `bench_gate --history`) as per-metric trend tables:
      one sparkline row per recorded metric, oldest entry first, plus
      wall_ms.median / pages_per_wall_sec.median pseudo-metrics.
      --metric narrows to one metric, --last to the newest K entries,
      --json emits the trend data as JSON. --check validates every
      ledger line (exit 2 on a malformed ledger) and runs the
      trailing-window change-point check on the wall medians — the
      newest entry against the pooled bootstrap 95% CI of the --window
      entries before it. The verdict is informational unless --strict
      promotes a flagged trend to exit 1.
  scanshare diff A.json B.json [--json]
      Structural diff of two saved RunReports: headline counter deltas
      (makespan, reads, seeks, hit ratio), per-query stretch movement
      matched by (stream, name, occurrence), sharing-group lifetimes
      that appeared/vanished/shifted, sampled-series endpoints, SLO
      verdict flips, fault-summary deltas, and the policy pair.
      Exits like cmp: 0 when structurally identical, 1 when the
      reports differ, 2 on unreadable input.
  scanshare generate [--scale S] [--seed X] --out FILE
      Generate the TPC-H-like database once and save it for reuse.
  scanshare spec-template
      Print an editable RunSpec JSON to stdout.
  scanshare help
      This text.
";

/// Print one run's headline numbers.
pub fn print_report(label: &str, r: &RunReport) {
    println!(
        "{label:<14} time {:>8.2}s  reads {:>9}  seeks {:>7}  hit {:>5.1}%  queries {}",
        r.makespan.as_secs_f64(),
        r.disk.pages_read,
        r.disk.seeks,
        r.pool.hit_ratio() * 100.0,
        r.queries.len()
    );
}

/// Print a base-vs-sharing comparison.
pub fn print_comparison(base: &RunReport, ss: &RunReport) {
    print_report("base", base);
    print_report("scan-sharing", ss);
    let gain = |b: f64, s: f64| if b > 0.0 { (1.0 - s / b) * 100.0 } else { 0.0 };
    println!(
        "{:<14} time {:>7.1}%   reads {:>7.1}%   seeks {:>6.1}%",
        "gain",
        gain(base.makespan.as_secs_f64(), ss.makespan.as_secs_f64()),
        gain(base.disk.pages_read as f64, ss.disk.pages_read as f64),
        gain(base.disk.seeks as f64, ss.disk.seeks as f64),
    );
}

fn force_mode(spec: &WorkloadSpec, mode: SharingMode) -> WorkloadSpec {
    WorkloadSpec {
        mode,
        ..spec.clone()
    }
}

/// Execute a parsed command. Returns a process exit code.
pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::SpecTemplate => {
            let spec = RunSpec::template();
            println!(
                "{}",
                serde_json::to_string_pretty(&spec).expect("spec serializes")
            );
            0
        }
        Command::Throughput {
            streams,
            scale,
            seed,
        } => {
            let tpch = TpchConfig {
                scale,
                seed,
                ..TpchConfig::default()
            };
            let db = generate(&tpch);
            let months = tpch.months as i64;
            let ss_spec = throughput_workload(
                &db,
                streams,
                months,
                seed,
                SharingMode::ScanSharing(SharingConfig::new(0)),
            );
            run_maybe_compare(&db, &ss_spec, true)
        }
        Command::Staggered {
            query,
            copies,
            scale,
            seed,
            stagger_frac,
        } => {
            let tpch = TpchConfig {
                scale,
                seed,
                ..TpchConfig::default()
            };
            let db = generate(&tpch);
            let q = if query == "q1" {
                q1()
            } else {
                q6(tpch.months as i64, seed)
            };
            // Calibrate the stagger from a solo run.
            let solo = staggered_workload(
                &db,
                &q,
                1,
                scanshare_storage::SimDuration::ZERO,
                SharingMode::Base,
            );
            let solo_run = run_workload(&db, &solo).expect("solo run");
            let stagger = scanshare_storage::SimDuration::from_micros(
                (solo_run.makespan.as_micros() as f64 * stagger_frac).max(1.0) as u64,
            );
            let ss_spec = staggered_workload(
                &db,
                &q,
                copies,
                stagger,
                SharingMode::ScanSharing(SharingConfig::new(0)),
            );
            run_maybe_compare(&db, &ss_spec, true)
        }
        Command::Run {
            spec,
            db,
            faults,
            compare,
            policy,
            delivery,
            outputs,
        } => {
            let text = match std::fs::read_to_string(&spec) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {spec}: {e}");
                    return 2;
                }
            };
            let mut parsed: RunSpec = match serde_json::from_str(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{}", spec_error(&spec, e));
                    return 2;
                }
            };
            if let Some(p) = policy {
                match &mut parsed.workload.mode {
                    SharingMode::ScanSharing(cfg) => cfg.policy = p,
                    SharingMode::Base | SharingMode::BasePolicy(_) if !compare => {
                        eprintln!(
                            "note: --policy {p} has no effect on a base-mode spec \
                             (add --compare or set the spec's mode to ScanSharing)"
                        );
                    }
                    SharingMode::Base | SharingMode::BasePolicy(_) => {}
                }
            }
            if let Some(d) = delivery {
                match &mut parsed.workload.mode {
                    SharingMode::ScanSharing(cfg) => cfg.delivery = d,
                    SharingMode::Base | SharingMode::BasePolicy(_) if !compare => {
                        eprintln!(
                            "note: --delivery {d} has no effect on a base-mode spec \
                             (add --compare or set the spec's mode to ScanSharing)"
                        );
                    }
                    SharingMode::Base | SharingMode::BasePolicy(_) => {}
                }
            }
            if let Some(path) = faults {
                match load_fault_config(&path) {
                    Ok(cfg) => parsed.workload.faults = cfg,
                    Err(e) => {
                        eprintln!("{e}");
                        return 2;
                    }
                }
            }
            let database = match db {
                Some(path) => match Database::load(&path) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("cannot load {path}: {e}");
                        return 2;
                    }
                },
                None => generate(&parsed.tpch),
            };
            run_maybe_compare_with(
                &database,
                &parsed.workload,
                compare,
                policy,
                delivery,
                &outputs,
            )
        }
        Command::Bench {
            streams,
            scale,
            seed,
            runs,
            jobs,
        } => run_bench(streams, scale, seed, runs, jobs),
        Command::Trace { artifact } => match load_artifact_trace(&artifact) {
            Ok(records) => {
                print!("{}", render::render_trace(&records));
                0
            }
            Err(e) => {
                eprintln!("{e}");
                2
            }
        },
        Command::Metrics {
            artifact,
            quantiles,
        } => match load_report(&artifact) {
            Ok(report) => {
                print!("{}", render::render_metrics_detailed(&report, quantiles));
                0
            }
            Err(e) => {
                eprintln!("{e}");
                2
            }
        },
        Command::Profile {
            artifact,
            smoke,
            collapse,
            top,
        } => {
            let summary = if let Some(path) = artifact {
                match load_report(&path) {
                    Ok(report) => match report.profile {
                        Some(s) => s,
                        None => {
                            eprintln!(
                                "{path} has no profile section — record one with \
                                 `scanshare run ... --profile-out trace.json --report {path}`"
                            );
                            return 2;
                        }
                    },
                    Err(e) => {
                        eprintln!("{e}");
                        return 2;
                    }
                }
            } else {
                // --smoke: record a fresh profile of a tiny built-in
                // comparison run, so the profiler can be exercised (and
                // CI can smoke-test it) without writing a spec.
                let tpch = TpchConfig::tiny();
                let db = generate(&tpch);
                let w = throughput_workload(
                    &db,
                    2,
                    tpch.months as i64,
                    tpch.seed,
                    SharingMode::ScanSharing(SharingConfig::new(0)),
                );
                let profiler = SpanProfiler::default();
                let hooks = RunHooks {
                    profiler: Some(profiler.clone()),
                    ..RunHooks::default()
                };
                debug_assert!(smoke, "parse_args requires --artifact or --smoke");
                if let Err(e) = run_workload_hooked(&db, &w, hooks) {
                    eprintln!("smoke run failed: {e}");
                    return 1;
                }
                profiler.summary()
            };
            if collapse {
                print!("{}", profile::render_collapsed(&summary));
            } else {
                print!("{}", profile::render_profile(&summary, top));
            }
            0
        }
        Command::Explain { artifact, scan } => {
            match load_report(&artifact).and_then(|report| explain::render_explain(&report, scan)) {
                Ok(text) => {
                    print!("{text}");
                    0
                }
                Err(e) => {
                    eprintln!("{e}");
                    2
                }
            }
        }
        Command::Watch {
            spec,
            db,
            tick_ms,
            tail,
            no_clear,
        } => {
            let text = match std::fs::read_to_string(&spec) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {spec}: {e}");
                    return 2;
                }
            };
            let parsed: RunSpec = match serde_json::from_str(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{}", spec_error(&spec, e));
                    return 2;
                }
            };
            let database = match db {
                Some(path) => match Database::load(&path) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("cannot load {path}: {e}");
                        return 2;
                    }
                },
                None => generate(&parsed.tpch),
            };
            let opts = watch::WatchOptions {
                tick_ms,
                clear: !no_clear,
                tail,
            };
            let mut stdout = std::io::stdout();
            match watch::run_watch(&database, &parsed.workload, &opts, &mut stdout) {
                Ok(r) => {
                    print_report("watched run", &r);
                    0
                }
                Err(e) => {
                    eprintln!("{e}");
                    1
                }
            }
        }
        Command::History(opts) => history::run_history(&opts),
        Command::Diff { a, b, json } => {
            let ra = match load_report(&a) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            };
            let rb = match load_report(&b) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            };
            let d = diff::compute_diff(&ra, &rb);
            if json {
                // Keep stdout pure JSON; the one-line verdict goes to
                // stderr so `... --json | jq` just works.
                println!(
                    "{}",
                    serde_json::to_string_pretty(&d).expect("diff serializes")
                );
                eprintln!("{}", d.summary_line());
            } else {
                print!("{}", render::render_report_diff(&a, &b, &d));
                println!("{}", d.summary_line());
            }
            // Like cmp/diff: 0 identical, 1 different, 2 trouble.
            if d.is_zero() {
                0
            } else {
                1
            }
        }
        Command::Generate { scale, seed, out } => {
            let tpch = TpchConfig {
                scale,
                seed,
                ..TpchConfig::default()
            };
            let db = generate(&tpch);
            match db.save(&out) {
                Ok(()) => {
                    println!(
                        "saved {} tables / {} pages to {out}",
                        db.table_names().len(),
                        db.total_table_pages()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("save failed: {e}");
                    1
                }
            }
        }
    }
}

/// Diagnostic for an unparsable `RunSpec` file. Besides the parser's own
/// message, it reminds the user of the spec shape — including the
/// optional `faults` fault-injection subsection, which predates some
/// hand-written specs and is the most common omission-then-typo site.
pub fn spec_error(path: &str, e: impl std::fmt::Display) -> String {
    format!(
        "invalid spec {path}: {e}\n\
         hint: a RunSpec is {{\"tpch\": ..., \"workload\": ...}}; the workload \
         accepts an optional \"faults\" section (seeded fault plan + \
         retry/timeout policy) — start from `scanshare spec-template`"
    )
}

/// Load a fault-injection plan (`FaultsConfig` JSON) for `run --faults`.
pub fn load_fault_config(path: &str) -> Result<FaultsConfig, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("invalid fault plan {path}: {e}"))
}

/// Load a saved [`RunReport`] JSON artifact.
pub fn load_report(path: &str) -> Result<RunReport, String> {
    scanshare_engine::persist::load_report(path)
}

/// Load the trace of an artifact: either a [`RunReport`] JSON (the
/// embedded trace) or a raw JSON-lines file from `--trace-out`.
pub fn load_artifact_trace(path: &str) -> Result<Vec<scanshare_engine::TraceRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(report) = serde_json::from_str::<RunReport>(&text) {
        return Ok(report.trace);
    }
    scanshare_engine::trace::records_from_jsonl(&text)
        .map_err(|e| format!("{path} is neither a RunReport nor a JSONL trace: {e}"))
}

fn run_measured(
    db: &Database,
    spec: &WorkloadSpec,
    outputs: &RunOutputs,
) -> Result<RunReport, String> {
    let profiler = outputs.profile.as_ref().map(|_| SpanProfiler::default());
    let hooks = RunHooks {
        tracer: outputs.any().then(|| Tracer::new(1 << 16)),
        profiler: profiler.clone(),
        ..RunHooks::default()
    };
    let mut r = run_workload_hooked(db, spec, hooks).map_err(|e| format!("run failed: {e}"))?;
    if let (Some(p), Some(path)) = (&profiler, &outputs.profile) {
        let json = serde_json::to_string(&p.perfetto()).expect("trace serializes");
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("profile saved to {path} (open at ui.perfetto.dev)");
        // The saved/printed report carries the folded summary too, so
        // `scanshare profile --artifact` can read it back.
        r.profile = Some(p.summary());
    }
    outputs.save(&r)?;
    Ok(r)
}

/// Print any SLO verdicts the run evaluated; returns 4 when at least
/// one rule was breached, 0 otherwise.
fn slo_exit(r: &RunReport) -> i32 {
    if r.slo.is_empty() {
        return 0;
    }
    let mut breached = 0;
    for v in &r.slo {
        let status = if v.passed { "PASS" } else { "FAIL" };
        let note = if v.note.is_empty() {
            String::new()
        } else {
            format!("  ({})", v.note)
        };
        println!(
            "slo {status}  {:<16} {} {} {:.4}  observed {:.4}{note}",
            v.rule,
            v.metric,
            v.op.symbol(),
            v.threshold,
            v.observed,
        );
        breached += (!v.passed) as i32;
    }
    if breached > 0 {
        eprintln!("SLO breach: {breached} of {} rule(s) failed", r.slo.len());
        4
    } else {
        0
    }
}

fn run_maybe_compare(db: &Database, spec: &WorkloadSpec, compare: bool) -> i32 {
    run_maybe_compare_with(db, spec, compare, None, None, &RunOutputs::default())
}

/// `scanshare bench`: measure the simulator's own wall-clock throughput.
///
/// Builds `runs` copies each of the base and scan-sharing throughput
/// workloads and fans all of them over `jobs` worker threads via
/// [`scanshare_engine::run_workloads`]. Every run is a deterministic
/// simulation, so repeats of the same spec must produce byte-identical
/// reports no matter how they were scheduled — the command asserts this
/// and reports wall time and simulated pages per wall-second.
fn run_bench(streams: usize, scale: f64, seed: u64, runs: usize, jobs: usize) -> i32 {
    let runs = runs.max(1);
    let tpch = TpchConfig {
        scale,
        seed,
        ..TpchConfig::default()
    };
    let db = generate(&tpch);
    let months = tpch.months as i64;
    let base = throughput_workload(&db, streams, months, seed, SharingMode::Base);
    let ss = throughput_workload(
        &db,
        streams,
        months,
        seed,
        SharingMode::ScanSharing(SharingConfig::new(0)),
    );
    // Interleave base/ss copies so both kinds are in flight at once.
    let mut specs = Vec::with_capacity(runs * 2);
    for _ in 0..runs {
        specs.push(base.clone());
        specs.push(ss.clone());
    }
    eprintln!(
        "bench: {runs}x base + {runs}x scan-sharing ({streams} streams, scale {scale}), --jobs {jobs}"
    );
    let started = std::time::Instant::now();
    let reports = scanshare_engine::run_workloads(&db, &specs, jobs);
    let wall = started.elapsed();
    let mut ok: Vec<RunReport> = Vec::with_capacity(reports.len());
    for r in reports {
        match r {
            Ok(r) => ok.push(r),
            Err(e) => {
                eprintln!("bench run failed: {e}");
                return 1;
            }
        }
    }
    // Repeats of one spec must be byte-identical regardless of which
    // worker ran them — the simulator takes no wall-clock input.
    let fingerprint = |r: &RunReport| serde_json::to_string(r).expect("report serializes");
    let (b0, s0) = (fingerprint(&ok[0]), fingerprint(&ok[1]));
    for pair in ok.chunks(2).skip(1) {
        if fingerprint(&pair[0]) != b0 || fingerprint(&pair[1]) != s0 {
            eprintln!("bench: FAIL — repeat runs diverged across workers");
            return 1;
        }
    }
    print_comparison(&ok[0], &ok[1]);
    let pages: u64 = ok.iter().map(|r| r.pool.logical_reads).sum();
    println!(
        "{:<14} wall {:>7.2}s for {} runs  ({:.0} simulated pages / wall second, --jobs {jobs})",
        "bench",
        wall.as_secs_f64(),
        runs * 2,
        pages as f64 / wall.as_secs_f64(),
    );
    println!("repeat runs bit-identical across workers: yes");
    0
}

/// Exit code for a completed run: 0 when every scan finished, 3 when a
/// permanent (or retry-exhausted) fault aborted at least one scan and the
/// run degraded to partial results.
fn degraded_exit(r: &RunReport) -> i32 {
    if r.faults.scans_aborted > 0 {
        eprintln!(
            "degraded run: {} scan(s) aborted by injected faults",
            r.faults.scans_aborted
        );
        3
    } else {
        0
    }
}

fn run_maybe_compare_with(
    db: &Database,
    spec: &WorkloadSpec,
    compare: bool,
    policy: Option<SharingPolicyKind>,
    delivery: Option<DeliveryMode>,
    outputs: &RunOutputs,
) -> i32 {
    if compare {
        let base = force_mode(spec, SharingMode::Base);
        let mut cfg = SharingConfig::with_policy(0, policy.unwrap_or_default());
        cfg.delivery = delivery.unwrap_or_default();
        let ss = force_mode(spec, SharingMode::ScanSharing(cfg));
        let rb = match run_workload(db, &base) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("base run failed: {e}");
                return 1;
            }
        };
        // Artifacts describe the measured (scan-sharing) side.
        let rs = match run_measured(db, &ss, outputs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("scan-sharing {e}");
                return 1;
            }
        };
        print_comparison(&rb, &rs);
        // Degradation (3) outranks an SLO breach (4): partial results
        // explain breached rules, so report the root cause.
        let degraded = degraded_exit(&rb).max(degraded_exit(&rs));
        let slo = slo_exit(&rb).max(slo_exit(&rs));
        if degraded != 0 {
            degraded
        } else {
            slo
        }
    } else {
        match run_measured(db, spec, outputs) {
            Ok(r) => {
                print_report("run", &r);
                let degraded = degraded_exit(&r);
                let slo = slo_exit(&r);
                if degraded != 0 {
                    degraded
                } else {
                    slo
                }
            }
            Err(e) => {
                eprintln!("{e}");
                1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_throughput_with_defaults() {
        let cmd = parse_args(&args("throughput")).unwrap();
        assert_eq!(
            cmd,
            Command::Throughput {
                streams: 3,
                scale: 0.5,
                seed: 42,
            }
        );
    }

    #[test]
    fn parses_throughput_flags() {
        let cmd = parse_args(&args("throughput --streams 5 --scale 0.1 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Throughput {
                streams: 5,
                scale: 0.1,
                seed: 7,
            }
        );
    }

    #[test]
    fn parses_staggered() {
        let cmd = parse_args(&args("staggered --query q1 --copies 4 --stagger-frac 0.3")).unwrap();
        assert_eq!(
            cmd,
            Command::Staggered {
                query: "q1".into(),
                copies: 4,
                scale: 0.5,
                seed: 42,
                stagger_frac: 0.3
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("staggered --query q99")).is_err());
        assert!(parse_args(&args("throughput --streams nope")).is_err());
        assert!(parse_args(&args("run")).is_err());
        assert!(parse_args(&args("generate")).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("trace")).is_err());
        assert!(parse_args(&args("metrics")).is_err());
        assert!(parse_args(&args("explain")).is_err());
        assert!(parse_args(&args("explain --artifact r.json --scan abc")).is_err());
        assert!(parse_args(&args("watch")).is_err());
        assert!(parse_args(&args("watch --spec s.json --tick-ms fast")).is_err());
    }

    #[test]
    fn parses_explain_and_watch() {
        assert_eq!(
            parse_args(&args("explain --artifact out.json")).unwrap(),
            Command::Explain {
                artifact: "out.json".into(),
                scan: None,
            }
        );
        assert_eq!(
            parse_args(&args("explain --artifact out.json --scan 3")).unwrap(),
            Command::Explain {
                artifact: "out.json".into(),
                scan: Some(3),
            }
        );
        assert_eq!(
            parse_args(&args(
                "watch --spec s.json --tick-ms 100 --tail 5 --no-clear"
            ))
            .unwrap(),
            Command::Watch {
                spec: "s.json".into(),
                db: None,
                tick_ms: 100,
                tail: 5,
                no_clear: true,
            }
        );
    }

    #[test]
    fn parses_run_outputs_and_replay_commands() {
        let cmd = parse_args(&args(
            "run --spec s.json --report out.json --trace-out t.jsonl",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                spec: "s.json".into(),
                db: None,
                faults: None,
                compare: false,
                policy: None,
                delivery: None,
                outputs: RunOutputs {
                    report: Some("out.json".into()),
                    trace: Some("t.jsonl".into()),
                    profile: None,
                },
            }
        );
        assert_eq!(
            parse_args(&args("run --spec s.json --faults plan.json")).unwrap(),
            Command::Run {
                spec: "s.json".into(),
                db: None,
                faults: Some("plan.json".into()),
                compare: false,
                policy: None,
                delivery: None,
                outputs: RunOutputs::default(),
            }
        );
        assert_eq!(
            parse_args(&args("trace --artifact out.json")).unwrap(),
            Command::Trace {
                artifact: "out.json".into()
            }
        );
        assert_eq!(
            parse_args(&args("metrics --artifact out.json")).unwrap(),
            Command::Metrics {
                artifact: "out.json".into(),
                quantiles: false,
            }
        );
    }

    #[test]
    fn saved_artifacts_replay_through_trace_and_metrics() {
        let tpch = TpchConfig::tiny();
        let db = generate(&tpch);
        let w = throughput_workload(
            &db,
            2,
            tpch.months as i64,
            tpch.seed,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let report_path = dir.join(format!("scanshare_report_{pid}.json"));
        let trace_path = dir.join(format!("scanshare_trace_{pid}.jsonl"));
        let outputs = RunOutputs {
            report: Some(report_path.to_string_lossy().into_owned()),
            trace: Some(trace_path.to_string_lossy().into_owned()),
            profile: None,
        };
        assert_eq!(
            run_maybe_compare_with(&db, &w, false, None, None, &outputs),
            0
        );

        // The saved report replays: embedded trace matches the JSONL
        // side channel, and both renderers produce real output.
        let report = load_report(outputs.report.as_deref().unwrap()).unwrap();
        assert!(!report.trace.is_empty());
        let from_jsonl = load_artifact_trace(outputs.trace.as_deref().unwrap()).unwrap();
        let from_report = load_artifact_trace(outputs.report.as_deref().unwrap()).unwrap();
        assert_eq!(report.trace, from_jsonl);
        assert_eq!(report.trace, from_report);
        let trace_text = render::render_trace(&report.trace);
        assert!(trace_text.contains("scan lifecycles"));
        let metrics_text = render::render_metrics(&report);
        assert!(metrics_text.contains("histograms"));
        assert!(metrics_text.contains("disk.read_us"));
        // Sharing-mode artifacts carry decision provenance, so the saved
        // report explains itself too.
        assert!(!report.decisions.is_empty());
        let explained = explain::render_explain(&report, None).unwrap();
        assert!(explained.contains("decision summary"));
        assert!(explained.contains("narrative"));
        let first = explain::scans_mentioned(&report.decisions)[0];
        let one = explain::render_explain(&report, Some(first.0)).unwrap();
        assert!(one.contains(&format!("scan {} narrative", first.0)));
        std::fs::remove_file(&report_path).ok();
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn generate_then_run_from_saved_db() {
        let dir = std::env::temp_dir();
        let db_path = dir.join(format!("scanshare_cli_{}.db", std::process::id()));
        let tpch = TpchConfig::tiny();
        let db = generate(&tpch);
        db.save(&db_path).unwrap();
        let loaded = Database::load(&db_path).unwrap();
        std::fs::remove_file(&db_path).ok();
        let w = throughput_workload(&loaded, 1, tpch.months as i64, 1, SharingMode::Base);
        assert_eq!(run_maybe_compare(&loaded, &w, false), 0);
    }

    #[test]
    fn parses_run_policy_flag() {
        for (name, kind) in [
            ("grouping", SharingPolicyKind::Grouping),
            ("attach", SharingPolicyKind::Attach),
            ("elevator", SharingPolicyKind::Elevator),
        ] {
            match parse_args(&args(&format!("run --spec s.json --policy {name}"))).unwrap() {
                Command::Run { policy, .. } => assert_eq!(policy, Some(kind)),
                other => panic!("expected run command, got {other:?}"),
            }
        }
        let err = parse_args(&args("run --spec s.json --policy zigzag")).unwrap_err();
        assert!(err.0.contains("unknown policy 'zigzag'"), "got: {err}");
        assert!(
            err.0.contains("grouping, attach, or elevator"),
            "got: {err}"
        );
    }

    #[test]
    fn run_policy_selects_the_policy_end_to_end() {
        // --policy elevator on a sharing spec stamps the report.
        let tpch = TpchConfig::tiny();
        let db = generate(&tpch);
        let w = throughput_workload(
            &db,
            2,
            tpch.months as i64,
            tpch.seed,
            SharingMode::ScanSharing(SharingConfig::with_policy(0, SharingPolicyKind::Elevator)),
        );
        let dir = std::env::temp_dir();
        let report_path = dir.join(format!("scanshare_policy_cli_{}.json", std::process::id()));
        let outputs = RunOutputs {
            report: Some(report_path.to_string_lossy().into_owned()),
            trace: None,
            profile: None,
        };
        assert_eq!(
            run_maybe_compare_with(&db, &w, false, None, None, &outputs),
            0
        );
        let report = load_report(outputs.report.as_deref().unwrap()).unwrap();
        std::fs::remove_file(&report_path).ok();
        assert_eq!(report.policy, Some(SharingPolicyKind::Elevator));
        // The provenance log announces the non-default policy, so
        // `explain` narrates it.
        let text = explain::render_explain(&report, None).unwrap();
        assert!(
            text.contains("non-default 'elevator' sharing policy"),
            "got: {text}"
        );
    }

    #[test]
    fn usage_documents_policy_and_faults_sections() {
        // `run --help` must mention the --policy flag with all three
        // policies, and the spec's optional "faults" subsection.
        assert!(USAGE.contains("--policy grouping|attach|elevator"));
        assert!(USAGE.contains("\"faults\" subsection"));
        assert!(USAGE.contains("--delivery pull|push"));
    }

    #[test]
    fn parses_run_delivery_flag() {
        for (name, mode) in [("pull", DeliveryMode::Pull), ("push", DeliveryMode::Push)] {
            match parse_args(&args(&format!("run --spec s.json --delivery {name}"))).unwrap() {
                Command::Run { delivery, .. } => assert_eq!(delivery, Some(mode)),
                other => panic!("expected run command, got {other:?}"),
            }
        }
        match parse_args(&args("run --spec s.json")).unwrap() {
            Command::Run { delivery, .. } => assert_eq!(delivery, None),
            other => panic!("expected run command, got {other:?}"),
        }
        let err = parse_args(&args("run --spec s.json --delivery teleport")).unwrap_err();
        assert!(err.0.contains("unknown delivery 'teleport'"), "got: {err}");
    }

    #[test]
    fn run_delivery_selects_push_end_to_end() {
        // --delivery push on a sharing spec stamps the report's push
        // section; the explain narrative mentions the driver attaches.
        let tpch = TpchConfig::tiny();
        let db = generate(&tpch);
        let mut cfg = SharingConfig::new(0);
        cfg.delivery = DeliveryMode::Push;
        let w = throughput_workload(
            &db,
            2,
            tpch.months as i64,
            tpch.seed,
            SharingMode::ScanSharing(cfg),
        );
        let dir = std::env::temp_dir();
        let report_path = dir.join(format!("scanshare_push_cli_{}.json", std::process::id()));
        let outputs = RunOutputs {
            report: Some(report_path.to_string_lossy().into_owned()),
            trace: None,
            profile: None,
        };
        assert_eq!(
            run_maybe_compare_with(&db, &w, false, None, None, &outputs),
            0
        );
        let report = load_report(outputs.report.as_deref().unwrap()).unwrap();
        std::fs::remove_file(&report_path).ok();
        let ps = report.push.as_ref().expect("push section in the report");
        assert!(ps.drivers >= 1, "{ps:?}");
        assert!(ps.pages_delivered > 0, "{ps:?}");
        // The driver provenance survives the round trip and narrates.
        let text = explain::render_explain(&report, None).unwrap();
        assert!(text.contains("push driver"), "got: {text}");
    }

    #[test]
    fn spec_parse_diagnostic_mentions_the_faults_section() {
        let msg = spec_error("bad.json", "expected value at line 1");
        assert!(msg.contains("invalid spec bad.json"), "got: {msg}");
        assert!(msg.contains("optional \"faults\" section"), "got: {msg}");
        assert!(msg.contains("spec-template"), "got: {msg}");
    }

    #[test]
    fn parses_history_and_diff() {
        assert_eq!(
            parse_args(&args("history")).unwrap(),
            Command::History(history::HistoryOptions::default())
        );
        assert_eq!(
            parse_args(&args(
                "history --ledger l.jsonl --metric wall_ms.median --last 5 \
                 --json --check --strict --window 4"
            ))
            .unwrap(),
            Command::History(history::HistoryOptions {
                ledger: "l.jsonl".into(),
                metric: Some("wall_ms.median".into()),
                last: 5,
                json: true,
                check: true,
                strict: true,
                window: 4,
            })
        );
        assert_eq!(
            parse_args(&args("diff a.json b.json --json")).unwrap(),
            Command::Diff {
                a: "a.json".into(),
                b: "b.json".into(),
                json: true,
            }
        );
        // diff wants exactly two positional files and no stray flags.
        assert!(parse_args(&args("diff a.json")).is_err());
        assert!(parse_args(&args("diff a.json b.json c.json")).is_err());
        assert!(parse_args(&args("diff a.json b.json --frob")).is_err());
        assert!(parse_args(&args("history --last nope")).is_err());
    }

    #[test]
    fn usage_documents_history_and_diff() {
        assert!(USAGE.contains("scanshare history"));
        assert!(USAGE.contains("scanshare diff A.json B.json"));
        assert!(USAGE.contains("change-point"));
    }

    #[test]
    fn empty_and_help_yield_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn spec_template_roundtrips_through_json() {
        let spec = RunSpec::template();
        let json = serde_json::to_string(&spec).unwrap();
        let back: RunSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tpch.scale, spec.tpch.scale);
        assert_eq!(back.workload.streams.len(), spec.workload.streams.len());
        assert_eq!(back.workload.pool_pages, spec.workload.pool_pages);
    }

    #[test]
    fn run_spec_executes_end_to_end() {
        // Tiny spec, run through the same path as the binary.
        let tpch = TpchConfig::tiny();
        let db = generate(&tpch);
        let workload =
            throughput_workload(&db, 1, tpch.months as i64, tpch.seed, SharingMode::Base);
        let code = run_maybe_compare(&db, &workload, true);
        assert_eq!(code, 0);
    }
}
