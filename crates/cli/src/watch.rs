//! Live ASCII dashboard over a running workload.
//!
//! `scanshare watch` executes a spec on a background thread with a
//! [`scanshare_engine::RunHooks`] observer attached; the engine delivers
//! a [`WatchFrame`] at every metrics-sample tick, and the foreground
//! thread redraws the dashboard at a wall-clock cadence: group topology
//! (trailer → leader), per-scan throttle state against the fairness-cap
//! budget, a pool-residency heatmap by release priority, and the tail of
//! the decision-provenance log. The simulation itself runs on virtual
//! time, so watching costs nothing in measured results — the same spec
//! produces the same report with or without the dashboard.

use scanshare::decision::{describe, role_name};
use scanshare::{DecisionLog, DecisionRecord};
use scanshare_engine::{
    run_workload_hooked, Database, RunHooks, RunReport, WatchFrame, WorkloadSpec,
};
use scanshare_storage::PagePriority;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Columns in the residency heatmap and slowdown bars.
const STRIP_WIDTH: usize = 64;

/// How the dashboard runs.
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// Wall-clock milliseconds between redraws.
    pub tick_ms: u64,
    /// Clear the terminal between frames (ANSI); off for piped output.
    pub clear: bool,
    /// Decision-tail length.
    pub tail: usize,
}

impl Default for WatchOptions {
    fn default() -> Self {
        WatchOptions {
            tick_ms: 250,
            clear: true,
            tail: 8,
        }
    }
}

fn bar(frac: f64, width: usize) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// The pool-residency heatmap: resident pages bucketed over the resident
/// id range into a fixed-width strip, each column showing the highest
/// release priority present (`#` high, `=` normal, `.` low, space empty).
fn residency_strip(frame: &WatchFrame, width: usize) -> String {
    if frame.resident.is_empty() {
        return " ".repeat(width);
    }
    // resident_pages() is sorted by id; columns keep that order.
    let mut cols: Vec<Option<PagePriority>> = vec![None; width];
    for (i, p) in frame.resident.iter().enumerate() {
        let idx = (i * width / frame.resident.len()).min(width - 1);
        cols[idx] = Some(match cols[idx] {
            Some(prev) if prev >= p.priority => prev,
            _ => p.priority,
        });
    }
    cols.iter()
        .map(|c| match c {
            None => ' ',
            Some(PagePriority::High) => '#',
            Some(PagePriority::Normal) => '=',
            Some(PagePriority::Low) => '.',
        })
        .collect()
}

/// Render one dashboard frame as plain text (no ANSI).
pub fn render_dashboard(frame: &WatchFrame, tail: &[DecisionRecord], done: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scanshare watch — t={:.3}s  queries done {}  [{}]",
        frame.at.as_micros() as f64 / 1e6,
        frame.queries_done,
        if done { "finished" } else { "running" }
    );
    let _ = writeln!(
        out,
        "pool  {:>5}/{} pages resident  hit {:>5.1}%  evictions {}  reprioritizations {}",
        frame.resident.len(),
        frame.pool_capacity,
        frame.pool.hit_ratio() * 100.0,
        frame.pool.evictions,
        frame.pool.reprioritizations,
    );
    let _ = writeln!(
        out,
        "      |{}|  (# high  = normal  . low)",
        residency_strip(frame, STRIP_WIDTH)
    );
    let _ = writeln!(
        out,
        "disk  reads {}  seeks {}  head travel {} pages",
        frame.disk.pages_read, frame.disk.seeks, frame.disk.seek_distance_pages,
    );
    match &frame.probe {
        None => {
            let _ = writeln!(out, "mode  base (no sharing manager)");
        }
        Some(probe) => {
            let _ = writeln!(
                out,
                "groups ({} formed, {} shared)",
                probe.groups.len(),
                probe.shared_groups()
            );
            for g in &probe.groups {
                let members: Vec<String> = g.members.iter().map(|m| m.0.to_string()).collect();
                let _ = writeln!(
                    out,
                    "  group {}: {} scan{} [{}] extent {} pages",
                    g.anchor.0,
                    g.members.len(),
                    if g.members.len() == 1 { "" } else { "s" },
                    members.join(" -> "),
                    g.extent
                );
            }
            if !probe.scans.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:<5} {:<10} {:>10} {:>10}  {:<24} state",
                    "scan", "role", "remaining", "pages/s", "slowdown vs cap"
                );
            }
            for s in &probe.scans {
                let _ = writeln!(
                    out,
                    "  {:<5} {:<10} {:>10} {:>10.1}  |{}| {:>4.0}%  {}",
                    s.id.0,
                    role_name(s.role),
                    s.remaining_pages,
                    s.speed,
                    bar(s.slowdown_frac, 16),
                    s.slowdown_frac * 100.0,
                    if s.throttle_exempt { "cap-exempt" } else { "" },
                );
            }
        }
    }
    if !tail.is_empty() {
        let _ = writeln!(out, "decisions (last {})", tail.len());
        for r in tail {
            let _ = writeln!(
                out,
                "  {:>9.3}s  {}",
                r.at.as_micros() as f64 / 1e6,
                describe(&r.event)
            );
        }
    }
    out
}

/// Run `spec` with a live dashboard written to `out`. Returns the same
/// [`RunReport`] a plain `run` would have produced.
pub fn run_watch(
    db: &Database,
    spec: &WorkloadSpec,
    opts: &WatchOptions,
    out: &mut dyn std::io::Write,
) -> Result<RunReport, String> {
    let latest: Arc<Mutex<Option<WatchFrame>>> = Arc::new(Mutex::new(None));
    let log = DecisionLog::new(1 << 16);
    let sink = latest.clone();
    let hooks = RunHooks {
        decisions: Some(log.clone()),
        observer: Some(Arc::new(move |f: &WatchFrame| {
            *sink.lock().unwrap() = Some(f.clone());
        })),
        ..RunHooks::default()
    };

    std::thread::scope(|scope| {
        let worker = scope.spawn(|| run_workload_hooked(db, spec, hooks));
        loop {
            let done = worker.is_finished();
            if let Some(frame) = latest.lock().unwrap().clone() {
                let text = render_dashboard(&frame, &log.tail(opts.tail), done);
                if opts.clear {
                    let _ = write!(out, "\x1b[2J\x1b[H{text}");
                } else {
                    let _ = writeln!(out, "{text}");
                }
                let _ = out.flush();
            }
            if done {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(opts.tick_ms));
        }
        worker
            .join()
            .map_err(|_| "watch worker panicked".to_string())?
            .map_err(|e| format!("run failed: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare::anchor::AnchorId;
    use scanshare::{DecisionEvent, ManagerProbe, ScanId};
    use scanshare_storage::{
        DiskStats, PageId, PagePriority, PoolStats, ResidentPage, SimDuration, SimTime,
    };

    fn frame() -> WatchFrame {
        let pool = PoolStats {
            logical_reads: 100,
            hits: 80,
            reprioritizations: 3,
            ..PoolStats::default()
        };
        WatchFrame {
            at: SimTime::from_millis(1500),
            probe: Some(ManagerProbe::default()),
            pool,
            pool_capacity: 128,
            resident: vec![
                ResidentPage {
                    id: PageId::new(scanshare_storage::FileId(0), 1),
                    priority: PagePriority::High,
                    pinned: false,
                },
                ResidentPage {
                    id: PageId::new(scanshare_storage::FileId(0), 2),
                    priority: PagePriority::Low,
                    pinned: true,
                },
            ],
            disk: DiskStats::default(),
            queries_done: 2,
        }
    }

    #[test]
    fn dashboard_renders_pool_groups_and_tail() {
        let mut f = frame();
        let probe = f.probe.as_mut().unwrap();
        probe.groups.push(scanshare::GroupInfo {
            anchor: AnchorId(4),
            members: vec![ScanId(2), ScanId(0)],
            extent: 48,
        });
        probe.scans.push(scanshare::ScanProbe {
            id: ScanId(0),
            role: scanshare::Role::Leader,
            remaining_pages: 900,
            speed: 123.4,
            accumulated_slowdown: SimDuration::from_millis(100),
            slowdown_budget: SimDuration::from_millis(200),
            slowdown_frac: 0.5,
            throttle_exempt: false,
        });
        let tail = vec![DecisionRecord {
            at: SimTime::from_millis(1400),
            event: DecisionEvent::Unthrottle {
                scan: ScanId(0),
                group: AnchorId(4),
                distance_pages: 10,
                threshold_pages: 32,
            },
        }];
        let text = render_dashboard(&f, &tail, false);
        assert!(text.contains("t=1.500s"), "got: {text}");
        assert!(text.contains("2/128 pages resident"));
        assert!(text.contains("hit  80.0%"));
        assert!(text.contains("reprioritizations 3"));
        assert!(text.contains("group 4: 2 scans [2 -> 0] extent 48 pages"));
        assert!(text.contains("leader"));
        assert!(text.contains("50%"));
        assert!(text.contains("decisions (last 1)"));
        assert!(text.contains("unthrottled"));
        assert!(text.contains("[running]"));
        assert!(render_dashboard(&f, &tail, true).contains("[finished]"));
    }

    #[test]
    fn base_mode_frame_renders_without_probe() {
        let mut f = frame();
        f.probe = None;
        let text = render_dashboard(&f, &[], false);
        assert!(text.contains("base (no sharing manager)"));
        assert!(!text.contains("decisions (last"));
    }

    #[test]
    fn residency_strip_orders_and_marks_priorities() {
        let f = frame();
        let strip = residency_strip(&f, 8);
        assert_eq!(strip.len(), 8);
        assert!(strip.contains('#'), "high-priority page missing: {strip:?}");
        assert!(strip.contains('.'), "low-priority page missing: {strip:?}");
        let empty = WatchFrame {
            resident: vec![],
            ..f
        };
        assert_eq!(residency_strip(&empty, 8), "        ");
    }

    #[test]
    fn bar_clamps_and_fills() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 4), "####");
    }

    #[test]
    fn watch_runs_a_tiny_spec_and_reports_like_a_plain_run() {
        use scanshare::SharingConfig;
        use scanshare_engine::SharingMode;
        use scanshare_tpch::{generate, throughput_workload, TpchConfig};
        let tpch = TpchConfig::tiny();
        let db = generate(&tpch);
        let spec = throughput_workload(
            &db,
            2,
            tpch.months as i64,
            tpch.seed,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let mut buf = Vec::new();
        let opts = WatchOptions {
            tick_ms: 1,
            clear: false,
            tail: 4,
        };
        let r = run_watch(&db, &spec, &opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("scanshare watch"), "got: {text}");
        assert!(text.contains("[finished]"));
        assert!(text.contains("pages resident"));
        // Watching changes nothing measured: virtual time, same report.
        let plain = scanshare_engine::run_workload(&db, &spec).unwrap();
        assert_eq!(r.makespan, plain.makespan);
        assert_eq!(r.disk.pages_read, plain.disk.pages_read);
        assert_eq!(r.decisions.len(), plain.decisions.len());
        assert!(!r.decisions.is_empty());
    }
}
