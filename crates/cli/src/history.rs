//! `scanshare history` — render a run-history ledger as trend tables.
//!
//! The ledger (`results/history.jsonl`, written by `bench_gate
//! --history` and the `exp_*` binaries) accumulates one JSON line per
//! run. This module turns a ledger into a per-metric trend view: one
//! row per recorded metric with a unicode sparkline over the selected
//! entries (oldest → newest), first/last values, and the net change.
//! The wall section joins the table as pseudo-metrics
//! (`wall_ms.median`, `pages_per_wall_sec.median`) so host-speed drift
//! is visible next to the exact virtual metrics.
//!
//! `--check` additionally validates the ledger line-by-line and runs
//! the trailing-window change-point check from
//! [`scanshare_bench::stats`] on the wall medians: the newest entry is
//! tested against the pooled bootstrap CI of the window before it.
//! The verdict is informational (exit 0) unless `--strict` promotes a
//! flagged trend to exit 1 — mirroring `bench_gate --trend-gate`.

use scanshare_bench::history::HistoryEntry;
use scanshare_bench::stats;

/// Sparkline ramp, lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Options parsed from `scanshare history ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryOptions {
    /// Ledger path (`--ledger`, default `results/history.jsonl`).
    pub ledger: String,
    /// Restrict the table to one metric (`--metric NAME`).
    pub metric: Option<String>,
    /// Show only the last K entries (`--last K`, 0 = all).
    pub last: usize,
    /// Emit the trend data as JSON instead of the table.
    pub json: bool,
    /// Validate the ledger and run the wall-time change-point check.
    pub check: bool,
    /// With `--check`: exit 1 when the check flags the newest entry.
    pub strict: bool,
    /// Trailing-window length for the check (`--window K`).
    pub window: usize,
}

impl Default for HistoryOptions {
    fn default() -> Self {
        HistoryOptions {
            ledger: "results/history.jsonl".to_string(),
            metric: None,
            last: 0,
            json: false,
            check: false,
            strict: false,
            window: stats::DEFAULT_WINDOW,
        }
    }
}

/// Draw `values` as a fixed-length sparkline scaled min..max. A
/// constant (or single-point) series renders at mid-height so it stays
/// visible without suggesting movement.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if span <= 0.0 {
                SPARK[3]
            } else {
                let level = ((v - lo) / span * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[level.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

/// One metric's trajectory over the selected entries. `values[i]` is
/// `None` when entry `i` did not record the metric (rendered as a gap).
#[derive(Debug, Clone, PartialEq)]
pub struct Trend {
    /// Metric name.
    pub name: String,
    /// Per-entry values, oldest first.
    pub values: Vec<Option<f64>>,
}

impl Trend {
    /// The recorded values only, in order.
    pub fn present(&self) -> Vec<f64> {
        self.values.iter().filter_map(|v| *v).collect()
    }
}

/// Series key for a metric recorded by `entry`: entries tagged with a
/// non-default delivery mode trend under `<delivery>:<metric>` so push
/// runs never splice into the pull trajectory of the same metric.
fn series_key(entry: &HistoryEntry, metric: &str) -> String {
    match entry.delivery.as_deref() {
        Some(d) if d != "pull" => format!("{d}:{metric}"),
        _ => metric.to_string(),
    }
}

/// Collect every metric trajectory over `entries`, in first-seen order:
/// virtual metrics first (as recorded, namespaced per delivery mode),
/// then the wall pseudo-metrics.
pub fn trends(entries: &[HistoryEntry]) -> Vec<Trend> {
    let mut order: Vec<String> = Vec::new();
    for e in entries {
        for m in &e.metrics {
            let key = series_key(e, &m.name);
            if !order.contains(&key) {
                order.push(key);
            }
        }
    }
    if entries.iter().any(|e| e.wall.is_some()) {
        order.push("wall_ms.median".to_string());
        order.push("pages_per_wall_sec.median".to_string());
    }
    order
        .into_iter()
        .map(|name| Trend {
            values: entries
                .iter()
                .map(|e| match name.as_str() {
                    "wall_ms.median" => e.wall.as_ref().map(|w| w.wall_ms.median),
                    "pages_per_wall_sec.median" => {
                        e.wall.as_ref().map(|w| w.pages_per_wall_sec.median)
                    }
                    _ => e
                        .metrics
                        .iter()
                        .find(|m| series_key(e, &m.name) == name)
                        .map(|m| m.value),
                })
                .collect(),
            name,
        })
        .collect()
}

/// Render the human trend view: an entry header (index, SHA, date,
/// source, config) followed by the per-metric table.
pub fn render_history(entries: &[HistoryEntry], metric: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str(&format!("== ledger entries ({}) ==\n", entries.len()));
    for (i, e) in entries.iter().enumerate() {
        let mut cfg = Vec::new();
        if let Some(p) = &e.policy {
            cfg.push(format!("policy {p}"));
        }
        if let Some(f) = &e.faults {
            cfg.push(format!("faults {f}"));
        }
        if let Some(d) = &e.delivery {
            cfg.push(format!("delivery {d}"));
        }
        if let Some(w) = &e.wall {
            cfg.push(format!("reps {} jobs {}", w.reps, w.jobs));
        }
        out.push_str(&format!(
            "  [{i:>2}] {:<12} {:<20} {:<10} {}\n",
            e.git_sha,
            e.recorded_at,
            e.source,
            cfg.join(", "),
        ));
    }
    out.push('\n');
    let all = trends(entries);
    let selected: Vec<&Trend> = all
        .iter()
        .filter(|t| metric.is_none_or(|m| t.name == m))
        .collect();
    out.push_str(&format!("== metric trends ({}) ==\n", selected.len()));
    let name_w = selected
        .iter()
        .map(|t| t.name.len())
        .max()
        .unwrap_or(0)
        .max(6);
    for t in &selected {
        let present = t.present();
        let (first, last) = match (present.first(), present.last()) {
            (Some(f), Some(l)) => (*f, *l),
            _ => {
                out.push_str(&format!("  {:<name_w$}  (no samples)\n", t.name));
                continue;
            }
        };
        let delta_pct = if first.abs() > 1e-12 {
            (last - first) / first * 100.0
        } else {
            0.0
        };
        // Gaps (entries missing the metric) render as spaces inside the
        // sparkline so columns stay aligned with the entry header.
        let line: String = t
            .values
            .iter()
            .map(|v| match v {
                None => ' ',
                Some(_) => '\0', // placeholder, replaced below
            })
            .collect();
        let spark = sparkline(&present);
        let mut spark_chars = spark.chars();
        let merged: String = line
            .chars()
            .map(|c| {
                if c == '\0' {
                    spark_chars.next().unwrap_or(' ')
                } else {
                    c
                }
            })
            .collect();
        out.push_str(&format!(
            "  {:<name_w$}  {merged}  first {:>14.2}  last {:>14.2}  Δ {:>+7.2}%\n",
            t.name, first, last, delta_pct,
        ));
    }
    out
}

/// Build the `--json` payload: entries + per-metric trajectories.
pub fn history_json(entries: &[HistoryEntry], metric: Option<&str>) -> serde_json::Value {
    use serde::Serialize as _;
    let mut metrics = Vec::new();
    for t in trends(entries) {
        if metric.is_some_and(|m| t.name != m) {
            continue;
        }
        let mut obj = serde_json::Map::new();
        obj.insert("name", serde_json::Value::String(t.name.clone()));
        obj.insert(
            "values",
            serde_json::Value::Array(
                t.values
                    .iter()
                    .map(|v| match v {
                        None => serde_json::Value::Null,
                        Some(x) => serde_json::Value::Number(serde_json::Number::F64(*x)),
                    })
                    .collect(),
            ),
        );
        metrics.push(serde_json::Value::Object(obj));
    }
    let mut root = serde_json::Map::new();
    root.insert(
        "entries",
        serde_json::Value::Array(entries.iter().map(|e| e.to_json_value()).collect()),
    );
    root.insert("trends", serde_json::Value::Array(metrics));
    serde_json::Value::Object(root)
}

/// Execute `scanshare history`. Returns the process exit code: 2 for an
/// unreadable/malformed ledger or unknown `--metric`, 1 when `--check
/// --strict` flags the newest entry, 0 otherwise.
pub fn run_history(opts: &HistoryOptions) -> i32 {
    let entries = match scanshare_bench::history::load(&opts.ledger) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if entries.is_empty() {
        eprintln!("ledger {} has no entries", opts.ledger);
        return 2;
    }
    let shown: &[HistoryEntry] = if opts.last > 0 && opts.last < entries.len() {
        &entries[entries.len() - opts.last..]
    } else {
        &entries
    };
    if let Some(m) = &opts.metric {
        let known = trends(shown).iter().any(|t| &t.name == m);
        if !known {
            eprintln!(
                "metric '{m}' not recorded in {} (try one of: {})",
                opts.ledger,
                trends(shown)
                    .iter()
                    .map(|t| t.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return 2;
        }
    }
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&history_json(shown, opts.metric.as_deref()))
                .expect("trend json serializes")
        );
    } else {
        print!("{}", render_history(shown, opts.metric.as_deref()));
    }
    if !opts.check {
        return 0;
    }
    // Change-point check: newest entry's wall median vs the pooled CI
    // of the window preceding it (whole ledger, not just --last).
    let wall: Vec<f64> = entries
        .iter()
        .filter_map(|e| e.wall.as_ref().map(|w| w.wall_ms.median))
        .collect();
    let Some((&observed, prior)) = wall.split_last() else {
        eprintln!("check: no wall sections in ledger — nothing to check");
        return 0;
    };
    match stats::change_point(prior, observed, opts.window, stats::DEFAULT_SEED) {
        None => {
            eprintln!(
                "check: ledger valid; trend skipped ({} prior wall sample(s), need {})",
                prior.len(),
                stats::MIN_WINDOW
            );
            0
        }
        Some(cp) => {
            let verdict = if cp.flagged { "FLAGGED" } else { "ok" };
            eprintln!(
                "check: ledger valid; wall median {:.1} ms vs pooled 95% CI \
                 [{:.1}, {:.1}] over last {} entries — {verdict}",
                cp.observed, cp.pooled.lo, cp.pooled.hi, cp.window,
            );
            if cp.flagged && opts.strict {
                1
            } else {
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_bench::history::{MetricSample, WallStats};
    use scanshare_bench::stats::ReplicateStats;

    fn entry(sha: &str, makespan: f64, wall: f64) -> HistoryEntry {
        HistoryEntry {
            git_sha: sha.to_string(),
            recorded_at: "2026-08-09T12:00:00Z".to_string(),
            source: "bench_gate".to_string(),
            policy: None,
            faults: None,
            delivery: None,
            metrics: vec![MetricSample {
                name: "ss_makespan_us".into(),
                value: makespan,
            }],
            wall: Some(WallStats {
                reps: 3,
                jobs: 1,
                wall_ms: ReplicateStats::from_samples(&[wall, wall * 1.01, wall * 0.99]),
                pages_per_wall_sec: ReplicateStats::from_samples(&[1e6]),
            }),
        }
    }

    #[test]
    fn sparkline_scales_and_handles_constants() {
        let s = sparkline(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.chars().count(), 4);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        // Constant series: mid-height everywhere, never divide-by-zero.
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[9.0]), "▄");
    }

    #[test]
    fn trends_cover_metrics_and_wall_pseudometrics() {
        let entries = vec![entry("a", 100.0, 10.0), entry("b", 110.0, 11.0)];
        let ts = trends(&entries);
        let names: Vec<&str> = ts.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "ss_makespan_us",
                "wall_ms.median",
                "pages_per_wall_sec.median"
            ]
        );
        assert_eq!(ts[0].values, vec![Some(100.0), Some(110.0)]);
    }

    #[test]
    fn push_entries_trend_as_their_own_series() {
        // A ledger holding both delivery modes must trend them apart:
        // push entries namespace their metrics as push:<name> and leave
        // gaps in the pull series (and vice versa).
        let mut push = entry("pppp", 90.0, 9.0);
        push.delivery = Some("push".to_string());
        let entries = vec![entry("a", 100.0, 10.0), push, entry("b", 110.0, 11.0)];
        let ts = trends(&entries);
        let names: Vec<&str> = ts.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "ss_makespan_us",
                "push:ss_makespan_us",
                "wall_ms.median",
                "pages_per_wall_sec.median"
            ]
        );
        assert_eq!(ts[0].values, vec![Some(100.0), None, Some(110.0)]);
        assert_eq!(ts[1].values, vec![None, Some(90.0), None]);
        // The header names the delivery mode next to the tagged entry.
        let text = render_history(&entries, None);
        assert!(text.contains("delivery push"), "got: {text}");
        // An explicit pull tag is the default series, not a namespace.
        let mut pull = entry("qqqq", 95.0, 9.5);
        pull.delivery = Some("pull".to_string());
        let ts = trends(&[pull]);
        assert_eq!(ts[0].name, "ss_makespan_us");
    }

    #[test]
    fn render_lists_entries_and_deltas() {
        let entries = vec![entry("aaaa", 100.0, 10.0), entry("bbbb", 150.0, 10.0)];
        let text = render_history(&entries, None);
        assert!(text.contains("ledger entries (2)"), "got: {text}");
        assert!(text.contains("aaaa"), "got: {text}");
        assert!(text.contains("ss_makespan_us"), "got: {text}");
        assert!(text.contains("+50.00%"), "got: {text}");
        // Metric filter narrows the table without touching the header.
        let one = render_history(&entries, Some("ss_makespan_us"));
        assert!(one.contains("metric trends (1)"), "got: {one}");
        assert!(!one.contains("wall_ms.median"), "got: {one}");
    }
}
