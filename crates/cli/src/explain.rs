//! Causal narratives from a saved run's decision log.
//!
//! `scanshare explain` replays the [`RunReport`]'s embedded
//! `DecisionRecord`s — the provenance the sharing manager recorded for
//! every placement, throttle, cap, role, and priority decision — as
//! per-scan narratives ("why was scan 3 slowed down?") and per-group
//! timelines. Each line names the inputs the policy saw: candidate
//! savings against the placement threshold, leader–trailer distance
//! against the throttle threshold, accumulated slowdown against the
//! fairness-cap budget.

use scanshare::decision::{describe, slowdown_frac};
use scanshare::{DecisionEvent, DecisionRecord, ScanId};
use scanshare_engine::RunReport;
use std::fmt::Write;

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

fn sorted_by_time(records: &[DecisionRecord]) -> Vec<&DecisionRecord> {
    let mut sorted: Vec<&DecisionRecord> = records.iter().collect();
    // Stable: records at equal times keep their emission order.
    sorted.sort_by_key(|r| r.at);
    sorted
}

fn kind_name(e: &DecisionEvent) -> &'static str {
    match e {
        DecisionEvent::PolicyChosen { .. } => "policy",
        DecisionEvent::GroupStart { .. } => "group-start",
        DecisionEvent::GroupJoin { .. } => "group-join",
        DecisionEvent::Throttle { .. } => "throttle",
        DecisionEvent::Unthrottle { .. } => "unthrottle",
        DecisionEvent::SlowdownCapHit { .. } => "cap-hit",
        DecisionEvent::RoleChange { .. } => "role-change",
        DecisionEvent::PageReprioritize { .. } => "reprioritize",
        DecisionEvent::FaultInjected { .. } => "fault",
        DecisionEvent::ScanEvicted { .. } => "evicted",
        DecisionEvent::DegradedMode { .. } => "degraded",
        DecisionEvent::DriverAttach { .. } => "driver-attach",
        DecisionEvent::DriverHandoff { .. } => "driver-handoff",
    }
}

/// The distinct scans a decision log mentions, in id order.
pub fn scans_mentioned(records: &[DecisionRecord]) -> Vec<ScanId> {
    let mut ids: Vec<ScanId> = records.iter().map(|r| r.event.scan()).collect();
    ids.sort();
    ids.dedup();
    ids
}

fn narrative_for(out: &mut String, records: &[&DecisionRecord], scan: ScanId) {
    let mine: Vec<&&DecisionRecord> = records.iter().filter(|r| r.event.scan() == scan).collect();
    let _ = writeln!(
        out,
        "== scan {} narrative ({} decisions) ==",
        scan.0,
        mine.len()
    );
    let mut total_wait = 0u64;
    for r in &mine {
        if let DecisionEvent::Throttle { wait, .. } = &r.event {
            total_wait += wait.as_micros();
        }
        let _ = writeln!(
            out,
            "  {:>9.3}s  {}",
            secs(r.at.as_micros()),
            describe(&r.event)
        );
    }
    // Closing state: what the accumulated throttling amounted to.
    let last_throttle = mine.iter().rev().find_map(|r| match &r.event {
        DecisionEvent::Throttle {
            accumulated_slowdown,
            slowdown_budget,
            fairness_cap,
            ..
        } => Some((*accumulated_slowdown, *slowdown_budget, *fairness_cap)),
        _ => None,
    });
    if let Some((acc, budget, cap)) = last_throttle {
        let _ = writeln!(
            out,
            "  -- total injected wait {:.3}s; final slowdown {:.1}% of the {:.0}% budget ({budget})",
            secs(total_wait),
            slowdown_frac(acc, budget) * 100.0,
            cap * 100.0,
        );
    }
    out.push('\n');
}

fn group_timelines(out: &mut String, records: &[&DecisionRecord]) {
    let mut anchors: Vec<u64> = records
        .iter()
        .filter_map(|r| r.event.group())
        .map(|a| a.0)
        .collect();
    anchors.sort_unstable();
    anchors.dedup();
    for a in anchors {
        let events: Vec<&&DecisionRecord> = records
            .iter()
            .filter(|r| r.event.group().map(|g| g.0) == Some(a))
            .collect();
        let _ = writeln!(out, "== group {a} timeline ({} decisions) ==", events.len());
        for r in events {
            let _ = writeln!(
                out,
                "  {:>9.3}s  {}",
                secs(r.at.as_micros()),
                describe(&r.event)
            );
        }
        out.push('\n');
    }
}

/// Render the full explanation of a saved run, or of a single scan when
/// `scan` is given. Errors when the requested scan has no decisions.
pub fn render_explain(report: &RunReport, scan: Option<u64>) -> Result<String, String> {
    let mut out = String::new();
    // Reports stamp the policy only when it is not the default grouping
    // machinery; name it up front so the narrative reads correctly.
    if let Some(p) = report.policy {
        let _ = writeln!(
            out,
            "run used the non-default '{p}' sharing policy; decisions below follow it\n"
        );
    }
    // Service-level verdicts come first: they are the run's contract,
    // and the decisions below are the evidence for why they held or
    // broke (throttle waits stretch queries, placement misses cost
    // hit ratio).
    if scan.is_none() && !report.slo.is_empty() {
        let breached = report.slo.iter().filter(|v| !v.passed).count();
        let _ = writeln!(
            out,
            "== SLO verdicts: {} of {} rule(s) breached ==",
            breached,
            report.slo.len()
        );
        for v in &report.slo {
            let status = if v.passed { "PASS" } else { "FAIL" };
            let why = if v.note.is_empty() {
                format!("observed {:.4}", v.observed)
            } else {
                v.note.clone()
            };
            let _ = writeln!(
                out,
                "  {status}  {:<16} wants {} {} {:.4} — {why}",
                v.rule,
                v.metric,
                v.op.symbol(),
                v.threshold,
            );
        }
        out.push('\n');
    }
    if report.decisions.is_empty() {
        out.push_str(
            "no decisions recorded (base-mode run, or artifact predating decision provenance)\n",
        );
        return match scan {
            Some(id) => Err(format!("no decisions for scan {id}: the artifact has none")),
            None => Ok(out),
        };
    }
    let sorted = sorted_by_time(&report.decisions);
    let scans = scans_mentioned(&report.decisions);

    if let Some(id) = scan {
        let id = ScanId(id);
        if !scans.contains(&id) {
            let known: Vec<String> = scans.iter().map(|s| s.0.to_string()).collect();
            return Err(format!(
                "no decisions for scan {} (scans with decisions: {})",
                id.0,
                known.join(", ")
            ));
        }
        narrative_for(&mut out, &sorted, id);
        return Ok(out);
    }

    // Summary header: how much provenance there is, of what kinds.
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    for r in &sorted {
        let k = kind_name(&r.event);
        match kinds.iter_mut().find(|(name, _)| *name == k) {
            Some((_, n)) => *n += 1,
            None => kinds.push((k, 1)),
        }
    }
    let _ = writeln!(
        out,
        "== decision summary: {} decisions over {} scans ==",
        sorted.len(),
        scans.len()
    );
    for (k, n) in &kinds {
        let _ = writeln!(out, "  {k:<14} {n:>6}");
    }
    out.push('\n');

    for s in scans {
        narrative_for(&mut out, &sorted, s);
    }
    group_timelines(&mut out, &sorted);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare::anchor::AnchorId;
    use scanshare::{Location, ObjectId, PlacementCandidate};
    use scanshare_storage::{SimDuration, SimTime};

    fn report_with(decisions: Vec<DecisionRecord>) -> RunReport {
        RunReport {
            makespan: SimDuration::from_secs(1),
            stream_elapsed: vec![],
            queries: vec![],
            breakdown: Default::default(),
            disk: Default::default(),
            read_series: Default::default(),
            seek_series: Default::default(),
            seek_distance_series: Default::default(),
            pool: Default::default(),
            sharing: Default::default(),
            metrics: Default::default(),
            trace: vec![],
            decisions,
            faults: Default::default(),
            policy: None,
            profile: None,
            slo: Vec::new(),
            push: None,
        }
    }

    fn sample_log() -> Vec<DecisionRecord> {
        vec![
            DecisionRecord {
                at: SimTime::from_millis(5),
                event: DecisionEvent::GroupStart {
                    scan: ScanId(0),
                    object: ObjectId(1),
                    candidates: vec![],
                    threshold_pages: 16.0,
                },
            },
            DecisionRecord {
                at: SimTime::from_millis(40),
                event: DecisionEvent::GroupJoin {
                    scan: ScanId(1),
                    object: ObjectId(1),
                    joined: Some(ScanId(0)),
                    location: Location::new(480, 480),
                    back_up_pages: 0,
                    candidates: vec![PlacementCandidate {
                        scan: Some(ScanId(0)),
                        location: Location::new(480, 480),
                        saving_pages: 300.0,
                        score: 0.7,
                        speed: 90.0,
                    }],
                    threshold_pages: 16.0,
                },
            },
            DecisionRecord {
                at: SimTime::from_millis(90),
                event: DecisionEvent::Throttle {
                    scan: ScanId(0),
                    group: AnchorId(2),
                    distance_pages: 64,
                    threshold_pages: 32,
                    wait: SimDuration::from_millis(20),
                    accumulated_slowdown: SimDuration::from_millis(20),
                    slowdown_budget: SimDuration::from_secs(4),
                    fairness_cap: 0.8,
                    trailer: ScanId(1),
                    trailer_speed: 55.0,
                },
            },
            DecisionRecord {
                at: SimTime::from_millis(200),
                event: DecisionEvent::Unthrottle {
                    scan: ScanId(0),
                    group: AnchorId(2),
                    distance_pages: 16,
                    threshold_pages: 32,
                },
            },
        ]
    }

    #[test]
    fn full_explanation_covers_scans_and_groups() {
        let text = render_explain(&report_with(sample_log()), None).unwrap();
        assert!(text.contains("4 decisions over 2 scans"), "got: {text}");
        assert!(text.contains("scan 0 narrative"));
        assert!(text.contains("scan 1 narrative"));
        assert!(text.contains("group 2 timeline"));
        // The acceptance bar: throttle lines name the distance threshold
        // and the fairness-cap values.
        assert!(text.contains("threshold 32 pages"), "got: {text}");
        assert!(text.contains("80% of budget"), "got: {text}");
        assert!(text.contains("total injected wait 0.020s"));
    }

    #[test]
    fn single_scan_narrative_filters_and_unknown_scan_errors() {
        let report = report_with(sample_log());
        let text = render_explain(&report, Some(1)).unwrap();
        assert!(text.contains("scan 1 narrative"));
        assert!(!text.contains("scan 0 narrative"));
        let err = render_explain(&report, Some(9)).unwrap_err();
        assert!(err.contains("no decisions for scan 9"), "got: {err}");
        assert!(err.contains("0, 1"), "got: {err}");
    }

    #[test]
    fn empty_log_explains_itself() {
        let report = report_with(vec![]);
        let text = render_explain(&report, None).unwrap();
        assert!(text.contains("no decisions recorded"));
        assert!(render_explain(&report, Some(0)).is_err());
    }

    #[test]
    fn non_default_policy_is_named_and_narrated() {
        let mut log = sample_log();
        log.insert(
            0,
            DecisionRecord {
                at: SimTime::ZERO,
                event: DecisionEvent::PolicyChosen {
                    scan: ScanId(0),
                    policy: scanshare::SharingPolicyKind::Attach,
                },
            },
        );
        let mut report = report_with(log);
        report.policy = Some(scanshare::SharingPolicyKind::Attach);
        let text = render_explain(&report, None).unwrap();
        assert!(
            text.contains("non-default 'attach' sharing policy"),
            "got: {text}"
        );
        assert!(text.contains("policy 'attach' selected"), "got: {text}");
        assert!(text.contains("policy"), "got: {text}");
    }

    #[test]
    fn slo_verdicts_lead_the_narrative() {
        use scanshare_engine::slo::{SloOp, SloVerdict};
        let mut report = report_with(sample_log());
        report.slo = vec![
            SloVerdict {
                rule: "fair".into(),
                metric: "p99_stretch".into(),
                op: SloOp::Le,
                threshold: 1.5,
                observed: 2.25,
                passed: false,
                note: String::new(),
            },
            SloVerdict {
                rule: "warm".into(),
                metric: "hit_ratio".into(),
                op: SloOp::Ge,
                threshold: 0.5,
                observed: 0.8,
                passed: true,
                note: String::new(),
            },
        ];
        let text = render_explain(&report, None).unwrap();
        assert!(text.contains("1 of 2 rule(s) breached"), "got: {text}");
        assert!(
            text.contains("FAIL  fair             wants p99_stretch <= 1.5000 — observed 2.2500"),
            "got: {text}"
        );
        assert!(text.contains("PASS  warm"), "got: {text}");
        // The verdicts lead; the decision evidence follows.
        assert!(
            text.find("SLO verdicts").unwrap() < text.find("decision summary").unwrap(),
            "got: {text}"
        );
        // A single-scan narrative stays focused on the scan.
        let one = render_explain(&report, Some(0)).unwrap();
        assert!(!one.contains("SLO verdicts"), "got: {one}");
    }

    #[test]
    fn narratives_are_time_ordered_even_when_the_log_interleaves() {
        let mut log = sample_log();
        log.swap(2, 3); // emission order now violates time order
        let text = render_explain(&report_with(log), Some(0)).unwrap();
        let throttle_pos = text.find("throttled").unwrap();
        let unthrottle_pos = text.find("unthrottled").unwrap();
        assert!(throttle_pos < unthrottle_pos, "got: {text}");
    }
}
