//! The `scanshare` command-line binary. See `scanshare help`.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Piping into `head` closes stdout early; treat the resulting
    // broken-pipe panic as the conventional silent 141 exit instead of
    // a backtrace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.to_string();
        if !msg.contains("Broken pipe") {
            default_hook(info);
        }
    }));
    let code = match std::panic::catch_unwind(|| match scanshare_cli::parse_args(&args) {
        Ok(cmd) => scanshare_cli::execute(cmd),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", scanshare_cli::USAGE);
            2
        }
    }) {
        Ok(code) => code,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if msg.contains("Broken pipe") {
                141
            } else {
                let _ = writeln!(std::io::stderr(), "internal error: {msg}");
                101
            }
        }
    };
    std::process::exit(code);
}
