//! Text rendering of saved run artifacts.
//!
//! `scanshare trace` and `scanshare metrics` replay a [`RunReport`] that
//! a previous `scanshare run --report FILE` wrote to disk: no simulation
//! happens here, only formatting of what the observability layer
//! recorded — scan lifecycles reassembled from the embedded trace, and
//! the metrics snapshot's counters, histograms, and time series drawn as
//! fixed-width ASCII timelines.

use scanshare::obs::{HistogramSnapshot, MetricsSnapshot, SeriesSnapshot};
use scanshare_engine::trace::{render_records, spans, TraceRecord};
use scanshare_engine::RunReport;

/// Columns in a rendered timeline.
const TIMELINE_WIDTH: usize = 48;

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

/// Draw `s` as a fixed-width intensity strip over `[0, end_us]`: each
/// column holds the maximum sample landing in its time slice, scaled
/// against the series' global maximum into the ASCII ramp ` .:-=+*#%@`.
fn timeline(s: &SeriesSnapshot, end_us: u64, width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let end_us = end_us.max(1);
    let peak = s.max_value();
    let mut cols = vec![f64::NEG_INFINITY; width];
    for p in &s.points {
        let idx = ((p.at_us.min(end_us - 1)) as usize * width) / end_us as usize;
        let idx = idx.min(width - 1);
        cols[idx] = cols[idx].max(p.value);
    }
    cols.iter()
        .map(|&v| {
            if v == f64::NEG_INFINITY {
                ' '
            } else if peak <= 0.0 {
                RAMP[1] as char
            } else {
                let level = ((v / peak) * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[level.clamp(1, RAMP.len() - 1)] as char
            }
        })
        .collect()
}

fn render_series_block(out: &mut String, title: &str, series: &[&SeriesSnapshot], end_us: u64) {
    if series.is_empty() {
        return;
    }
    out.push_str(&format!("== {title} ==\n"));
    let name_w = series.iter().map(|s| s.name.len()).max().unwrap_or(0);
    for s in series {
        let last = s.points.last().map(|p| p.value).unwrap_or(0.0);
        out.push_str(&format!(
            "  {:<name_w$} |{}| last {:>10.3}  peak {:>10.3}  ({} pts)\n",
            s.name,
            timeline(s, end_us, TIMELINE_WIDTH),
            last,
            s.max_value(),
            s.points.len(),
        ));
    }
    out.push('\n');
}

fn render_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "  {:<20} n {:>8}  min {:>9}  p50 {:>9}  p95 {:>9}  p99 {:>9}  max {:>9}  mean {:>11.1}\n",
        h.name,
        h.count,
        h.min,
        h.p50,
        h.p95,
        h.p99,
        h.max,
        h.mean(),
    ));
}

/// Width of a bucket-count bar in `--quantiles` output.
const BUCKET_BAR: usize = 24;

/// Expand one histogram under its summary line: exact-or-bucketed
/// p50/p90/p95/p99, then every non-empty power-of-two bucket with its
/// inclusive upper bound and a count bar.
fn render_histogram_quantiles(out: &mut String, h: &HistogramSnapshot) {
    // An empty histogram has no quantiles: say so instead of printing
    // p50..p99 rows of misleading zeros (and never divide by a zero
    // peak below).
    if h.count == 0 {
        out.push_str("    quantiles   n=0 (no samples recorded)\n");
        return;
    }
    out.push_str(&format!(
        "    quantiles   p50 {:>9}  p90 {:>9}  p95 {:>9}  p99 {:>9}\n",
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.95),
        h.quantile(0.99),
    ));
    let peak = h.buckets.iter().map(|b| b.count).max().unwrap_or(0).max(1);
    for b in &h.buckets {
        let le = if b.le == u64::MAX {
            "+inf".to_string()
        } else {
            b.le.to_string()
        };
        // A single-bucket (degenerate) histogram owns the peak, so its
        // bar renders full-width rather than dividing to nothing.
        let bar = "#".repeat(((b.count * BUCKET_BAR as u64) / peak).max(1) as usize);
        out.push_str(&format!("    le {le:>12} {:>10}  {bar}\n", b.count));
    }
}

/// Render the metrics snapshot of a saved run: aggregate counters and
/// gauges, latency histograms, and every sampled time series as a
/// timeline spanning the run.
pub fn render_metrics(report: &RunReport) -> String {
    render_metrics_detailed(report, false)
}

/// [`render_metrics`] with an optional per-histogram quantile/bucket
/// expansion (`scanshare metrics --quantiles`).
pub fn render_metrics_detailed(report: &RunReport, quantiles: bool) -> String {
    let m: &MetricsSnapshot = &report.metrics;
    let end_us = m.at.as_micros().max(report.makespan.as_micros());
    let mut out = String::new();
    out.push_str(&format!(
        "run: makespan {:.3}s, snapshot at {:.3}s\n\n",
        report.makespan.as_secs_f64(),
        secs(m.at.as_micros()),
    ));
    if !m.counters.is_empty() {
        out.push_str("== counters ==\n");
        for c in &m.counters {
            out.push_str(&format!("  {:<24} {:>12}\n", c.name, c.value));
        }
        out.push('\n');
    }
    if !m.gauges.is_empty() {
        out.push_str("== gauges ==\n");
        for g in &m.gauges {
            out.push_str(&format!("  {:<24} {:>12.3}\n", g.name, g.value));
        }
        out.push('\n');
    }
    if !m.histograms.is_empty() {
        out.push_str("== histograms (µs) ==\n");
        for h in &m.histograms {
            render_histogram(&mut out, h);
            if quantiles {
                render_histogram_quantiles(&mut out, h);
            }
        }
        out.push('\n');
    }
    let groups: Vec<&SeriesSnapshot> = m.series_with_prefix("group.").collect();
    let scans: Vec<&SeriesSnapshot> = m.series_with_prefix("scan.").collect();
    let rest: Vec<&SeriesSnapshot> = m
        .series
        .iter()
        .filter(|s| !s.name.starts_with("group.") && !s.name.starts_with("scan."))
        .collect();
    render_series_block(
        &mut out,
        "group timelines (leader-trailer distance, pages)",
        &groups,
        end_us,
    );
    render_series_block(
        &mut out,
        "scan timelines (slowdown vs fairness cap, 0..1)",
        &scans,
        end_us,
    );
    render_series_block(&mut out, "system series", &rest, end_us);
    out
}

/// Render a [`crate::diff::ReportDiff`] for humans: the headline table always, then
/// only the sections that actually moved.
pub fn render_report_diff(a: &str, b: &str, d: &crate::diff::ReportDiff) -> String {
    let mut out = String::new();
    out.push_str(&format!("== report diff: {a} -> {b} ==\n"));
    out.push_str(&format!(
        "  {:<20} {:>16} {:>16} {:>14} {:>9}\n",
        "metric", "A", "B", "delta", "%"
    ));
    for h in &d.headline {
        out.push_str(&format!(
            "  {:<20} {:>16.2} {:>16.2} {:>+14.2} {:>+8.2}%\n",
            h.name,
            h.a,
            h.b,
            h.delta,
            h.pct()
        ));
    }
    if d.policy_a != d.policy_b {
        let fmt = |p: &Option<String>| p.clone().unwrap_or_else(|| "default".to_string());
        out.push_str(&format!(
            "  policy: {} -> {}\n",
            fmt(&d.policy_a),
            fmt(&d.policy_b)
        ));
    }
    if !d.scans.is_empty() {
        out.push_str(&format!(
            "\n== per-query stretch ({} changed, {} only in A, {} only in B) ==\n",
            d.scans.len() - d.scans_only_a - d.scans_only_b,
            d.scans_only_a,
            d.scans_only_b,
        ));
        for s in &d.scans {
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.3}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  {:<8} stream {:<3} #{:<3} {:>8} -> {:>8}  ({:+.3})\n",
                s.name,
                s.stream,
                s.occurrence,
                fmt(s.stretch_a),
                fmt(s.stretch_b),
                s.delta,
            ));
        }
    }
    if !d.groups.is_empty() {
        out.push_str(&format!("\n== group lifetimes ({}) ==\n", d.groups.len()));
        for g in &d.groups {
            let fmt = |l: &Option<crate::diff::GroupLifetime>| match l {
                Some(l) => format!(
                    "[{:.3}s .. {:.3}s, {} pts]",
                    secs(l.first_us),
                    secs(l.last_us),
                    l.points
                ),
                None => "absent".to_string(),
            };
            out.push_str(&format!(
                "  {:<28} {} -> {}\n",
                g.name,
                fmt(&g.a),
                fmt(&g.b)
            ));
        }
    }
    if !d.series.is_empty() {
        out.push_str(&format!("\n== series endpoints ({}) ==\n", d.series.len()));
        for s in &d.series {
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.3}"),
                None => "absent".to_string(),
            };
            out.push_str(&format!(
                "  {:<28} last {:>10} -> {:>10}   pts {:>4} -> {:>4}\n",
                s.name,
                fmt(s.last_a),
                fmt(s.last_b),
                s.points_a,
                s.points_b,
            ));
        }
    }
    if !d.slo.is_empty() {
        out.push_str(&format!("\n== SLO verdicts ({}) ==\n", d.slo.len()));
        for s in &d.slo {
            let verdict = |p: Option<bool>| match p {
                Some(true) => "PASS",
                Some(false) => "FAIL",
                None => "absent",
            };
            let obs = |o: Option<f64>| match o {
                Some(x) => format!("{x:.4}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  {:<16} {} -> {}  observed {} -> {}\n",
                s.rule,
                verdict(s.passed_a),
                verdict(s.passed_b),
                obs(s.observed_a),
                obs(s.observed_b),
            ));
        }
    }
    if !d.faults.is_empty() {
        out.push_str(&format!("\n== fault counters ({}) ==\n", d.faults.len()));
        for f in &d.faults {
            out.push_str(&format!(
                "  {:<20} {:>10.0} -> {:>10.0}  ({:+.0})\n",
                f.name, f.a, f.b, f.delta
            ));
        }
    }
    out
}

/// Render the embedded trace of a saved run: one row per scan lifecycle
/// (start → wraps → finish, with attributed throttle waits), followed by
/// the raw event log.
pub fn render_trace(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    let spans = spans(records);
    out.push_str(&format!("== scan lifecycles ({}) ==\n", spans.len()));
    out.push_str(&format!(
        "  {:<6} {:<10} {:<7} {:<22} {:>9} {:>9} {:>9} {:>6} {:>9} {:>12}\n",
        "scan",
        "query",
        "stream",
        "placement",
        "start(s)",
        "finish(s)",
        "elapsed",
        "wraps",
        "throttles",
        "wait(s)"
    ));
    for s in &spans {
        let fmt_t = |t: Option<scanshare_storage::SimTime>| match t {
            Some(t) => format!("{:.3}", secs(t.as_micros())),
            None => "-".to_string(),
        };
        let elapsed = match s.elapsed() {
            Some(d) => format!("{:.3}", d.as_secs_f64()),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "  {:<6} {:<10} {:<7} {:<22} {:>9} {:>9} {:>9} {:>6} {:>9} {:>12.3}\n",
            s.scan.0,
            s.query,
            s.stream,
            s.placement,
            fmt_t(s.start),
            fmt_t(s.finish),
            elapsed,
            s.wraps.len(),
            s.throttles,
            s.throttle_wait.as_secs_f64(),
        ));
    }
    out.push_str(&format!("\n== events ({}) ==\n", records.len()));
    out.push_str(&render_records(records));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_storage::SimTime;

    fn series(name: &str, pts: &[(u64, f64)]) -> SeriesSnapshot {
        let s = scanshare::obs::Series::new();
        for &(at, v) in pts {
            s.push(SimTime::from_micros(at), v);
        }
        s.snapshot(name)
    }

    #[test]
    fn timeline_scales_to_the_peak() {
        let s = series("x", &[(0, 1.0), (500_000, 10.0), (999_999, 5.0)]);
        let t = timeline(&s, 1_000_000, 10);
        assert_eq!(t.len(), 10);
        // Peak lands mid-strip as the densest glyph.
        assert_eq!(t.chars().nth(5), Some('@'));
        // Unsampled columns stay blank.
        assert!(t.contains(' '));
    }

    #[test]
    fn timeline_of_flat_zero_series_is_visible() {
        let s = series("z", &[(0, 0.0), (900_000, 0.0)]);
        let t = timeline(&s, 1_000_000, 10);
        // Zero samples still mark their column (lowest ramp level).
        assert_eq!(t.chars().next(), Some('.'));
    }

    #[test]
    fn quantile_expansion_lists_buckets_with_upper_bounds() {
        use scanshare::obs::Histogram;
        let h = Histogram::default();
        for v in [10, 20, 100, 1_000, 5_000] {
            h.record(v);
        }
        let snap = h.snapshot("disk.read_us");
        let mut out = String::new();
        render_histogram_quantiles(&mut out, &snap);
        // Small histograms report exact nearest-rank quantiles from the
        // sample window.
        assert!(out.contains(&format!("p50 {:>9}", 100)), "got: {out}");
        assert!(out.contains(&format!("p99 {:>9}", 5_000)), "got: {out}");
        // Each non-empty power-of-two bucket prints its inclusive upper
        // bound and a visible count bar.
        assert!(out.contains(&format!("le {:>12}", 15)), "got: {out}");
        assert!(out.contains('#'), "got: {out}");
        assert_eq!(out.matches("    le ").count(), snap.buckets.len());
    }

    #[test]
    fn quantile_expansion_of_empty_histogram_reports_no_samples() {
        use scanshare::obs::Histogram;
        // A histogram that never recorded must say n=0, not print
        // misleading p50..p99 zeros or divide by an empty peak.
        let snap = Histogram::default().snapshot("never.recorded_us");
        let mut out = String::new();
        render_histogram_quantiles(&mut out, &snap);
        assert!(out.contains("n=0"), "got: {out}");
        assert!(!out.contains("p50"), "got: {out}");
        assert!(!out.contains("    le "), "got: {out}");
        assert!(!out.contains("NaN"), "got: {out}");
    }

    #[test]
    fn quantile_expansion_of_single_bucket_histogram_is_degenerate_bar() {
        use scanshare::obs::Histogram;
        // All samples in one bucket: every quantile is that value and
        // the single bucket renders a full-width bar.
        let h = Histogram::default();
        for _ in 0..4 {
            h.record(100);
        }
        let snap = h.snapshot("constant_us");
        let mut out = String::new();
        render_histogram_quantiles(&mut out, &snap);
        assert!(out.contains(&format!("p50 {:>9}", 100)), "got: {out}");
        assert!(out.contains(&format!("p99 {:>9}", 100)), "got: {out}");
        assert_eq!(out.matches("    le ").count(), 1, "got: {out}");
        assert!(out.contains(&"#".repeat(BUCKET_BAR)), "got: {out}");
    }

    #[test]
    fn render_trace_lists_lifecycles_and_events() {
        use scanshare_engine::trace::{TraceEvent, Tracer};
        let tracer = Tracer::new(16);
        let t0 = SimTime::ZERO;
        tracer.record(
            t0,
            TraceEvent::ScanStarted {
                scan: scanshare::ScanId(7),
                query: "Q6".into(),
                stream: 0,
                placement: "fresh".into(),
            },
        );
        tracer.record(
            SimTime::from_secs(2),
            TraceEvent::ScanFinished {
                scan: scanshare::ScanId(7),
            },
        );
        let text = render_trace(&tracer.records());
        assert!(text.contains("scan lifecycles (1)"));
        assert!(text.contains("Q6"));
        assert!(text.contains("events (2)"));
    }
}
