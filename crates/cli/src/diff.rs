//! Structural diff of two saved [`RunReport`] artifacts.
//!
//! `scanshare diff A.json B.json` answers "what actually changed between
//! these two runs?" without eyeballing JSON: headline counter deltas,
//! per-query stretch movement, group lifetimes appearing/disappearing/
//! shifting, sampled-series endpoints, SLO verdict flips, fault-summary
//! deltas, and the policy pair. The diff itself is computed here as
//! plain data ([`ReportDiff`]) so `--json` can emit it verbatim and the
//! human view in [`crate::render`] stays a pure formatter.
//!
//! Matching rules: queries are matched by `(stream, name, occurrence)`
//! where occurrence counts same-name executions within a stream in
//! start order — stable across two runs of the same workload even when
//! completion order shuffles. Series and groups are matched by name.
//! Stretch is each query's elapsed time divided by the fastest
//! same-name execution *in its own report*, i.e. the same definition
//! the SLO layer gates on.

use scanshare_engine::RunReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named before/after pair with its absolute delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delta {
    /// What is being compared (e.g. `makespan_us`).
    pub name: String,
    /// Value in report A.
    pub a: f64,
    /// Value in report B.
    pub b: f64,
    /// `b - a`.
    pub delta: f64,
}

impl Delta {
    fn new(name: &str, a: f64, b: f64) -> Self {
        Delta {
            name: name.to_string(),
            a,
            b,
            delta: b - a,
        }
    }

    /// Percent change relative to A (0.0 when A is 0).
    pub fn pct(&self) -> f64 {
        if self.a.abs() > 1e-12 {
            self.delta / self.a * 100.0
        } else {
            0.0
        }
    }
}

/// Stretch movement of one matched query execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanStretchDelta {
    /// Query name (e.g. `Q6`).
    pub name: String,
    /// Stream the execution ran on.
    pub stream: usize,
    /// 0-based occurrence of this name within the stream (start order).
    pub occurrence: usize,
    /// Stretch in report A (`None` when only B ran this execution).
    pub stretch_a: Option<f64>,
    /// Stretch in report B (`None` when only A ran it).
    pub stretch_b: Option<f64>,
    /// `b - a` when both sides matched, else 0.
    pub delta: f64,
}

/// Lifetime of one `group.*` series: when the group first and last
/// reported a sample, and how many samples it logged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupLifetime {
    /// First sample time, µs.
    pub first_us: u64,
    /// Last sample time, µs.
    pub last_us: u64,
    /// Sample count.
    pub points: usize,
}

/// Before/after lifetimes of one sharing group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupDelta {
    /// Series name (`group.N.distance_pages`).
    pub name: String,
    /// Lifetime in A (`None` = the group only formed in B).
    pub a: Option<GroupLifetime>,
    /// Lifetime in B (`None` = the group only formed in A).
    pub b: Option<GroupLifetime>,
}

/// Endpoint comparison of one sampled series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesDelta {
    /// Series name.
    pub name: String,
    /// Last sampled value in A (`None` = series absent in A).
    pub last_a: Option<f64>,
    /// Last sampled value in B (`None` = series absent in B).
    pub last_b: Option<f64>,
    /// Sample count in A.
    pub points_a: usize,
    /// Sample count in B.
    pub points_b: usize,
}

impl SeriesDelta {
    /// Whether the series moved: appeared, vanished, changed its
    /// endpoint value, or changed its sample count.
    pub fn changed(&self) -> bool {
        self.last_a != self.last_b || self.points_a != self.points_b
    }
}

/// One SLO rule whose verdict or observation moved between the runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloChange {
    /// Rule name.
    pub rule: String,
    /// Passed in A (`None` = rule absent in A).
    pub passed_a: Option<bool>,
    /// Passed in B (`None` = rule absent in B).
    pub passed_b: Option<bool>,
    /// Observed value in A.
    pub observed_a: Option<f64>,
    /// Observed value in B.
    pub observed_b: Option<f64>,
}

/// The full structural diff of two reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportDiff {
    /// Headline counters: makespan, reads, seeks, hit ratio, …
    pub headline: Vec<Delta>,
    /// Per-execution stretch movement (only entries that moved or were
    /// unmatched; empty when every execution matched with equal stretch).
    pub scans: Vec<ScanStretchDelta>,
    /// Executions present in exactly one report.
    pub scans_only_a: usize,
    /// Executions present only in B.
    pub scans_only_b: usize,
    /// Group lifetimes that appeared, vanished, or shifted.
    pub groups: Vec<GroupDelta>,
    /// Series whose endpoint or sample count moved.
    pub series: Vec<SeriesDelta>,
    /// SLO verdicts that flipped, appeared, or vanished.
    pub slo: Vec<SloChange>,
    /// Fault-summary counter deltas (only nonzero rows).
    pub faults: Vec<Delta>,
    /// Policy of report A (`None` = base/default grouping).
    pub policy_a: Option<String>,
    /// Policy of report B.
    pub policy_b: Option<String>,
}

impl ReportDiff {
    /// Whether the two reports are structurally identical under this
    /// diff: every headline delta zero, every execution matched with
    /// equal stretch, no group/series/SLO/fault movement, same policy.
    pub fn is_zero(&self) -> bool {
        self.headline.iter().all(|d| d.delta == 0.0)
            && self.scans.is_empty()
            && self.scans_only_a == 0
            && self.scans_only_b == 0
            && self.groups.is_empty()
            && self.series.is_empty()
            && self.slo.is_empty()
            && self.faults.is_empty()
            && self.policy_a == self.policy_b
    }

    /// One-line verdict for scripts and commit messages.
    pub fn summary_line(&self) -> String {
        if self.is_zero() {
            return "reports identical: no headline, stretch, group, series, \
                    SLO, fault, or policy differences"
                .to_string();
        }
        let moved = self.headline.iter().filter(|d| d.delta != 0.0).count();
        let makespan = self
            .headline
            .iter()
            .find(|d| d.name == "makespan_us")
            .map(|d| format!("makespan {:+.2}%", d.pct()))
            .unwrap_or_default();
        format!(
            "reports differ: {makespan}, {moved} headline metric(s), \
             {} stretch, {} group, {} series, {} SLO, {} fault change(s)",
            self.scans.len() + self.scans_only_a + self.scans_only_b,
            self.groups.len(),
            self.series.len(),
            self.slo.len(),
            self.faults.len(),
        )
    }
}

/// Per-execution stretch, keyed `(stream, name, occurrence)`.
///
/// Occurrence indexes same-name executions within a stream in start
/// order; stretch divides by the fastest same-name execution anywhere
/// in the report (the SLO layer's definition).
fn stretches(r: &RunReport) -> BTreeMap<(usize, String, usize), f64> {
    let mut fastest: BTreeMap<&str, f64> = BTreeMap::new();
    for q in &r.queries {
        let e = q.elapsed().as_secs_f64();
        fastest
            .entry(q.name.as_str())
            .and_modify(|f| *f = f.min(e))
            .or_insert(e);
    }
    // Start-ordered occurrence counting, independent of completion order.
    let mut ordered: Vec<&scanshare_engine::QueryRecord> = r.queries.iter().collect();
    ordered.sort_by_key(|q| (q.stream, q.start.as_micros()));
    let mut occ: BTreeMap<(usize, &str), usize> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for q in ordered {
        let slot = occ.entry((q.stream, q.name.as_str())).or_insert(0);
        let i = *slot;
        *slot += 1;
        let f = fastest[q.name.as_str()];
        let stretch = if f > 0.0 {
            q.elapsed().as_secs_f64() / f
        } else {
            1.0
        };
        out.insert((q.stream, q.name.clone(), i), stretch);
    }
    out
}

fn lifetime(s: &scanshare::obs::SeriesSnapshot) -> GroupLifetime {
    GroupLifetime {
        first_us: s.points.first().map(|p| p.at_us).unwrap_or(0),
        last_us: s.points.last().map(|p| p.at_us).unwrap_or(0),
        points: s.points.len(),
    }
}

/// Compute the structural diff of two reports (A = "before", B = "after").
pub fn compute_diff(a: &RunReport, b: &RunReport) -> ReportDiff {
    let headline = vec![
        Delta::new(
            "makespan_us",
            a.makespan.as_micros() as f64,
            b.makespan.as_micros() as f64,
        ),
        Delta::new(
            "pages_read",
            a.disk.pages_read as f64,
            b.disk.pages_read as f64,
        ),
        Delta::new("seeks", a.disk.seeks as f64, b.disk.seeks as f64),
        Delta::new(
            "seek_distance_pages",
            a.disk.seek_distance_pages as f64,
            b.disk.seek_distance_pages as f64,
        ),
        Delta::new(
            "logical_reads",
            a.pool.logical_reads as f64,
            b.pool.logical_reads as f64,
        ),
        Delta::new(
            "hit_ratio_pct",
            a.pool.hit_ratio() * 100.0,
            b.pool.hit_ratio() * 100.0,
        ),
        Delta::new(
            "evictions",
            a.pool.evictions as f64,
            b.pool.evictions as f64,
        ),
        Delta::new("queries", a.queries.len() as f64, b.queries.len() as f64),
    ];

    // Per-execution stretch movement.
    let sa = stretches(a);
    let sb = stretches(b);
    let mut scans = Vec::new();
    let (mut only_a, mut only_b) = (0usize, 0usize);
    for (key, &va) in &sa {
        match sb.get(key) {
            Some(&vb) => {
                if (vb - va).abs() > 1e-9 {
                    scans.push(ScanStretchDelta {
                        name: key.1.clone(),
                        stream: key.0,
                        occurrence: key.2,
                        stretch_a: Some(va),
                        stretch_b: Some(vb),
                        delta: vb - va,
                    });
                }
            }
            None => {
                only_a += 1;
                scans.push(ScanStretchDelta {
                    name: key.1.clone(),
                    stream: key.0,
                    occurrence: key.2,
                    stretch_a: Some(va),
                    stretch_b: None,
                    delta: 0.0,
                });
            }
        }
    }
    for (key, &vb) in &sb {
        if !sa.contains_key(key) {
            only_b += 1;
            scans.push(ScanStretchDelta {
                name: key.1.clone(),
                stream: key.0,
                occurrence: key.2,
                stretch_a: None,
                stretch_b: Some(vb),
                delta: 0.0,
            });
        }
    }

    // Group lifetimes (the `group.*` series) and general series
    // endpoints, both matched by name.
    let series_map = |r: &RunReport| -> BTreeMap<String, (Option<f64>, usize, GroupLifetime)> {
        r.metrics
            .series
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    (
                        s.points.last().map(|p| p.value),
                        s.points.len(),
                        lifetime(s),
                    ),
                )
            })
            .collect()
    };
    let ma = series_map(a);
    let mb = series_map(b);
    let mut groups = Vec::new();
    let mut series = Vec::new();
    let mut names: Vec<&String> = ma.keys().chain(mb.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let ea = ma.get(name);
        let eb = mb.get(name);
        if name.starts_with("group.") {
            let la = ea.map(|e| e.2.clone());
            let lb = eb.map(|e| e.2.clone());
            if la != lb {
                groups.push(GroupDelta {
                    name: name.clone(),
                    a: la,
                    b: lb,
                });
            }
        }
        let d = SeriesDelta {
            name: name.clone(),
            last_a: ea.and_then(|e| e.0),
            last_b: eb.and_then(|e| e.0),
            points_a: ea.map(|e| e.1).unwrap_or(0),
            points_b: eb.map(|e| e.1).unwrap_or(0),
        };
        if d.changed() {
            series.push(d);
        }
    }

    // SLO verdicts, matched by rule name.
    let mut slo = Vec::new();
    let find = |r: &RunReport, rule: &str| {
        r.slo
            .iter()
            .find(|v| v.rule == rule)
            .map(|v| (v.passed, v.observed))
    };
    let mut rules: Vec<&String> = a
        .slo
        .iter()
        .map(|v| &v.rule)
        .chain(b.slo.iter().map(|v| &v.rule))
        .collect();
    rules.sort();
    rules.dedup();
    for rule in rules {
        let va = find(a, rule);
        let vb = find(b, rule);
        let flipped = match (va, vb) {
            (Some((pa, oa)), Some((pb, ob))) => pa != pb || (oa - ob).abs() > 1e-9,
            _ => true,
        };
        if flipped {
            slo.push(SloChange {
                rule: rule.clone(),
                passed_a: va.map(|v| v.0),
                passed_b: vb.map(|v| v.0),
                observed_a: va.map(|v| v.1),
                observed_b: vb.map(|v| v.1),
            });
        }
    }

    // Fault counters: only rows that moved.
    let fault_rows = |r: &RunReport| {
        [
            ("transient_errors", r.faults.transient_errors as f64),
            ("permanent_errors", r.faults.permanent_errors as f64),
            ("delays_injected", r.faults.delays_injected as f64),
            ("retries", r.faults.retries as f64),
            ("timeouts", r.faults.timeouts as f64),
            ("scans_aborted", r.faults.scans_aborted as f64),
        ]
    };
    let faults = fault_rows(a)
        .iter()
        .zip(fault_rows(b).iter())
        .filter(|((_, va), (_, vb))| va != vb)
        .map(|((name, va), (_, vb))| Delta::new(name, *va, *vb))
        .collect();

    ReportDiff {
        headline,
        scans,
        scans_only_a: only_a,
        scans_only_b: only_b,
        groups,
        series,
        slo,
        faults,
        policy_a: a.policy.map(|p| p.to_string()),
        policy_b: b.policy.map(|p| p.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare::SharingConfig;
    use scanshare_engine::{run_workload, SharingMode};
    use scanshare_tpch::{generate, throughput_workload, TpchConfig};

    fn smoke(mode: SharingMode) -> RunReport {
        let tpch = TpchConfig::tiny();
        let db = generate(&tpch);
        let w = throughput_workload(&db, 2, tpch.months as i64, tpch.seed, mode);
        run_workload(&db, &w).expect("smoke run")
    }

    #[test]
    fn self_diff_is_zero() {
        let r = smoke(SharingMode::ScanSharing(SharingConfig::new(0)));
        let d = compute_diff(&r, &r);
        assert!(d.is_zero(), "self-diff not zero: {d:?}");
        assert!(d.summary_line().contains("identical"));
        // Every headline row still reports both sides.
        assert!(d.headline.iter().any(|h| h.name == "makespan_us"));
        assert!(d.headline.iter().all(|h| h.a == h.b && h.delta == 0.0));
    }

    #[test]
    fn base_vs_sharing_diff_reports_movement() {
        let base = smoke(SharingMode::Base);
        let ss = smoke(SharingMode::ScanSharing(SharingConfig::new(0)));
        let d = compute_diff(&base, &ss);
        assert!(!d.is_zero());
        // Sharing reads strictly fewer pages on this workload.
        let pages = d.headline.iter().find(|h| h.name == "pages_read").unwrap();
        assert!(pages.delta < 0.0, "expected fewer pages, got {pages:?}");
        // Sharing runs emit group./scan. series that base lacks.
        assert!(d.series.iter().any(|s| s.name.starts_with("group.")));
        assert!(!d.groups.is_empty());
        assert!(d.summary_line().contains("reports differ"));
        // Executions match one-to-one: same workload on both sides.
        assert_eq!(d.scans_only_a, 0);
        assert_eq!(d.scans_only_b, 0);
    }

    #[test]
    fn diff_round_trips_through_json() {
        let base = smoke(SharingMode::Base);
        let ss = smoke(SharingMode::ScanSharing(SharingConfig::new(0)));
        let d = compute_diff(&base, &ss);
        let json = serde_json::to_string(&d).unwrap();
        let back: ReportDiff = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
