//! Golden-file test for `scanshare history`: rendering the committed
//! fixture ledger must produce byte-identical output to the committed
//! fixture render. The ledger is frozen data and the renderer takes no
//! host input, so any drift is a real (intentional or not) format
//! change — regenerate the fixture alongside it:
//!
//! ```sh
//! cargo run -q -p scanshare-cli --bin scanshare -- \
//!     history --ledger results/history.jsonl \
//!     > crates/cli/tests/fixtures/history_render.txt
//! ```

use std::process::Command;

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn history_render_matches_committed_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_scanshare"))
        .args(["history", "--ledger", &repo_path("results/history.jsonl")])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let got = String::from_utf8(out.stdout).expect("utf8 output");
    let want = std::fs::read_to_string(repo_path("crates/cli/tests/fixtures/history_render.txt"))
        .expect("committed fixture exists");
    assert_eq!(
        got, want,
        "history render drifted from the committed fixture — if the \
         format change is intentional, regenerate the fixture (see the \
         header of this test file)"
    );
}

#[test]
fn history_check_of_committed_ledger_is_informational_ok() {
    // --check validates every line and runs the change-point check;
    // without --strict it must exit 0 regardless of the trend verdict.
    let out = Command::new(env!("CARGO_BIN_EXE_scanshare"))
        .args([
            "history",
            "--ledger",
            &repo_path("results/history.jsonl"),
            "--check",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ledger valid"), "got: {stderr}");
}

#[test]
fn malformed_ledger_is_exit_2_with_line_number() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("scanshare_bad_ledger_{}.jsonl", std::process::id()));
    std::fs::write(&path, "{not json}\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_scanshare"))
        .args(["history", "--ledger", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "got: {stderr}");
}

#[test]
fn unknown_metric_is_exit_2_and_names_the_alternatives() {
    let out = Command::new(env!("CARGO_BIN_EXE_scanshare"))
        .args([
            "history",
            "--ledger",
            &repo_path("results/history.jsonl"),
            "--metric",
            "no_such_metric",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ss_makespan_us"), "got: {stderr}");
}
