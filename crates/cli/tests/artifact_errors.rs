//! Integration tests of the `scanshare` binary's artifact error paths:
//! `trace`, `metrics`, and `explain` against missing or malformed files
//! must exit non-zero with a single-line diagnostic on stderr — the
//! contract scripted pipelines (CI, bench gates) rely on.

use std::process::Command;

fn scanshare(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scanshare"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn missing_artifact_is_exit_2_with_one_line_diagnostic() {
    for sub in ["trace", "metrics", "explain"] {
        let out = scanshare(&[sub, "--artifact", "/nonexistent/report.json"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{sub}: expected exit 2, got {:?}",
            out.status
        );
        let err = stderr_of(&out);
        assert_eq!(
            err.trim_end().lines().count(),
            1,
            "{sub}: diagnostic must be one line, got: {err:?}"
        );
        assert!(
            err.contains("cannot read /nonexistent/report.json"),
            "{sub}: diagnostic must name the file, got: {err:?}"
        );
        assert!(out.stdout.is_empty(), "{sub}: no output on failure");
    }
}

#[test]
fn malformed_artifact_is_exit_2_and_names_the_file() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "scanshare_bad_artifact_{}.json",
        std::process::id()
    ));
    std::fs::write(&path, "{ this is not json").unwrap();
    let path_str = path.to_str().unwrap();
    for sub in ["metrics", "explain"] {
        let out = scanshare(&[sub, "--artifact", path_str]);
        assert_eq!(out.status.code(), Some(2), "{sub} on malformed artifact");
        let err = stderr_of(&out);
        assert_eq!(err.trim_end().lines().count(), 1, "{sub}: got {err:?}");
        assert!(err.contains(path_str), "{sub}: must name the file: {err:?}");
        assert!(err.contains("invalid report"), "{sub}: got {err:?}");
    }
    // `trace` accepts either a report or raw JSONL, so its diagnostic
    // names both rejected interpretations.
    let out = scanshare(&["trace", "--artifact", path_str]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert_eq!(err.trim_end().lines().count(), 1, "trace: got {err:?}");
    assert!(
        err.contains("neither a RunReport nor a JSONL trace"),
        "trace: got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn explain_of_unknown_scan_is_exit_2() {
    // A structurally valid report with no decisions: --scan must fail
    // with a one-line diagnostic, not print an empty narrative.
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "scanshare_empty_report_{}.json",
        std::process::id()
    ));
    // Generate a real (tiny, base-mode) artifact through the binary.
    let spec_path = dir.join(format!("scanshare_spec_{}.json", std::process::id()));
    let template = scanshare(&["spec-template"]);
    assert!(template.status.success());
    let mut spec: scanshare_cli::RunSpec = serde_json::from_slice(&template.stdout).unwrap();
    spec.tpch = scanshare_tpch::TpchConfig::tiny();
    spec.workload.mode = scanshare_engine::SharingMode::Base;
    std::fs::write(&spec_path, serde_json::to_string(&spec).unwrap()).unwrap();
    let run = scanshare(&[
        "run",
        "--spec",
        spec_path.to_str().unwrap(),
        "--report",
        path.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "run failed: {}", stderr_of(&run));

    let out = scanshare(&[
        "explain",
        "--artifact",
        path.to_str().unwrap(),
        "--scan",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert_eq!(err.trim_end().lines().count(), 1, "got {err:?}");
    assert!(err.contains("no decisions for scan 0"), "got {err:?}");
    // Without --scan the same artifact explains its emptiness at exit 0.
    let out = scanshare(&["explain", "--artifact", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no decisions recorded"));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&spec_path).ok();
}
