//! Integration tests of the `scanshare run --faults` contract: bad
//! fault-plan files exit 2 with a one-line diagnostic, a plan that
//! aborts scans turns into the distinct "degraded run" exit 3, and an
//! empty plan leaves the success path untouched. Scripted pipelines
//! (CI fault matrices, bench gates) key off exactly these codes.

use std::process::Command;

use scanshare::SharingConfig;
use scanshare_cli::RunSpec;
use scanshare_engine::SharingMode;
use scanshare_tpch::{generate, throughput_workload, TpchConfig};

fn scanshare(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scanshare"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Write a tiny but runnable spec file and return its path.
fn tiny_spec(tag: &str) -> std::path::PathBuf {
    let tpch = TpchConfig::tiny();
    let db = generate(&tpch);
    let workload = throughput_workload(
        &db,
        2,
        tpch.months as i64,
        tpch.seed,
        SharingMode::ScanSharing(SharingConfig::new(0)),
    );
    let spec = RunSpec { tpch, workload };
    let path = std::env::temp_dir().join(format!(
        "scanshare_fault_spec_{tag}_{}.json",
        std::process::id()
    ));
    std::fs::write(&path, serde_json::to_string_pretty(&spec).unwrap()).unwrap();
    path
}

fn tmp_file(tag: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "scanshare_fault_plan_{tag}_{}.json",
        std::process::id()
    ));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn missing_and_malformed_fault_plans_are_exit_2_with_one_line_diagnostic() {
    let spec = tiny_spec("badplan");
    let spec_str = spec.to_str().unwrap();

    // Missing file: named in a single-line diagnostic.
    let out = scanshare(&[
        "run",
        "--spec",
        spec_str,
        "--faults",
        "/nonexistent/plan.json",
    ]);
    assert_eq!(out.status.code(), Some(2), "missing plan: {:?}", out.status);
    let err = stderr_of(&out);
    assert_eq!(err.trim_end().lines().count(), 1, "got: {err:?}");
    assert!(
        err.contains("cannot read /nonexistent/plan.json"),
        "got: {err:?}"
    );
    assert!(out.stdout.is_empty(), "no output on failure");

    // Malformed JSON: still exit 2, diagnostic names the file and the
    // kind of failure. The run must not start.
    let bad = tmp_file("malformed", "{ \"plan\": [not json");
    let bad_str = bad.to_str().unwrap();
    let out = scanshare(&["run", "--spec", spec_str, "--faults", bad_str]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed plan: {:?}",
        out.status
    );
    let err = stderr_of(&out);
    assert_eq!(err.trim_end().lines().count(), 1, "got: {err:?}");
    assert!(err.contains("invalid fault plan"), "got: {err:?}");
    assert!(err.contains(bad_str), "must name the file: {err:?}");
    assert!(out.stdout.is_empty(), "no output on failure");

    std::fs::remove_file(&spec).ok();
    std::fs::remove_file(&bad).ok();
}

#[test]
fn permanent_fault_abort_is_the_distinct_exit_3() {
    let spec = tiny_spec("permanent");
    let plan = tmp_file(
        "permanent",
        r#"{"plan": {"seed": 1, "rules": [{"fault": "PermanentError"}]}}"#,
    );
    let out = scanshare(&[
        "run",
        "--spec",
        spec.to_str().unwrap(),
        "--faults",
        plan.to_str().unwrap(),
    ]);
    // Degraded, not failed: the run completes with partial results and
    // reports the aborted scans through its own exit code.
    assert_eq!(out.status.code(), Some(3), "got {:?}", out.status);
    let err = stderr_of(&out);
    assert!(err.contains("degraded run"), "got: {err:?}");
    assert!(err.contains("aborted by injected faults"), "got: {err:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("run"), "headline still printed: {stdout:?}");

    std::fs::remove_file(&spec).ok();
    std::fs::remove_file(&plan).ok();
}

#[test]
fn empty_fault_plan_keeps_the_success_exit_0() {
    let spec = tiny_spec("empty");
    let plan = tmp_file("empty", "{}");
    let out = scanshare(&[
        "run",
        "--spec",
        spec.to_str().unwrap(),
        "--faults",
        plan.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "got {:?}", out.status);
    assert!(stderr_of(&out).is_empty(), "clean run is quiet on stderr");

    std::fs::remove_file(&spec).ok();
    std::fs::remove_file(&plan).ok();
}
