//! End-to-end tests of `scanshare diff`: exit-code contract (0 =
//! structurally identical, 1 = reports differ, 2 = unreadable input)
//! and the one-line summary that scripts parse.

use scanshare::SharingConfig;
use scanshare_engine::{run_workload, SharingMode};
use scanshare_tpch::{generate, throughput_workload, TpchConfig};
use std::process::Command;

/// Save a tiny smoke report (base or sharing mode) to a temp file.
fn save_smoke(mode: SharingMode, tag: &str) -> String {
    let tpch = TpchConfig::tiny();
    let db = generate(&tpch);
    let w = throughput_workload(&db, 2, tpch.months as i64, tpch.seed, mode);
    let r = run_workload(&db, &w).expect("smoke run");
    let path =
        std::env::temp_dir().join(format!("scanshare_diff_{tag}_{}.json", std::process::id()));
    let path = path.to_str().unwrap().to_string();
    scanshare_engine::persist::save_report(&r, &path).expect("report saves");
    path
}

fn run_diff(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_scanshare"))
        .arg("diff")
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn self_diff_is_exit_0_with_all_zero_deltas() {
    let a = save_smoke(SharingMode::ScanSharing(SharingConfig::new(0)), "self");
    let (code, stdout, _) = run_diff(&[&a, &a]);
    std::fs::remove_file(&a).ok();
    assert_eq!(code, Some(0), "stdout: {stdout}");
    // Every headline row renders a zero delta, and the one-line summary
    // says so.
    assert!(stdout.contains("makespan_us"), "got: {stdout}");
    assert!(stdout.contains("+0.00"), "got: {stdout}");
    let last = stdout.lines().last().unwrap_or("");
    assert!(last.contains("reports identical"), "got: {last}");
}

#[test]
fn changed_reports_are_exit_1_with_one_line_summary() {
    let a = save_smoke(SharingMode::Base, "base");
    let b = save_smoke(SharingMode::ScanSharing(SharingConfig::new(0)), "ss");
    let (code, stdout, _) = run_diff(&[&a, &b]);
    let (jcode, jout, _) = run_diff(&[&a, &b, "--json"]);
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    assert_eq!(code, Some(1), "stdout: {stdout}");
    // Scan sharing reads fewer pages than base on this workload: the
    // pages_read row must show a negative delta.
    let pages = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("pages_read"))
        .expect("pages_read row");
    assert!(pages.contains('-'), "got: {pages}");
    // Sharing emits group series the base run lacks.
    assert!(stdout.contains("group."), "got: {stdout}");
    let last = stdout.lines().last().unwrap_or("");
    assert!(last.starts_with("reports differ"), "got: {last}");
    // --json keeps the exit code, emits pure JSON on stdout (the
    // verdict line moves to stderr).
    assert_eq!(jcode, Some(1));
    assert!(jout.trim_end().ends_with('}'), "got tail: {jout}");
    assert!(jout.trim_start().starts_with('{'), "got head: {jout}");
}

#[test]
fn unreadable_input_is_exit_2() {
    let (code, _, stderr) = run_diff(&["no_such_a.json", "no_such_b.json"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("no_such_a.json"), "got: {stderr}");
}
