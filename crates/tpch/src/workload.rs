//! Workload builders for the paper's experiment setups.

use scanshare_engine::{Database, EngineConfig, Query, SharingMode, Stream, WorkloadSpec};
use scanshare_storage::SimDuration;

use crate::queries::stream_queries;

/// Pool size at the paper's ratio: "The bufferpool size is about 5% of
/// the database size."
pub fn paper_pool_pages(db: &Database) -> usize {
    ((db.total_table_pages() as f64 * 0.05) as usize).max(64)
}

/// N copies of one query, started `stagger` apart — the setup of the
/// staggered Q1/Q6 experiments (Figures 15/16, 10 s stagger).
pub fn staggered_workload(
    db: &Database,
    query: &Query,
    copies: usize,
    stagger: SimDuration,
    mode: SharingMode,
) -> WorkloadSpec {
    WorkloadSpec {
        streams: (0..copies)
            .map(|i| Stream {
                queries: vec![query.clone()],
                start_offset: SimDuration::from_micros(stagger.as_micros() * i as u64),
            })
            .collect(),
        pool_pages: paper_pool_pages(db),
        engine: EngineConfig::default(),
        mode,
        faults: Default::default(),
        slo: Default::default(),
    }
}

/// An N-stream TPC-H throughput run: every stream runs all 22 queries in
/// its own permutation with its own parameters, all starting together
/// (the paper's Table 1 / Figures 17–20 setup with N = 5).
pub fn throughput_workload(
    db: &Database,
    n_streams: usize,
    months: i64,
    seed: u64,
    mode: SharingMode,
) -> WorkloadSpec {
    WorkloadSpec {
        streams: (0..n_streams)
            .map(|i| Stream {
                queries: stream_queries(i, months, seed),
                start_offset: SimDuration::ZERO,
            })
            .collect(),
        pool_pages: paper_pool_pages(db),
        engine: EngineConfig::default(),
        mode,
        faults: Default::default(),
        slo: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use crate::queries::q6;
    use scanshare::SharingConfig;
    use scanshare_engine::run_workload;

    #[test]
    fn staggered_q6_runs_and_shares() {
        let cfg = TpchConfig::tiny();
        let db = generate(&cfg);
        let q = q6(cfg.months as i64, 1);
        // A tiny Q6 runs for ~200 virtual ms; 50 ms staggers keep the
        // three scans overlapping, like the paper's setup.
        let base = staggered_workload(&db, &q, 3, SimDuration::from_millis(50), SharingMode::Base);
        let ss = staggered_workload(
            &db,
            &q,
            3,
            SimDuration::from_millis(50),
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let rb = run_workload(&db, &base).unwrap();
        let rs = run_workload(&db, &ss).unwrap();
        assert_eq!(rb.queries.len(), 3);
        // Identical answers.
        for (a, b) in rb.queries.iter().zip(&rs.queries) {
            assert_eq!(a.result.count, b.result.count);
        }
        assert!(rs.disk.pages_read <= rb.disk.pages_read);
    }

    #[test]
    fn tiny_throughput_run_completes_in_both_modes() {
        let cfg = TpchConfig::tiny();
        let db = generate(&cfg);
        let months = cfg.months as i64;
        let base = throughput_workload(&db, 2, months, 11, SharingMode::Base);
        let ss = throughput_workload(
            &db,
            2,
            months,
            11,
            SharingMode::ScanSharing(SharingConfig::new(0)),
        );
        let rb = run_workload(&db, &base).unwrap();
        let rs = run_workload(&db, &ss).unwrap();
        assert_eq!(rb.queries.len(), 44);
        assert_eq!(rs.queries.len(), 44);
        // Per-query answers match between modes (sort by stream+name).
        let key = |q: &scanshare_engine::QueryRecord| (q.stream, q.name.clone());
        let mut qb = rb.queries.clone();
        let mut qs = rs.queries.clone();
        qb.sort_by_key(key);
        qs.sort_by_key(key);
        for (a, b) in qb.iter().zip(&qs) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.result.count, b.result.count, "query {}", a.name);
        }
    }

    #[test]
    fn pool_is_five_percent() {
        let db = generate(&TpchConfig::tiny());
        let pool = paper_pool_pages(&db);
        let five_pct = (db.total_table_pages() as f64 * 0.05) as usize;
        assert_eq!(pool, five_pct.max(64));
    }
}
