//! Seeded TPC-H-like data generation.
//!
//! `lineitem` is MDC-clustered on `shipmonth` (month 0 is the oldest of
//! `months` months — the warehouse keeps 7 years of history, and the
//! analysts' queries concentrate on the most recent year, exactly the
//! hotspot scenario of the papers' introduction). Rows are generated in
//! random ship-month order so that the cells' blocks interleave on disk,
//! which is what makes a key-ordered block index scan pay seeks.

use scanshare_engine::Database;
use scanshare_prng::Rng;
use scanshare_relstore::{ColType, Column, Schema, Value};

/// Column indexes of the `lineitem` table.
pub mod lineitem_cols {
    /// `l_orderkey: Int64`
    pub const ORDERKEY: usize = 0;
    /// `l_quantity: Float64`
    pub const QUANTITY: usize = 1;
    /// `l_extendedprice: Float64`
    pub const EXTENDEDPRICE: usize = 2;
    /// `l_discount: Float64`
    pub const DISCOUNT: usize = 3;
    /// `l_tax: Float64`
    pub const TAX: usize = 4;
    /// `l_shipdate: Int32` (day number since epoch of month 0)
    pub const SHIPDATE: usize = 5;
    /// `l_returnflag: Char`
    pub const RETURNFLAG: usize = 6;
    /// `l_linestatus: Char`
    pub const LINESTATUS: usize = 7;
    /// `l_shipmonth: Int32` — the MDC clustering key
    pub const SHIPMONTH: usize = 8;
}

/// Column indexes of the `orders` table.
pub mod orders_cols {
    /// `o_orderkey: Int64`
    pub const ORDERKEY: usize = 0;
    /// `o_custkey: Int64`
    pub const CUSTKEY: usize = 1;
    /// `o_totalprice: Float64`
    pub const TOTALPRICE: usize = 2;
    /// `o_ordermonth: Int32`
    pub const ORDERMONTH: usize = 3;
}

/// Column indexes of the `part` table.
pub mod part_cols {
    /// `p_partkey: Int64`
    pub const PARTKEY: usize = 0;
    /// `p_size: Int32`
    pub const SIZE: usize = 1;
    /// `p_retailprice: Float64`
    pub const RETAILPRICE: usize = 2;
}

/// Column indexes of the `customer` table.
pub mod customer_cols {
    /// `c_custkey: Int64`
    pub const CUSTKEY: usize = 0;
    /// `c_nationkey: Int32`
    pub const NATIONKEY: usize = 1;
    /// `c_acctbal: Float64`
    pub const ACCTBAL: usize = 2;
}

/// Generator configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TpchConfig {
    /// Scale factor: 1.0 generates ~600k lineitem rows (~4k pages).
    pub scale: f64,
    /// Months of history (the papers' scenario keeps 7 years = 84).
    pub months: u32,
    /// Pages per MDC block (the papers use 16).
    pub block_pages: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 1.0,
            months: 84,
            block_pages: 16,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// A small configuration for fast tests.
    pub fn tiny() -> Self {
        TpchConfig {
            scale: 0.05,
            months: 24,
            block_pages: 4,
            seed: 7,
        }
    }

    /// Lineitem rows at this scale.
    pub fn lineitem_rows(&self) -> u64 {
        (600_000.0 * self.scale) as u64
    }

    /// Orders rows at this scale.
    pub fn orders_rows(&self) -> u64 {
        (150_000.0 * self.scale) as u64
    }

    /// Part rows at this scale.
    pub fn part_rows(&self) -> u64 {
        (120_000.0 * self.scale) as u64
    }

    /// Customer rows at this scale.
    pub fn customer_rows(&self) -> u64 {
        (150_000.0 * self.scale) as u64
    }

    /// The most recent month (the hotspot's upper cell key).
    pub fn last_month(&self) -> i64 {
        self.months as i64 - 1
    }
}

/// The `lineitem` schema.
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Column::new("l_orderkey", ColType::Int64),
        Column::new("l_quantity", ColType::Float64),
        Column::new("l_extendedprice", ColType::Float64),
        Column::new("l_discount", ColType::Float64),
        Column::new("l_tax", ColType::Float64),
        Column::new("l_shipdate", ColType::Int32),
        Column::new("l_returnflag", ColType::Char),
        Column::new("l_linestatus", ColType::Char),
        Column::new("l_shipmonth", ColType::Int32),
    ])
}

/// The `orders` schema.
pub fn orders_schema() -> Schema {
    Schema::new(vec![
        Column::new("o_orderkey", ColType::Int64),
        Column::new("o_custkey", ColType::Int64),
        Column::new("o_totalprice", ColType::Float64),
        Column::new("o_ordermonth", ColType::Int32),
    ])
}

/// The `part` schema.
pub fn part_schema() -> Schema {
    Schema::new(vec![
        Column::new("p_partkey", ColType::Int64),
        Column::new("p_size", ColType::Int32),
        Column::new("p_retailprice", ColType::Float64),
    ])
}

/// The `customer` schema.
pub fn customer_schema() -> Schema {
    Schema::new(vec![
        Column::new("c_custkey", ColType::Int64),
        Column::new("c_nationkey", ColType::Int32),
        Column::new("c_acctbal", ColType::Float64),
    ])
}

/// Generate the database.
pub fn generate(cfg: &TpchConfig) -> Database {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut db = Database::new(cfg.block_pages.max(16));

    // lineitem: MDC on shipmonth, inserted in random month order.
    let months = cfg.months.max(1) as i64;
    let n_li = cfg.lineitem_rows();
    let flags = [b'A', b'N', b'R'];
    let statuses = [b'F', b'O'];
    let li_rows = (0..n_li).map(|i| {
        let month = rng.random_range(0..months);
        let day = month as i32 * 30 + rng.random_range(0..30);
        let qty = rng.random_range(1..=50) as f64;
        let price = qty * rng.random_range(900.0..=10_000.0_f64) / 10.0;
        let row = vec![
            Value::I64(i as i64 / 4),
            Value::F64(qty),
            Value::F64((price * 100.0).round() / 100.0),
            Value::F64(rng.random_range(0..=10) as f64 / 100.0),
            Value::F64(rng.random_range(0..=8) as f64 / 100.0),
            Value::I32(day),
            Value::Ch(flags[rng.random_range(0..flags.len())]),
            Value::Ch(statuses[rng.random_range(0..statuses.len())]),
            Value::I32(month as i32),
        ];
        (month, row)
    });
    db.create_mdc_table("lineitem", lineitem_schema(), cfg.block_pages, li_rows)
        .expect("lineitem load");

    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x6f72646572);
    let n_orders = cfg.orders_rows();
    let orders_rows = (0..n_orders).map(|i| {
        vec![
            Value::I64(i as i64),
            Value::I64(rng.random_range(0..cfg.customer_rows().max(1)) as i64),
            Value::F64(rng.random_range(1000.0..500_000.0_f64)),
            Value::I32(rng.random_range(0..months) as i32),
        ]
    });
    db.create_heap_table("orders", orders_schema(), orders_rows)
        .expect("orders load");

    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x70617274);
    let part_rows = (0..cfg.part_rows()).map(|i| {
        vec![
            Value::I64(i as i64),
            Value::I32(rng.random_range(1..=50)),
            Value::F64(rng.random_range(900.0..2000.0_f64)),
        ]
    });
    db.create_heap_table("part", part_schema(), part_rows)
        .expect("part load");

    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x63757374);
    let cust_rows = (0..cfg.customer_rows()).map(|i| {
        vec![
            Value::I64(i as i64),
            Value::I32(rng.random_range(0..25)),
            Value::F64(rng.random_range(-999.0..10_000.0_f64)),
        ]
    });
    db.create_heap_table("customer", customer_schema(), cust_rows)
        .expect("customer load");

    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_database_has_all_tables() {
        let cfg = TpchConfig::tiny();
        let db = generate(&cfg);
        assert_eq!(
            db.table_names(),
            vec!["customer", "lineitem", "orders", "part"]
        );
        assert_eq!(
            db.table("lineitem").unwrap().num_rows(),
            cfg.lineitem_rows()
        );
        assert_eq!(db.table("orders").unwrap().num_rows(), cfg.orders_rows());
        let li = db.table("lineitem").unwrap().as_mdc().unwrap();
        assert_eq!(li.block_pages, cfg.block_pages);
        assert!(li.min_key >= 0);
        assert_eq!(li.max_key, cfg.last_month());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TpchConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(
            a.table("lineitem").unwrap().num_pages(),
            b.table("lineitem").unwrap().num_pages()
        );
        // Spot-check identical bytes on a few pages.
        let f = a.table("lineitem").unwrap().file();
        for p in [0u32, 7, 19] {
            let pa = a
                .store()
                .read_page(scanshare_storage::PageId::new(f, p))
                .unwrap();
            let pb = b
                .store()
                .read_page(scanshare_storage::PageId::new(f, p))
                .unwrap();
            assert_eq!(pa, pb, "page {p} differs");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TpchConfig::tiny());
        let b = generate(&TpchConfig {
            seed: 8,
            ..TpchConfig::tiny()
        });
        let fa = a.table("lineitem").unwrap().file();
        let fb = b.table("lineitem").unwrap().file();
        let pa = a
            .store()
            .read_page(scanshare_storage::PageId::new(fa, 0))
            .unwrap();
        let pb = b
            .store()
            .read_page(scanshare_storage::PageId::new(fb, 0))
            .unwrap();
        assert_ne!(pa, pb);
    }

    #[test]
    fn months_are_spread_across_cells() {
        let cfg = TpchConfig::tiny();
        let db = generate(&cfg);
        let li = db.table("lineitem").unwrap().as_mdc().unwrap();
        for month in 0..cfg.months as i64 {
            let blocks = li.blocks_for_range(db.store(), month, month).unwrap();
            assert!(!blocks.is_empty(), "month {month} has no blocks");
        }
    }
}
