//! TPC-H-shaped data and workload for the `scanshare` experiments.
//!
//! The papers evaluate on a 100 GB TPC-H database with a buffer pool of
//! about 5 % of the database size, running the 22-query throughput
//! workload in 5 streams; per stream the queries contain 18 block index
//! scans and 29 table scans. This crate reproduces that *shape* at
//! laptop scale:
//!
//! * [`gen`] — a seeded generator for four tables: `lineitem`
//!   (MDC-clustered on ship month, the target of block index scans),
//!   plus heap tables `orders`, `part`, and `customer` (the targets of
//!   table scans),
//! * [`queries`] — TPC-H Q1 (CPU-bound full scan) and Q6 (I/O-bound
//!   one-year index scan) modeled faithfully, plus 20 parameterized
//!   templates chosen so each stream issues exactly 18 block index scans
//!   and 29 table scans,
//! * [`workload`] — builders for the paper's experiments: staggered
//!   single-query runs (Figures 15/16) and N-stream throughput runs
//!   (Table 1, Figures 17–20).
//!
//! Everything is deterministic given the seed.

pub mod gen;
pub mod queries;
pub mod workload;

pub use gen::{generate, TpchConfig};
pub use queries::{q1, q6, stream_queries, QUERY_NAMES};
pub use workload::{staggered_workload, throughput_workload};
