//! The 22-query workload.
//!
//! Q1 and Q6 are modeled on their TPC-H namesakes:
//!
//! * **Q1** — full scan of `lineitem` with heavy per-row aggregation:
//!   CPU-intensive, the workload of the paper's Figure 16,
//! * **Q6** — block index scan of one year of `lineitem` with a cheap
//!   predicate: I/O-intensive, the workload of Figure 15.
//!
//! The other twenty templates are parameterized mixes of heap table
//! scans (over `orders`, `part`, `customer`) and block index scans over
//! recent `lineitem` months — per stream they add up to exactly the scan
//! mix the paper reports for its throughput run: **18 block index scans
//! and 29 table scans** across the 22 queries. Q21 carries two large
//! overlapping index scans, mirroring the paper's observation that Q21
//! benefits most from sharing.
//!
//! Month windows are drawn per stream from the most recent two years —
//! the warehouse-hotspot access pattern of the papers' introduction.

use scanshare_engine::{Access, AggSpec, CpuClass, Pred, Query, ScanSpec};
use scanshare_prng::Rng;

use crate::gen::lineitem_cols as li;

/// The query names, in template order.
pub const QUERY_NAMES: [&str; 22] = [
    "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11", "Q12", "Q13", "Q14", "Q15",
    "Q16", "Q17", "Q18", "Q19", "Q20", "Q21", "Q22",
];

fn li_index(lo: i64, hi: i64, cpu: CpuClass, pred: Pred) -> ScanSpec {
    ScanSpec {
        table: "lineitem".into(),
        access: Access::IndexRange { lo, hi },
        pred,
        agg: AggSpec::sums(vec![li::EXTENDEDPRICE, li::DISCOUNT]),
        cpu,
        require_order: false,
        query_priority: Default::default(),
        repeat: 1,
    }
}

fn li_full(cpu: CpuClass) -> ScanSpec {
    ScanSpec {
        table: "lineitem".into(),
        access: Access::FullTable,
        pred: Pred::True,
        // Q1's pricing-summary aggregation: sums per (returnflag,
        // linestatus) group.
        agg: AggSpec::grouped_sums(
            vec![li::QUANTITY, li::EXTENDEDPRICE, li::DISCOUNT, li::TAX],
            vec![li::RETURNFLAG, li::LINESTATUS],
        ),
        cpu,
        require_order: false,
        query_priority: Default::default(),
        repeat: 1,
    }
}

fn heap(table: &str, sum_col: usize, cpu: CpuClass) -> ScanSpec {
    ScanSpec {
        table: table.into(),
        access: Access::FullTable,
        pred: Pred::True,
        agg: AggSpec::sums(vec![sum_col]),
        cpu,
        require_order: false,
        query_priority: Default::default(),
        repeat: 1,
    }
}

/// A window of `span` months ending somewhere in the most recent year.
fn recent_window(rng: &mut Rng, months: i64, span: i64) -> (i64, i64) {
    let last = months - 1;
    let hi = (last - rng.random_range(0..12.min(months))).max(0);
    let lo = (hi - span + 1).max(0);
    (lo, hi)
}

/// TPC-H Q1: CPU-bound full scan of `lineitem`.
pub fn q1() -> Query {
    Query::single("Q1", li_full(CpuClass::cpu_bound()))
}

/// TPC-H Q6: I/O-bound block index scan over one recent year of
/// `lineitem` with the classic quantity/discount filter.
pub fn q6(months: i64, seed: u64) -> Query {
    let mut rng = Rng::seed_from_u64(seed);
    let (lo, hi) = recent_window(&mut rng, months, 12);
    Query::single(
        "Q6",
        li_index(
            lo,
            hi,
            CpuClass::io_bound(),
            Pred::And(
                Box::new(Pred::F64LessThan(li::QUANTITY, 24.0)),
                Box::new(Pred::F64LessThan(li::DISCOUNT, 0.07)),
            ),
        ),
    )
}

/// Build the 22 query instances for one stream (unpermuted, in template
/// order). `months` is the number of history months in the database.
pub fn query_set(months: i64, rng: &mut Rng) -> Vec<Query> {
    use crate::gen::{customer_cols as cc, orders_cols as oc, part_cols as pc};
    let io = CpuClass::io_bound;
    let bal = CpuClass::balanced;
    let cpu = CpuClass::cpu_bound;
    let mut w = |span| recent_window(rng, months, span);

    let specs: Vec<(&str, Vec<ScanSpec>)> = vec![
        ("Q1", vec![li_full(cpu())]),
        ("Q2", {
            let (lo, hi) = w(3);
            vec![
                heap("part", pc::RETAILPRICE, bal()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        ("Q3", {
            let (lo, hi) = w(3);
            vec![
                heap("customer", cc::ACCTBAL, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        ("Q4", {
            let (lo, hi) = w(3);
            vec![
                heap("orders", oc::TOTALPRICE, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        ("Q5", {
            let (lo, hi) = w(12);
            vec![
                heap("customer", cc::ACCTBAL, io()),
                heap("orders", oc::TOTALPRICE, io()),
                li_index(lo, hi, bal(), Pred::True),
            ]
        }),
        ("Q6", {
            let (lo, hi) = w(12);
            vec![li_index(
                lo,
                hi,
                io(),
                Pred::And(
                    Box::new(Pred::F64LessThan(li::QUANTITY, 24.0)),
                    Box::new(Pred::F64LessThan(li::DISCOUNT, 0.07)),
                ),
            )]
        }),
        ("Q7", {
            let (lo, hi) = w(24);
            vec![
                heap("orders", oc::TOTALPRICE, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        ("Q8", {
            let (lo, hi) = w(24);
            vec![
                heap("part", pc::RETAILPRICE, io()),
                heap("customer", cc::ACCTBAL, io()),
                li_index(lo, hi, bal(), Pred::True),
            ]
        }),
        (
            "Q9",
            vec![heap("part", pc::RETAILPRICE, io()), li_full(cpu())],
        ),
        ("Q10", {
            let (lo, hi) = w(3);
            vec![
                heap("orders", oc::TOTALPRICE, io()),
                heap("customer", cc::ACCTBAL, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        (
            "Q11",
            vec![
                heap("part", pc::RETAILPRICE, bal()),
                heap("customer", cc::ACCTBAL, io()),
            ],
        ),
        ("Q12", {
            let (lo, hi) = w(12);
            vec![
                heap("orders", oc::TOTALPRICE, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        ("Q13", {
            let (lo, hi) = w(6);
            vec![
                heap("customer", cc::ACCTBAL, bal()),
                heap("orders", oc::TOTALPRICE, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        ("Q14", {
            let (lo, hi) = w(1);
            vec![
                heap("part", pc::RETAILPRICE, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        ("Q15", {
            let (lo, hi) = w(3);
            vec![li_index(lo, hi, io(), Pred::True)]
        }),
        (
            "Q16",
            vec![
                heap("part", pc::RETAILPRICE, io()),
                heap("customer", cc::ACCTBAL, io()),
            ],
        ),
        ("Q17", {
            let (lo, hi) = w(6);
            vec![
                heap("part", pc::RETAILPRICE, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        (
            "Q18",
            vec![heap("orders", oc::TOTALPRICE, io()), li_full(cpu())],
        ),
        ("Q19", {
            let (lo, hi) = w(2);
            vec![
                heap("part", pc::RETAILPRICE, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        ("Q20", {
            let (lo, hi) = w(6);
            vec![
                heap("part", pc::RETAILPRICE, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
        ("Q21", {
            let (lo1, hi1) = w(24);
            let (lo2, hi2) = w(24);
            vec![
                heap("orders", oc::TOTALPRICE, io()),
                li_index(lo1, hi1, io(), Pred::True),
                li_index(lo2, hi2, io(), Pred::True),
            ]
        }),
        ("Q22", {
            let (lo, hi) = w(12);
            vec![
                heap("customer", cc::ACCTBAL, io()),
                heap("orders", oc::TOTALPRICE, io()),
                li_index(lo, hi, io(), Pred::True),
            ]
        }),
    ];
    specs
        .into_iter()
        .map(|(name, scans)| Query {
            name: name.into(),
            scans,
        })
        .collect()
}

/// The query list for one stream of a throughput run: the 22 templates
/// instantiated with stream-specific parameters, in a stream-specific
/// permutation (TPC-H prescribes a different query order per stream so
/// "different queries overlap at different points in time").
pub fn stream_queries(stream: usize, months: i64, seed: u64) -> Vec<Query> {
    let mut rng = Rng::seed_from_u64(seed ^ (stream as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut queries = query_set(months, &mut rng);
    rng.shuffle(&mut queries);
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_engine::Access;

    fn scan_mix(queries: &[Query]) -> (usize, usize) {
        let mut table = 0;
        let mut index = 0;
        for q in queries {
            for s in &q.scans {
                match s.access {
                    Access::FullTable => table += 1,
                    Access::IndexRange { .. } | Access::RidRange { .. } => index += 1,
                }
            }
        }
        (table, index)
    }

    /// The paper: "In the 22 queries, there are 18 block index scans and
    /// 29 table scans."
    #[test]
    fn scan_mix_matches_the_paper() {
        let mut rng = Rng::seed_from_u64(1);
        let queries = query_set(84, &mut rng);
        assert_eq!(queries.len(), 22);
        let (table, index) = scan_mix(&queries);
        assert_eq!(index, 18, "block index scans");
        assert_eq!(table, 29, "table scans");
    }

    #[test]
    fn stream_queries_preserve_the_mix_and_are_permuted() {
        let a = stream_queries(0, 84, 9);
        let b = stream_queries(1, 84, 9);
        assert_eq!(scan_mix(&a), (29, 18));
        assert_eq!(scan_mix(&b), (29, 18));
        let names_a: Vec<&str> = a.iter().map(|q| q.name.as_str()).collect();
        let names_b: Vec<&str> = b.iter().map(|q| q.name.as_str()).collect();
        assert_ne!(names_a, names_b, "streams should be permuted differently");
        let mut sorted = names_a.clone();
        sorted.sort();
        let mut expected: Vec<&str> = QUERY_NAMES.to_vec();
        expected.sort();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn stream_queries_are_deterministic() {
        let a = stream_queries(3, 84, 9);
        let b = stream_queries(3, 84, 9);
        let names: Vec<_> = a.iter().map(|q| &q.name).collect();
        let names_b: Vec<_> = b.iter().map(|q| &q.name).collect();
        assert_eq!(names, names_b);
    }

    #[test]
    fn windows_stay_in_range() {
        for stream in 0..8 {
            for q in stream_queries(stream, 24, 5) {
                for s in &q.scans {
                    if let Access::IndexRange { lo, hi } = s.access {
                        assert!(0 <= lo && lo <= hi && hi < 24, "window {lo}..{hi}");
                    }
                }
            }
        }
    }

    #[test]
    fn q6_targets_a_recent_year() {
        let q = q6(84, 3);
        let Access::IndexRange { lo, hi } = q.scans[0].access else {
            panic!("Q6 must be an index scan");
        };
        assert!(hi >= 72, "Q6 window should be recent, got {lo}..{hi}");
        assert_eq!(hi - lo, 11);
    }

    #[test]
    fn q1_is_a_cpu_bound_grouped_table_scan() {
        let q = q1();
        assert_eq!(q.scans.len(), 1);
        assert!(matches!(q.scans[0].access, Access::FullTable));
        assert_eq!(q.scans[0].cpu, scanshare_engine::CpuClass::cpu_bound());
        assert_eq!(q.scans[0].agg.group_by.len(), 2);
    }

    #[test]
    fn q1_produces_the_six_pricing_summary_groups() {
        use crate::gen::{generate, TpchConfig};
        use scanshare_engine::{run_workload, SharingMode};
        let cfg = TpchConfig::tiny();
        let db = generate(&cfg);
        let w = crate::workload::staggered_workload(
            &db,
            &q1(),
            1,
            scanshare_storage::SimDuration::ZERO,
            SharingMode::Base,
        );
        let r = run_workload(&db, &w).unwrap();
        let groups = &r.queries[0].result.groups;
        // 3 return flags x 2 line statuses.
        assert_eq!(groups.len(), 6);
        let total: u64 = groups.iter().map(|g| g.1.count).sum();
        assert_eq!(total, cfg.lineitem_rows());
        // Group sums add up to the global sums.
        for i in 0..4 {
            let global = r.queries[0].result.sums[i];
            let by_group: f64 = groups.iter().map(|g| g.1.sums[i]).sum();
            assert!((global - by_group).abs() < 1e-6 * global.abs().max(1.0));
        }
    }
}
