//! The scan-sharing manager facade — the paper's ISM/"table scan sharing
//! manager", unified over table scans and index scans.
//!
//! One manager exists per buffer pool. Scans interact with it through
//! exactly the calls the papers add to the scan operators (their bold
//! lines in Figure 3):
//!
//! * [`ScanSharingManager::start_scan`] → placement decision,
//! * [`ScanSharingManager::update_location`] → throttle wait + release
//!   priority,
//! * [`ScanSharingManager::wrap_scan`] → the scan entered its second
//!   phase (from the original start key to the assigned start location),
//! * [`ScanSharingManager::end_scan`] → deregistration.
//!
//! The manager is thread-safe (a single mutex around its state); calls
//! arrive once per extent per scan, so contention is negligible — the
//! papers report well under 1 % overhead and the micro-benchmarks in
//! `scanshare-bench` confirm the same for this implementation.

use parking_lot::Mutex;
use scanshare_storage::{PagePriority, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::anchor::AnchorTable;
use crate::config::SharingConfig;
use crate::decision::{DecisionEvent, DecisionLog};
use crate::grouping::{find_leaders_trailers, GroupInfo, Groups, Role};
use crate::obs::span::{SpanProfiler, Track};
use crate::policy::{policy_for, FinishedView, PolicyView, ScanView, SharingPolicy};
use crate::scan::{Location, ObjectId, ScanDesc, ScanId, ScanKind, ScanState};
use crate::stats::SharingStats;
use crate::throttle;

/// Position token meaning "not yet reported by the engine". Locations
/// with this token never participate in coincidence merges.
pub const UNKNOWN_POS: u64 = u64::MAX;

/// Where a new scan should start, as decided by placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartDecision {
    /// Start at the scan's own start key.
    FromStart,
    /// Start at `location`, which is the current location of `scan`
    /// (or of the most recently finished scan when `scan` is `None`).
    JoinAt {
        /// The location to start scanning from.
        location: Location,
        /// The ongoing scan being joined, if any.
        scan: Option<ScanId>,
        /// How many pages *before* `location` the scan should actually
        /// begin. Zero when joining an ongoing scan; when joining a
        /// finished scan this is the number of its trailing pages
        /// expected to still be in the pool ("technically, we should
        /// start the new scan several pages before the last scan's
        /// location" — §6.3). The caller resolves the backup, since only
        /// it can walk the index backwards.
        back_up_pages: u64,
    },
}

impl StartDecision {
    /// Whether the scan starts at its own start key.
    pub fn is_from_start(&self) -> bool {
        matches!(self, StartDecision::FromStart)
    }

    /// The join location, if the scan was placed at one.
    pub fn join_location(&self) -> Option<Location> {
        match self {
            StartDecision::JoinAt { location, .. } => Some(*location),
            StartDecision::FromStart => None,
        }
    }
}

/// What `update_location` tells the calling scan to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Wait this long before continuing (zero when not throttled). The
    /// papers implement this as the update call itself taking longer.
    pub wait: scanshare_storage::SimDuration,
    /// Priority to attach when releasing the pages just processed.
    pub priority: PagePriority,
    /// The scan's current role, for diagnostics.
    pub role: Role,
}

/// Point-in-time introspection of one ongoing scan — the per-scan gauges
/// the observability layer samples: where the scan is, how fast it moves,
/// and how much of its fairness-cap slowdown budget is already spent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanProbe {
    /// The scan.
    pub id: ScanId,
    /// Current role in its group.
    pub role: Role,
    /// Pages left in the scan range (estimate).
    pub remaining_pages: u64,
    /// Recent speed in pages/second.
    pub speed: f64,
    /// Total throttle wait injected so far.
    pub accumulated_slowdown: SimDuration,
    /// The fairness-cap budget (`fairness_cap × est_time`, priority-scaled
    /// under dynamic fairness).
    pub slowdown_budget: SimDuration,
    /// Fraction of the budget spent, in `[0, 1]` (1.0 once exhausted).
    pub slowdown_frac: f64,
    /// Whether the scan hit the cap and is permanently exempt.
    pub throttle_exempt: bool,
}

/// Point-in-time introspection of the whole manager: the formed groups
/// (with leader–trailer extents) and every ongoing scan's throttle state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ManagerProbe {
    /// Current groups, singletons included, in anchor order.
    pub groups: Vec<GroupInfo>,
    /// Per-scan state, in scan-id order.
    pub scans: Vec<ScanProbe>,
}

impl ManagerProbe {
    /// Number of multi-member groups (actively shared page streams).
    pub fn shared_groups(&self) -> usize {
        self.groups.iter().filter(|g| g.members.len() > 1).count()
    }

    /// Largest leader–trailer distance over all groups, in pages.
    pub fn max_extent(&self) -> u64 {
        self.groups.iter().map(|g| g.extent).max().unwrap_or(0)
    }
}

struct FinishedScan {
    location: Location,
    kind: ScanKind,
    /// Value of the global churn counter when the scan ended; if more
    /// than a pool's worth of pages has been read since, the leftovers
    /// are gone and joining this location buys nothing.
    churn_at_end: u64,
}

struct Inner {
    scans: HashMap<ScanId, ScanState>,
    anchors: AnchorTable,
    /// Canonical anchor per table object: table-scan locations are
    /// directly comparable page numbers, so every table scan on an object
    /// lives in one anchor group with offset = page number.
    table_anchors: HashMap<ObjectId, crate::anchor::AnchorId>,
    last_finished: HashMap<ObjectId, FinishedScan>,
    /// Total pages advanced by all scans — a proxy for buffer pool churn.
    total_pages_advanced: u64,
    next_scan: u64,
    stats: SharingStats,
    /// Scans removed from sharing by [`ScanSharingManager::evict_scan`]
    /// (fault degradation). Kept out of [`SharingStats`] so fault-free
    /// reports serialize byte-identically to pre-fault builds.
    evicted_by_fault: u64,
}

impl Inner {
    fn compute_groups(&self, pool_pages: u64) -> Groups {
        let mut triples: Vec<_> = self
            .scans
            .values()
            .map(|s| (s.id, s.anchor, s.anchor_offset))
            .collect();
        triples.sort_by_key(|t| t.0);
        find_leaders_trailers(&triples, pool_pages)
    }
}

/// The scan-sharing manager. One per buffer pool.
pub struct ScanSharingManager {
    cfg: SharingConfig,
    /// The sharing policy in effect, built from [`SharingConfig::policy`].
    /// Placement and the throttle/priority gates dispatch through it.
    policy: Box<dyn SharingPolicy>,
    inner: Mutex<Inner>,
    /// Optional decision-provenance sink; every policy decision is
    /// recorded here when attached (see [`crate::decision`]).
    decisions: Mutex<Option<DecisionLog>>,
    /// Optional span profiler; placement and re-grouping decisions emit
    /// instant spans on the manager track when attached (see
    /// [`crate::obs::span`]).
    profiler: Mutex<Option<SpanProfiler>>,
}

impl ScanSharingManager {
    /// Create a manager for a pool of `cfg.pool_pages` pages.
    pub fn new(cfg: SharingConfig) -> Self {
        ScanSharingManager {
            policy: policy_for(cfg.policy),
            cfg,
            inner: Mutex::new(Inner {
                scans: HashMap::new(),
                anchors: AnchorTable::default(),
                table_anchors: HashMap::new(),
                last_finished: HashMap::new(),
                total_pages_advanced: 0,
                next_scan: 0,
                stats: SharingStats::default(),
                evicted_by_fault: 0,
            }),
            decisions: Mutex::new(None),
            profiler: Mutex::new(None),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SharingConfig {
        &self.cfg
    }

    /// Attach a decision-provenance log; subsequent policy decisions are
    /// recorded into it. Clones of the log share the buffer, so the
    /// caller keeps its handle to read the events back.
    pub fn attach_decision_log(&self, log: DecisionLog) {
        *self.decisions.lock() = Some(log);
    }

    /// The attached decision log, if any.
    pub fn decision_log(&self) -> Option<DecisionLog> {
        self.decisions.lock().clone()
    }

    fn emit(&self, at: SimTime, event: DecisionEvent) {
        if let Some(log) = self.decisions.lock().as_ref() {
            log.record(at, event);
        }
    }

    /// Attach a span profiler; placement and re-grouping decisions emit
    /// instant spans on [`Track::Manager`], nested under whatever engine
    /// span is open when the manager is called. Clones share the span
    /// buffer, so the caller keeps its handle to export the trace.
    pub fn attach_profiler(&self, profiler: SpanProfiler) {
        *self.profiler.lock() = Some(profiler);
    }

    /// Record an instant span on the manager track with `attrs`, when a
    /// profiler is attached. Called once per scan lifetime event (start,
    /// eviction), never per extent, so unprofiled runs pay one mutex
    /// probe on a cold path only.
    fn span_instant(&self, name: &str, at: SimTime, attrs: &[(&str, String)]) {
        if let Some(p) = self.profiler.lock().as_ref() {
            let id = p.instant_on(Track::Manager, name, at);
            for (k, v) in attrs {
                p.attr(id, k, v.clone());
            }
        }
    }

    /// Minimum absolute saving (pages) a placement candidate must offer,
    /// as recorded on placement provenance events.
    fn placement_threshold(&self) -> f64 {
        self.policy.placement_threshold(&self.cfg)
    }

    /// Snapshot the state a [`SharingPolicy`] may consult when placing a
    /// new scan on `object`, taken under the manager's lock.
    fn policy_view(&self, inner: &Inner, object: ObjectId) -> PolicyView {
        let mut scans: Vec<ScanView> = inner
            .scans
            .values()
            .map(|s| ScanView {
                id: s.id,
                desc: s.desc.clone(),
                location: s.location,
                remaining_pages: s.remaining_pages,
                speed: s.speed,
                anchor: s.anchor,
                anchor_offset: s.anchor_offset,
            })
            .collect();
        // HashMap iteration order is arbitrary; sort so candidate
        // tie-breaks (and therefore whole runs) are deterministic.
        scans.sort_by_key(|s| s.id);
        PolicyView {
            cfg: self.cfg.clone(),
            scans,
            last_finished: inner.last_finished.get(&object).map(|f| FinishedView {
                location: f.location,
                kind: f.kind,
                churn_at_end: f.churn_at_end,
            }),
            total_pages_advanced: inner.total_pages_advanced,
        }
    }

    /// Register a new scan and decide where it starts (`startSISCAN`).
    pub fn start_scan(&self, desc: ScanDesc, now: SimTime) -> (ScanId, StartDecision) {
        let mut inner = self.inner.lock();
        let id = ScanId(inner.next_scan);
        inner.next_scan += 1;
        inner.stats.scans_started += 1;

        // Non-default policies announce themselves once, on the first
        // scan, so `explain` can narrate which policy shaped the run. The
        // default policy stays silent to keep grouping-policy reports
        // byte-identical to pre-policy-framework builds.
        if id.0 == 0 && self.policy.kind() != crate::policy::SharingPolicyKind::Grouping {
            self.emit(
                now,
                DecisionEvent::PolicyChosen {
                    scan: id,
                    policy: self.policy.kind(),
                },
            );
        }

        let mut candidates = Vec::new();
        let decision = if self.cfg.enable_placement {
            let view = self.policy_view(&inner, desc.object);
            self.policy.place(&view, &desc, &mut candidates)
        } else {
            StartDecision::FromStart
        };

        // Resolve the anchor/offset the new scan registers with.
        let (anchor, offset, location) = match (&decision, desc.kind) {
            (
                StartDecision::JoinAt {
                    location,
                    scan: Some(other),
                    ..
                },
                _,
            ) => {
                let o = &inner.scans[other];
                (o.anchor, o.anchor_offset, *location)
            }
            (
                StartDecision::JoinAt {
                    location,
                    scan: None,
                    ..
                },
                ScanKind::Table,
            ) => {
                let a = Self::table_anchor(&mut inner, desc.object);
                (a, location.pos as i64, *location)
            }
            (
                StartDecision::JoinAt {
                    location,
                    scan: None,
                    ..
                },
                ScanKind::Index,
            ) => {
                // Joining a finished scan: its group is gone, so the new
                // scan founds a fresh anchor at that location.
                (inner.anchors.fresh(), 0, *location)
            }
            (StartDecision::FromStart, ScanKind::Table) => {
                let a = Self::table_anchor(&mut inner, desc.object);
                (
                    a,
                    desc.start_key,
                    Location::new(desc.start_key, desc.start_key as u64),
                )
            }
            (StartDecision::FromStart, ScanKind::Index) => (
                inner.anchors.fresh(),
                0,
                Location::new(desc.start_key, UNKNOWN_POS),
            ),
        };
        match &decision {
            StartDecision::JoinAt { scan: Some(_), .. } => inner.stats.scans_joined += 1,
            StartDecision::JoinAt { scan: None, .. } => {
                // The optimal search places at arbitrary locations while
                // ongoing scans exist; the last-finished special case
                // only fires when none do. Disjoint, so attribution by
                // presence of ongoing same-kind scans is exact.
                let any_ongoing = inner.scans.values().any(|s| {
                    s.desc.object == desc.object && s.desc.kind == desc.kind && s.id != id
                });
                if any_ongoing {
                    inner.stats.scans_placed_optimal += 1;
                } else {
                    inner.stats.scans_joined_finished += 1;
                }
            }
            StartDecision::FromStart => inner.stats.scans_from_start += 1,
        }
        let object = desc.object;
        let state = ScanState::new(id, desc, location, anchor, offset, now);
        inner.scans.insert(id, state);
        let threshold_pages = self.placement_threshold();
        self.span_instant(
            "mgr.place",
            now,
            &[
                ("scan", id.0.to_string()),
                ("object", object.0.to_string()),
                ("policy", self.policy.kind().to_string()),
                ("candidates", candidates.len().to_string()),
                (
                    "decision",
                    match &decision {
                        StartDecision::FromStart => "from_start".to_string(),
                        StartDecision::JoinAt { scan: Some(s), .. } => format!("join scan {}", s.0),
                        StartDecision::JoinAt { scan: None, .. } => "join_location".to_string(),
                    },
                ),
            ],
        );
        match &decision {
            StartDecision::FromStart => self.emit(
                now,
                DecisionEvent::GroupStart {
                    scan: id,
                    object,
                    candidates,
                    threshold_pages,
                },
            ),
            StartDecision::JoinAt {
                location,
                scan,
                back_up_pages,
            } => self.emit(
                now,
                DecisionEvent::GroupJoin {
                    scan: id,
                    object,
                    joined: *scan,
                    location: *location,
                    back_up_pages: *back_up_pages,
                    candidates,
                    threshold_pages,
                },
            ),
        }
        (id, decision)
    }

    fn table_anchor(inner: &mut Inner, object: ObjectId) -> crate::anchor::AnchorId {
        if let Some(&a) = inner.table_anchors.get(&object) {
            return a;
        }
        let a = inner.anchors.fresh();
        inner.table_anchors.insert(object, a);
        a
    }

    /// `updateSISCANLocation`: record the scan's new location, maybe
    /// merge anchor groups, recompute leaders/trailers, and return the
    /// throttle wait plus the release priority for the processed pages.
    pub fn update_location(
        &self,
        id: ScanId,
        now: SimTime,
        location: Location,
        pages_advanced: u64,
    ) -> UpdateOutcome {
        let mut inner = self.inner.lock();
        let Some(mut state) = inner.scans.remove(&id) else {
            // Unknown scan (already ended): act as a no-op.
            return UpdateOutcome {
                wait: scanshare_storage::SimDuration::ZERO,
                priority: PagePriority::Normal,
                role: Role::Singleton,
            };
        };
        state.advance(now, location, pages_advanced);
        inner.total_pages_advanced += pages_advanced;

        // §7.1 anchor merge: if this scan's new location coincides with
        // another ongoing scan's location, they are provably at the same
        // point — adopt that scan's anchor and offset so the partial
        // order now relates the two groups.
        if location.pos != UNKNOWN_POS {
            let hit = inner
                .scans
                .values()
                .filter(|o| {
                    o.anchor != state.anchor
                        && o.desc.object == state.desc.object
                        && o.desc.kind == state.desc.kind
                        && o.location == location
                })
                .min_by_key(|o| o.id)
                .map(|o| (o.anchor, o.anchor_offset));
            if let Some((anchor, offset)) = hit {
                state.anchor = anchor;
                state.anchor_offset = offset;
                inner.stats.anchor_merges += 1;
            }
        }
        inner.scans.insert(id, state);

        let groups = inner.compute_groups(self.cfg.pool_pages);
        let role = groups.role(id).unwrap_or(Role::Singleton);
        let group = groups.group_of(id).cloned();

        // Provenance: role reclassification (first classification sets
        // the baseline without an event).
        {
            let state = inner.scans.get_mut(&id).expect("scan present");
            let prev = state.last_role;
            state.last_role = Some(role);
            if let (Some(prev), Some(g)) = (prev, group.as_ref()) {
                if prev != role {
                    self.emit(
                        now,
                        DecisionEvent::RoleChange {
                            scan: id,
                            group: g.anchor,
                            from: prev,
                            to: role,
                            group_extent: g.extent,
                            members: g.members.len(),
                        },
                    );
                }
            }
        }

        let threshold_pages = self.cfg.throttle_threshold_pages();
        let mut wait = scanshare_storage::SimDuration::ZERO;
        if self.cfg.enable_throttling && self.policy.throttles() && role == Role::Leader {
            let g = group.as_ref().expect("leader has a group");
            let trailer = g.trailer();
            let trailer_speed = inner.scans[&trailer].speed;
            let distance = g.extent;
            let (exempt_before, was_throttled, accumulated, exempt_after, budget);
            {
                let state = inner.scans.get_mut(&id).expect("scan present");
                exempt_before = state.throttle_exempt;
                was_throttled = state.throttled;
                wait = throttle::throttle(&self.cfg, state, distance, trailer_speed);
                state.throttled = wait > scanshare_storage::SimDuration::ZERO;
                accumulated = state.accumulated_slowdown;
                exempt_after = state.throttle_exempt;
                budget = throttle::slowdown_budget(&self.cfg, &state.desc);
            }
            if wait > scanshare_storage::SimDuration::ZERO {
                inner.stats.waits_injected += 1;
                inner.stats.total_wait += wait;
                self.emit(
                    now,
                    DecisionEvent::Throttle {
                        scan: id,
                        group: g.anchor,
                        distance_pages: distance,
                        threshold_pages,
                        wait,
                        accumulated_slowdown: accumulated,
                        slowdown_budget: budget,
                        fairness_cap: self.cfg.fairness_cap,
                        trailer,
                        trailer_speed,
                    },
                );
            } else if !exempt_before && exempt_after {
                self.emit(
                    now,
                    DecisionEvent::SlowdownCapHit {
                        scan: id,
                        accumulated_slowdown: accumulated,
                        slowdown_budget: budget,
                        fairness_cap: self.cfg.fairness_cap,
                    },
                );
            } else if was_throttled {
                self.emit(
                    now,
                    DecisionEvent::Unthrottle {
                        scan: id,
                        group: g.anchor,
                        distance_pages: distance,
                        threshold_pages,
                    },
                );
            }
        } else {
            // No longer a throttling leader: a scan that was being slowed
            // is implicitly released.
            let state = inner.scans.get_mut(&id).expect("scan present");
            if state.throttled {
                state.throttled = false;
                let (anchor, extent) = group
                    .as_ref()
                    .map(|g| (g.anchor, g.extent))
                    .unwrap_or((state.anchor, 0));
                self.emit(
                    now,
                    DecisionEvent::Unthrottle {
                        scan: id,
                        group: anchor,
                        distance_pages: extent,
                        threshold_pages,
                    },
                );
            }
        }

        let priority = if self.cfg.enable_priorities && self.policy.prioritizes() {
            match role {
                Role::Leader => PagePriority::High,
                Role::Trailer => PagePriority::Low,
                Role::Middle | Role::Singleton => PagePriority::Normal,
            }
        } else {
            PagePriority::Normal
        };
        // Provenance: the release priority for this scan's pages changed
        // with its role (pages enter the pool at `Normal`).
        {
            let state = inner.scans.get_mut(&id).expect("scan present");
            let prev = state.last_priority.unwrap_or(PagePriority::Normal);
            state.last_priority = Some(priority);
            if prev != priority {
                self.emit(
                    now,
                    DecisionEvent::PageReprioritize {
                        scan: id,
                        role,
                        from: prev,
                        to: priority,
                    },
                );
            }
        }
        UpdateOutcome {
            wait,
            priority,
            role,
        }
    }

    /// The scan wrapped around to its start key (phase two of a SISCAN,
    /// or a table scan reaching the end of the table). Index scans found
    /// a fresh anchor group — their relation to the old group is unknown
    /// after the jump; table scans stay in the object's group with the
    /// new page offset.
    pub fn wrap_scan(&self, id: ScanId, now: SimTime, location: Location) {
        let mut inner = self.inner.lock();
        let Some(state) = inner.scans.get(&id) else {
            return;
        };
        let (kind, object) = (state.desc.kind, state.desc.object);
        let (anchor, offset) = match kind {
            ScanKind::Table => (Self::table_anchor(&mut inner, object), location.pos as i64),
            ScanKind::Index => (inner.anchors.fresh(), 0),
        };
        let state = inner.scans.get_mut(&id).expect("checked above");
        state.anchor = anchor;
        state.anchor_offset = offset;
        state.location = location;
        state.last_update = now;
    }

    /// `endSISCAN`: deregister and remember the final location so a
    /// later lone scan can pick up the leftovers.
    pub fn end_scan(&self, id: ScanId, _now: SimTime) {
        let mut inner = self.inner.lock();
        if let Some(state) = inner.scans.remove(&id) {
            inner.stats.scans_finished += 1;
            let churn_at_end = inner.total_pages_advanced;
            inner.last_finished.insert(
                state.desc.object,
                FinishedScan {
                    location: state.location,
                    kind: state.desc.kind,
                    churn_at_end,
                },
            );
        }
    }

    /// The engine observed a fault plan firing in the scan's I/O path:
    /// record it as provenance so `explain`/`watch` narrate fault
    /// handling (including transient faults a retry absorbed).
    pub fn note_fault(
        &self,
        id: ScanId,
        now: SimTime,
        device: u32,
        page: u64,
        transient: bool,
        attempt: u32,
    ) {
        self.emit(
            now,
            DecisionEvent::FaultInjected {
                scan: id,
                device,
                page,
                transient,
                attempt,
            },
        );
    }

    /// Push delivery: should a late joiner that missed `missed_pages` of
    /// a `range_pages` lap attach to the ongoing driver (replaying the
    /// missed prefix privately) or found its own driver? Delegates to the
    /// sharing policy's [`crate::policy::SharingPolicy::attach_push`].
    pub fn attach_push(&self, missed_pages: u64, range_pages: u64) -> bool {
        self.policy.attach_push(missed_pages, range_pages)
    }

    /// Push delivery: `scan` attached to `driver`'s shared page stream
    /// (provenance for the `engine::push` consumer registry — the
    /// manager keeps no driver state of its own). `missed_pages` is the
    /// prefix the consumer replays privately; `consumers` counts the
    /// registry *after* the attach. Whether the attach happens at all is
    /// the policy's call via [`crate::policy::SharingPolicy::attach_push`].
    pub fn note_driver_attach(
        &self,
        scan: ScanId,
        driver: ScanId,
        object: ObjectId,
        now: SimTime,
        missed_pages: u64,
        consumers: usize,
    ) {
        self.span_instant(
            "mgr.push_attach",
            now,
            &[
                ("scan", scan.0.to_string()),
                ("driver", driver.0.to_string()),
                ("missed_pages", missed_pages.to_string()),
            ],
        );
        self.emit(
            now,
            DecisionEvent::DriverAttach {
                scan,
                driver,
                object,
                missed_pages,
                consumers,
            },
        );
    }

    /// Push delivery: the group-driver cursor moved from `from` to
    /// `scan` (the previous driver was evicted mid-lap). Throttling
    /// follows the cursor: after a handoff the new driver is the scan
    /// whose `update_location` calls the throttle machinery sees.
    pub fn note_driver_handoff(
        &self,
        scan: ScanId,
        from: ScanId,
        object: ObjectId,
        now: SimTime,
        remaining_pages: u64,
        consumers: usize,
    ) {
        self.span_instant(
            "mgr.push_handoff",
            now,
            &[
                ("scan", scan.0.to_string()),
                ("from", from.0.to_string()),
                ("remaining_pages", remaining_pages.to_string()),
            ],
        );
        self.emit(
            now,
            DecisionEvent::DriverHandoff {
                scan,
                from,
                object,
                remaining_pages,
                consumers,
            },
        );
    }

    /// Graceful degradation: remove a scan that died to a permanent
    /// fault (or exhausted its retries) from sharing. Its group re-forms
    /// without it, any throttling its position justified is lifted
    /// immediately (a leader must not keep waiting for a dead trailer),
    /// and survivor roles are reclassified. Unlike
    /// [`ScanSharingManager::end_scan`], the final location is *not*
    /// remembered as joinable leftovers — the scan did not finish its
    /// pass, so its trailing pages are not a complete prefix.
    pub fn evict_scan(&self, id: ScanId, now: SimTime, reason: &str) {
        let mut inner = self.inner.lock();
        let Some(state) = inner.scans.remove(&id) else {
            return;
        };
        inner.evicted_by_fault += 1;
        let evicted_total = inner.evicted_by_fault;
        let anchor = state.anchor;
        let remaining = inner.scans.values().filter(|s| s.anchor == anchor).count();
        self.emit(
            now,
            DecisionEvent::ScanEvicted {
                scan: id,
                group: anchor,
                object: state.desc.object,
                reason: reason.to_string(),
                remaining,
            },
        );
        self.emit(
            now,
            DecisionEvent::DegradedMode {
                scan: id,
                evicted_total,
                active: inner.scans.len(),
            },
        );
        self.span_instant(
            "mgr.regroup",
            now,
            &[
                ("scan", id.0.to_string()),
                ("group", anchor.0.to_string()),
                ("reason", reason.to_string()),
                ("survivors", remaining.to_string()),
            ],
        );

        // Re-evaluate the survivors now instead of waiting for their next
        // location update: lift throttling and reclassify roles.
        let groups = inner.compute_groups(self.cfg.pool_pages);
        let threshold_pages = self.cfg.throttle_threshold_pages();
        let mut ids: Vec<ScanId> = inner.scans.keys().copied().collect();
        ids.sort();
        for sid in ids {
            let role = groups.role(sid).unwrap_or(Role::Singleton);
            let group = groups.group_of(sid);
            let (g_anchor, g_extent, g_members) = group
                .map(|g| (g.anchor, g.extent, g.members.len()))
                .unwrap_or((anchor, 0, 1));
            let s = inner.scans.get_mut(&sid).expect("scan present");
            if s.throttled {
                s.throttled = false;
                self.emit(
                    now,
                    DecisionEvent::Unthrottle {
                        scan: sid,
                        group: g_anchor,
                        distance_pages: g_extent,
                        threshold_pages,
                    },
                );
            }
            if let Some(prev) = s.last_role {
                if prev != role {
                    s.last_role = Some(role);
                    self.emit(
                        now,
                        DecisionEvent::RoleChange {
                            scan: sid,
                            group: g_anchor,
                            from: prev,
                            to: role,
                            group_extent: g_extent,
                            members: g_members,
                        },
                    );
                }
            }
        }
    }

    /// Scans evicted from sharing by fault degradation.
    pub fn scans_evicted(&self) -> u64 {
        self.inner.lock().evicted_by_fault
    }

    /// `ISM.pr()`: the release priority for a scan's pages right now.
    pub fn page_priority(&self, id: ScanId) -> PagePriority {
        if !self.cfg.enable_priorities {
            return PagePriority::Normal;
        }
        let inner = self.inner.lock();
        let groups = inner.compute_groups(self.cfg.pool_pages);
        match groups.role(id) {
            Some(Role::Leader) => PagePriority::High,
            Some(Role::Trailer) => PagePriority::Low,
            _ => PagePriority::Normal,
        }
    }

    /// Snapshot of the current groups (diagnostics, tests, examples).
    pub fn groups(&self) -> Vec<GroupInfo> {
        let inner = self.inner.lock();
        inner.compute_groups(self.cfg.pool_pages).groups
    }

    /// Full introspection snapshot: formed groups plus every scan's
    /// speed, remaining work, and slowdown-vs-cap accounting. This is
    /// what the engine's interval sampler reads to emit the per-group
    /// distance and per-scan slowdown series.
    pub fn probe(&self) -> ManagerProbe {
        let inner = self.inner.lock();
        let groups = inner.compute_groups(self.cfg.pool_pages);
        let mut scans: Vec<ScanProbe> = inner
            .scans
            .values()
            .map(|s| {
                let budget = throttle::slowdown_budget(&self.cfg, &s.desc);
                let frac = if budget == SimDuration::ZERO {
                    if s.accumulated_slowdown == SimDuration::ZERO {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    (s.accumulated_slowdown.as_micros() as f64 / budget.as_micros() as f64).min(1.0)
                };
                ScanProbe {
                    id: s.id,
                    role: groups.role(s.id).unwrap_or(Role::Singleton),
                    remaining_pages: s.remaining_pages,
                    speed: s.speed,
                    accumulated_slowdown: s.accumulated_slowdown,
                    slowdown_budget: budget,
                    slowdown_frac: frac,
                    throttle_exempt: s.throttle_exempt,
                }
            })
            .collect();
        scans.sort_by_key(|p| p.id);
        ManagerProbe {
            groups: groups.groups,
            scans,
        }
    }

    /// Number of ongoing scans.
    pub fn num_active(&self) -> usize {
        self.inner.lock().scans.len()
    }

    /// Decision counters.
    pub fn stats(&self) -> SharingStats {
        self.inner.lock().stats.clone()
    }

    /// The current speed estimate of a scan, in pages/second (tests).
    pub fn scan_speed(&self, id: ScanId) -> Option<f64> {
        self.inner.lock().scans.get(&id).map(|s| s.speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_storage::SimDuration;

    fn table_desc(object: u64, pages: u64, secs: u64) -> ScanDesc {
        ScanDesc {
            kind: ScanKind::Table,
            object: ObjectId(object),
            start_key: 0,
            end_key: pages as i64 - 1,
            est_pages: pages,
            est_time: SimDuration::from_secs(secs),
            priority: Default::default(),
        }
    }

    fn index_desc(object: u64, lo: i64, hi: i64, pages: u64, secs: u64) -> ScanDesc {
        ScanDesc {
            kind: ScanKind::Index,
            object: ObjectId(object),
            start_key: lo,
            end_key: hi,
            est_pages: pages,
            est_time: SimDuration::from_secs(secs),
            priority: Default::default(),
        }
    }

    fn mgr(pool: u64) -> ScanSharingManager {
        ScanSharingManager::new(SharingConfig::new(pool))
    }

    fn mgr_with_policy(pool: u64, policy: crate::policy::SharingPolicyKind) -> ScanSharingManager {
        ScanSharingManager::new(SharingConfig::with_policy(pool, policy))
    }

    #[test]
    fn first_scan_starts_from_the_beginning() {
        let m = mgr(1000);
        let (_, d) = m.start_scan(table_desc(0, 1000, 10), SimTime::ZERO);
        assert!(d.is_from_start());
        assert_eq!(m.num_active(), 1);
    }

    #[test]
    fn second_table_scan_joins_the_first() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t = SimTime::from_secs(5);
        m.update_location(s1, t, Location::new(500, 500), 500);
        let (_, d) = m.start_scan(table_desc(0, 10_000, 100), t);
        assert_eq!(
            d,
            StartDecision::JoinAt {
                location: Location::new(500, 500),
                scan: Some(s1),
                back_up_pages: 0,
            }
        );
        assert_eq!(m.stats().scans_joined, 1);
    }

    #[test]
    fn scans_on_different_objects_do_not_join() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        m.update_location(s1, SimTime::from_secs(5), Location::new(500, 500), 500);
        let (_, d) = m.start_scan(table_desc(1, 10_000, 100), SimTime::from_secs(5));
        assert!(d.is_from_start());
    }

    #[test]
    fn index_scan_joins_only_within_key_range() {
        let m = mgr(1000);
        // Ongoing scan currently at key 50.
        let (s1, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        m.update_location(s1, SimTime::from_secs(5), Location::new(50, 480), 480);
        // New scan over keys [60, 90]: s1's key 50 is outside -> no join.
        let (_, d) = m.start_scan(index_desc(0, 60, 90, 1500, 15), SimTime::from_secs(5));
        assert!(d.is_from_start());
        // New scan over [40, 100]: s1 is inside -> join.
        let (_, d) = m.start_scan(index_desc(0, 40, 100, 3000, 30), SimTime::from_secs(5));
        assert_eq!(d.join_location(), Some(Location::new(50, 480)));
    }

    #[test]
    fn placement_disabled_always_starts_fresh() {
        let m = ScanSharingManager::new(SharingConfig {
            enable_placement: false,
            ..SharingConfig::new(1000)
        });
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        m.update_location(s1, SimTime::from_secs(5), Location::new(500, 500), 500);
        let (_, d) = m.start_scan(table_desc(0, 10_000, 100), SimTime::from_secs(5));
        assert!(d.is_from_start());
        assert_eq!(m.stats().scans_from_start, 2);
    }

    #[test]
    fn joined_scans_form_a_group_and_roles_emerge() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t1 = SimTime::from_secs(5);
        m.update_location(s1, t1, Location::new(500, 500), 500);
        let (s2, d) = m.start_scan(table_desc(0, 10_000, 100), t1);
        assert!(!d.is_from_start());
        // s1 advances ahead of s2.
        let t2 = SimTime::from_secs(6);
        let o1 = m.update_location(s1, t2, Location::new(610, 610), 110);
        let o2 = m.update_location(s2, t2, Location::new(600, 600), 100);
        assert_eq!(o1.role, Role::Leader);
        assert_eq!(o2.role, Role::Trailer);
        assert_eq!(o1.priority, PagePriority::High);
        assert_eq!(o2.priority, PagePriority::Low);
        let groups = m.groups();
        let g = groups.iter().find(|g| g.members.len() == 2).unwrap();
        assert_eq!(g.extent, 10);
    }

    #[test]
    fn drifting_leader_gets_throttled() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t1 = SimTime::from_secs(5);
        m.update_location(s1, t1, Location::new(500, 500), 500);
        let (s2, _) = m.start_scan(table_desc(0, 10_000, 100), t1);
        let t2 = SimTime::from_secs(6);
        // Leader sprints 200 pages while trailer crawls 40 -> distance
        // 160 > 32-page threshold.
        let o1 = m.update_location(s1, t2, Location::new(700, 700), 200);
        assert_eq!(o1.role, Role::Leader);
        assert!(o1.wait > SimDuration::ZERO, "leader must be throttled");
        let o2 = m.update_location(s2, t2, Location::new(540, 540), 40);
        assert_eq!(o2.role, Role::Trailer);
        assert_eq!(o2.wait, SimDuration::ZERO, "trailers are never throttled");
        let stats = m.stats();
        assert_eq!(stats.waits_injected, 1);
        assert!(stats.total_wait > SimDuration::ZERO);
    }

    #[test]
    fn evicting_a_dead_trailer_unthrottles_the_leader() {
        let m = mgr(1000);
        let log = crate::decision::DecisionLog::new(256);
        m.attach_decision_log(log.clone());
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t1 = SimTime::from_secs(5);
        m.update_location(s1, t1, Location::new(500, 500), 500);
        let (s2, _) = m.start_scan(table_desc(0, 10_000, 100), t1);
        let t2 = SimTime::from_secs(6);
        // Leader sprints ahead of the trailer and gets throttled.
        m.update_location(s2, t2, Location::new(540, 540), 40);
        let o1 = m.update_location(s1, t2, Location::new(700, 700), 200);
        assert!(o1.wait > SimDuration::ZERO, "leader must be throttled");

        // The trailer dies to a permanent fault and is evicted.
        let t3 = SimTime::from_secs(7);
        m.note_fault(s2, t3, 0, 540, false, 1);
        m.evict_scan(s2, t3, "permanent read fault on device 0");
        assert_eq!(m.num_active(), 1);
        assert_eq!(m.scans_evicted(), 1);

        let events: Vec<_> = log.records().into_iter().map(|r| r.event).collect();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DecisionEvent::FaultInjected { scan, transient: false, .. } if *scan == s2)),
            "fault provenance missing: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DecisionEvent::ScanEvicted { scan, remaining: 1, .. } if *scan == s2)),
            "eviction event missing: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                DecisionEvent::DegradedMode {
                    evicted_total: 1,
                    active: 1,
                    ..
                }
            )),
            "degraded-mode event missing: {events:?}"
        );
        // The leader is released immediately, not at its next update.
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DecisionEvent::Unthrottle { scan, .. } if *scan == s1)),
            "leader unthrottle missing: {events:?}"
        );
        // And reclassified: a group of one has no leader.
        assert!(
            events.iter().any(|e| matches!(
                e,
                DecisionEvent::RoleChange { scan, from: Role::Leader, to: Role::Singleton, .. } if *scan == s1
            )),
            "leader reclassification missing: {events:?}"
        );
        // The evicted scan's position is not joinable leftovers.
        let (_, d) = m.start_scan(table_desc(0, 10_000, 100), t3);
        assert!(
            matches!(d, StartDecision::JoinAt { scan: Some(j), .. } if j == s1)
                || d.is_from_start()
        );
    }

    #[test]
    fn evicting_an_unknown_scan_is_a_noop() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(table_desc(0, 1000, 10), SimTime::ZERO);
        m.end_scan(s1, SimTime::from_secs(1));
        m.evict_scan(s1, SimTime::from_secs(2), "already gone");
        assert_eq!(m.scans_evicted(), 0);
    }

    #[test]
    fn no_throttle_when_disabled() {
        let m = ScanSharingManager::new(SharingConfig {
            enable_throttling: false,
            ..SharingConfig::new(1000)
        });
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t1 = SimTime::from_secs(5);
        m.update_location(s1, t1, Location::new(500, 500), 500);
        let (s2, _) = m.start_scan(table_desc(0, 10_000, 100), t1);
        let t2 = SimTime::from_secs(6);
        m.update_location(s2, t2, Location::new(540, 540), 40);
        let o1 = m.update_location(s1, t2, Location::new(700, 700), 200);
        assert_eq!(o1.wait, SimDuration::ZERO);
    }

    #[test]
    fn priorities_normal_when_disabled() {
        let m = ScanSharingManager::new(SharingConfig {
            enable_priorities: false,
            ..SharingConfig::new(1000)
        });
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let o = m.update_location(s1, SimTime::from_secs(1), Location::new(100, 100), 100);
        assert_eq!(o.priority, PagePriority::Normal);
        assert_eq!(m.page_priority(s1), PagePriority::Normal);
    }

    #[test]
    fn lone_scan_after_finish_joins_leftovers() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        m.update_location(s1, SimTime::from_secs(10), Location::new(80, 4000), 4000);
        m.end_scan(s1, SimTime::from_secs(12));
        assert_eq!(m.num_active(), 0);
        let (_, d) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::from_secs(12));
        assert_eq!(d.join_location(), Some(Location::new(80, 4000)));
        assert_eq!(m.stats().scans_joined_finished, 1);
    }

    #[test]
    fn churned_leftovers_are_not_joined() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        m.update_location(s1, SimTime::from_secs(10), Location::new(80, 4000), 4000);
        m.end_scan(s1, SimTime::from_secs(12));
        // A big scan on another object churns more than the pool size.
        let (s2, _) = m.start_scan(index_desc(1, 0, 100, 5000, 50), SimTime::from_secs(12));
        m.update_location(s2, SimTime::from_secs(20), Location::new(90, 4500), 4500);
        m.end_scan(s2, SimTime::from_secs(21));
        // The leftovers of s1 are long gone: start fresh.
        let (_, d) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::from_secs(21));
        assert!(d.is_from_start());
    }

    #[test]
    fn finished_scan_outside_range_is_not_joined() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        m.update_location(s1, SimTime::from_secs(10), Location::new(80, 4000), 4000);
        m.end_scan(s1, SimTime::from_secs(12));
        let (_, d) = m.start_scan(index_desc(0, 0, 50, 2500, 25), SimTime::from_secs(12));
        assert!(d.is_from_start());
    }

    #[test]
    fn anchor_merge_on_location_coincidence() {
        let m = mgr(10_000);
        // Two index scans starting independently (different anchors).
        let (s1, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        let t = SimTime::from_millis(10);
        m.update_location(s1, t, Location::new(10, 512), 512);
        let (s2, d) = m.start_scan(index_desc(0, 0, 9, 500, 5), t);
        // s2's range [0,9] does not contain s1's key 10 -> independent.
        assert!(d.is_from_start());
        // s2 eventually reaches the exact location s1 currently holds.
        let t2 = SimTime::from_millis(20);
        m.update_location(s2, t2, Location::new(10, 512), 200);
        assert_eq!(m.stats().anchor_merges, 1);
        // Now both are in one group.
        let groups = m.groups();
        assert!(groups.iter().any(|g| g.members.len() == 2));
    }

    #[test]
    fn wrap_resets_index_anchor_but_not_table_group() {
        let m = mgr(100_000);
        let (s1, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        let (s2, _) = m.start_scan(table_desc(1, 1000, 10), SimTime::ZERO);
        let (s3, _) = m.start_scan(table_desc(1, 1000, 10), SimTime::ZERO);
        m.update_location(s2, SimTime::from_secs(1), Location::new(100, 100), 100);
        m.update_location(s3, SimTime::from_secs(1), Location::new(120, 120), 120);
        // Table scans share a group before and after wrapping.
        m.wrap_scan(s3, SimTime::from_secs(2), Location::new(0, 0));
        let groups = m.groups();
        let table_group = groups
            .iter()
            .find(|g| g.members.contains(&s2) && g.members.contains(&s3));
        assert!(table_group.is_some(), "table scans stay comparable");
        // Index scan wraps to a fresh anchor: it is its own group.
        m.update_location(s1, SimTime::from_secs(2), Location::new(50, 2500), 2500);
        m.wrap_scan(s1, SimTime::from_secs(3), Location::new(0, 0));
        let groups = m.groups();
        let g1 = groups.iter().find(|g| g.members.contains(&s1)).unwrap();
        assert_eq!(g1.members.len(), 1);
    }

    #[test]
    fn end_scan_is_idempotent_and_updates_after_end_are_noops() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(table_desc(0, 100, 1), SimTime::ZERO);
        m.end_scan(s1, SimTime::from_secs(1));
        m.end_scan(s1, SimTime::from_secs(1));
        let o = m.update_location(s1, SimTime::from_secs(2), Location::new(5, 5), 5);
        assert_eq!(o.wait, SimDuration::ZERO);
        assert_eq!(m.stats().scans_finished, 1);
    }

    #[test]
    fn speed_tracks_recent_progress() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        assert!((m.scan_speed(s1).unwrap() - 100.0).abs() < 1e-9);
        m.update_location(s1, SimTime::from_secs(2), Location::new(500, 500), 500);
        assert!((m.scan_speed(s1).unwrap() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_strategy_places_table_scans_anywhere() {
        use crate::config::PlacementStrategy;
        let m = ScanSharingManager::new(SharingConfig {
            placement_strategy: PlacementStrategy::Optimal,
            ..SharingConfig::new(1000)
        });
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t = SimTime::from_secs(5);
        m.update_location(s1, t, Location::new(500, 500), 500);
        let (_, d) = m.start_scan(table_desc(0, 10_000, 100), t);
        // Placed somewhere in range, and counted as an optimal placement.
        let loc = d.join_location().expect("placed");
        assert!((0..10_000).contains(&loc.key));
        let stats = m.stats();
        assert_eq!(stats.scans_placed_optimal, 1);
        assert_eq!(stats.scans_joined_finished, 0);
    }

    #[test]
    fn optimal_strategy_falls_back_for_index_scans() {
        use crate::config::PlacementStrategy;
        let m = ScanSharingManager::new(SharingConfig {
            placement_strategy: PlacementStrategy::Optimal,
            ..SharingConfig::new(1000)
        });
        let (s1, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        m.update_location(s1, SimTime::from_secs(5), Location::new(50, 480), 480);
        let (_, d) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::from_secs(5));
        // Practical algorithm: joins the member's exact location.
        assert_eq!(d.join_location(), Some(Location::new(50, 480)));
        assert_eq!(m.stats().scans_joined, 1);
    }

    #[test]
    fn attach_strategy_joins_unconditionally() {
        use crate::config::PlacementStrategy;
        let m = ScanSharingManager::new(SharingConfig {
            placement_strategy: PlacementStrategy::AlwaysAttach,
            ..SharingConfig::new(1000)
        });
        // A scan that is nearly done: the practical algorithm would
        // refuse to join it; attach does anyway.
        let (s1, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        m.update_location(s1, SimTime::from_secs(49), Location::new(99, 4990), 4990);
        let (_, d) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::from_secs(49));
        assert_eq!(d.join_location(), Some(Location::new(99, 4990)));
        assert_eq!(m.stats().scans_joined, 1);
    }

    #[test]
    fn attach_picks_the_scan_with_most_remaining_work() {
        use crate::config::PlacementStrategy;
        let m = ScanSharingManager::new(SharingConfig {
            placement_strategy: PlacementStrategy::AlwaysAttach,
            ..SharingConfig::new(1000)
        });
        let (s1, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        let (s2, _) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::ZERO);
        // s1 is far along; s2 has barely started.
        m.update_location(s1, SimTime::from_secs(40), Location::new(80, 4000), 4000);
        m.update_location(s2, SimTime::from_secs(40), Location::new(10, 500), 500);
        let (_, d) = m.start_scan(index_desc(0, 0, 100, 5000, 50), SimTime::from_secs(40));
        assert_eq!(
            d,
            StartDecision::JoinAt {
                location: Location::new(10, 500),
                scan: Some(s2),
                back_up_pages: 0
            }
        );
    }

    #[test]
    fn probe_reports_groups_and_slowdown_budget() {
        let m = mgr(1000);
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t1 = SimTime::from_secs(5);
        m.update_location(s1, t1, Location::new(500, 500), 500);
        let (s2, _) = m.start_scan(table_desc(0, 10_000, 100), t1);
        let t2 = SimTime::from_secs(6);
        // Leader sprints ahead far enough to be throttled.
        m.update_location(s1, t2, Location::new(700, 700), 200);
        m.update_location(s2, t2, Location::new(540, 540), 40);
        let p = m.probe();
        assert_eq!(p.scans.len(), 2);
        assert_eq!(p.shared_groups(), 1);
        let g = p.groups.iter().find(|g| g.members.len() == 2).unwrap();
        assert_eq!(g.extent, 160);
        assert_eq!(p.max_extent(), 160);
        let leader = p.scans.iter().find(|s| s.id == s1).unwrap();
        assert_eq!(leader.role, Role::Leader);
        // Budget = 0.8 * 100s; some of it was just spent on a wait.
        assert_eq!(leader.slowdown_budget, SimDuration::from_secs(80));
        assert!(leader.accumulated_slowdown > SimDuration::ZERO);
        assert!(leader.slowdown_frac > 0.0 && leader.slowdown_frac < 1.0);
        assert!(!leader.throttle_exempt);
        let trailer = p.scans.iter().find(|s| s.id == s2).unwrap();
        assert_eq!(trailer.role, Role::Trailer);
        assert_eq!(trailer.accumulated_slowdown, SimDuration::ZERO);
        assert_eq!(trailer.slowdown_frac, 0.0);
        // The probe is serializable (the engine embeds it in artifacts).
        let json = serde_json::to_string(&p).unwrap();
        let back: ManagerProbe = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn decision_log_captures_placement_and_throttle_provenance() {
        use crate::decision::{DecisionEvent, DecisionLog};
        let m = mgr(1000);
        let log = DecisionLog::new(256);
        m.attach_decision_log(log.clone());
        assert!(m.decision_log().is_some());

        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t1 = SimTime::from_secs(5);
        m.update_location(s1, t1, Location::new(500, 500), 500);
        let (s2, _) = m.start_scan(table_desc(0, 10_000, 100), t1);
        let t2 = SimTime::from_secs(6);
        // Leader sprints 200 pages while the trailer crawls 40 -> distance
        // 160 > threshold 32: a throttle fires.
        m.update_location(s1, t2, Location::new(700, 700), 200);
        m.update_location(s2, t2, Location::new(540, 540), 40);

        let events: Vec<_> = log.records().into_iter().map(|r| r.event).collect();
        // s1 opened its own group with no candidates to consider.
        assert!(matches!(
            &events[0],
            DecisionEvent::GroupStart { scan, candidates, .. }
                if *scan == s1 && candidates.is_empty()
        ));
        // s2 joined s1, and the candidate field names s1 with its score.
        let join = events
            .iter()
            .find_map(|e| match e {
                DecisionEvent::GroupJoin {
                    scan,
                    joined,
                    candidates,
                    threshold_pages,
                    ..
                } if *scan == s2 => Some((joined, candidates, threshold_pages)),
                _ => None,
            })
            .expect("GroupJoin for s2");
        assert_eq!(*join.0, Some(s1));
        assert_eq!(join.1.len(), 1);
        assert_eq!(join.1[0].scan, Some(s1));
        assert!(join.1[0].saving_pages >= *join.2);
        // The throttle decision carries distance, threshold, budget, cap.
        let throttle = events
            .iter()
            .find_map(|e| match e {
                DecisionEvent::Throttle {
                    scan,
                    distance_pages,
                    threshold_pages,
                    wait,
                    slowdown_budget,
                    fairness_cap,
                    trailer,
                    ..
                } if *scan == s1 => Some((
                    *distance_pages,
                    *threshold_pages,
                    *wait,
                    *slowdown_budget,
                    *fairness_cap,
                    *trailer,
                )),
                _ => None,
            })
            .expect("Throttle for s1");
        // At the leader's update the trailer is still at page 500, so
        // the recorded distance is 700 - 500 = 200.
        assert_eq!(throttle.0, 200);
        assert_eq!(throttle.1, 32);
        assert!(throttle.2 > SimDuration::ZERO);
        assert_eq!(throttle.3, SimDuration::from_secs(80));
        assert!((throttle.4 - 0.8).abs() < 1e-9);
        assert_eq!(throttle.5, s2);
        // Role flips were recorded (s1: singleton -> leader).
        assert!(events.iter().any(|e| matches!(
            e,
            DecisionEvent::RoleChange { scan, to: Role::Leader, .. } if *scan == s1
        )));
        // The leader's release priority moved Normal -> High.
        assert!(events.iter().any(|e| matches!(
            e,
            DecisionEvent::PageReprioritize {
                scan,
                from: PagePriority::Normal,
                to: PagePriority::High,
                ..
            } if *scan == s1
        )));
    }

    #[test]
    fn caught_up_leader_emits_unthrottle() {
        use crate::decision::{DecisionEvent, DecisionLog};
        let m = mgr(1000);
        let log = DecisionLog::new(256);
        m.attach_decision_log(log.clone());
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t1 = SimTime::from_secs(5);
        m.update_location(s1, t1, Location::new(500, 500), 500);
        let (s2, _) = m.start_scan(table_desc(0, 10_000, 100), t1);
        let t2 = SimTime::from_secs(6);
        m.update_location(s1, t2, Location::new(700, 700), 200);
        m.update_location(s2, t2, Location::new(540, 540), 40);
        // The trailer closes the gap; the leader's next update finds the
        // distance back inside the threshold.
        let t3 = SimTime::from_secs(7);
        m.update_location(s2, t3, Location::new(690, 690), 150);
        let t4 = SimTime::from_secs(8);
        let o = m.update_location(s1, t4, Location::new(710, 710), 10);
        assert_eq!(o.wait, SimDuration::ZERO);
        let unthrottle = log
            .records()
            .into_iter()
            .find_map(|r| match r.event {
                DecisionEvent::Unthrottle {
                    scan,
                    distance_pages,
                    threshold_pages,
                    ..
                } if scan == s1 => Some((distance_pages, threshold_pages)),
                _ => None,
            })
            .expect("Unthrottle for s1");
        assert_eq!(unthrottle.0, 20);
        assert_eq!(unthrottle.1, 32);
    }

    #[test]
    fn exhausted_budget_emits_slowdown_cap_hit() {
        use crate::decision::{DecisionEvent, DecisionLog};
        let m = mgr(1000);
        let log = DecisionLog::new(256);
        m.attach_decision_log(log.clone());
        // Leader with a tiny 1s estimate -> 0.8s budget; trailer so slow
        // (est 10_000s) every raw wait clamps to max_wait 500ms.
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 1), SimTime::ZERO);
        let t1 = SimTime::from_millis(100);
        m.update_location(s1, t1, Location::new(500, 500), 500);
        let (_s2, _) = m.start_scan(table_desc(0, 10_000, 10_000), t1);
        // Three leader updates at ever-growing distance: grants 500ms,
        // then 300ms, then the budget is gone and the cap-hit fires.
        let mut pos = 700i64;
        for step in 1..=3u64 {
            let t = SimTime::from_millis(100 + step * 100);
            m.update_location(s1, t, Location::new(pos, pos as u64), 200);
            pos += 200;
        }
        let events: Vec<_> = log.records().into_iter().map(|r| r.event).collect();
        let waits: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                DecisionEvent::Throttle { scan, wait, .. } if *scan == s1 => Some(*wait),
                _ => None,
            })
            .collect();
        assert_eq!(
            waits,
            vec![SimDuration::from_millis(500), SimDuration::from_millis(300)]
        );
        let cap = events
            .iter()
            .find_map(|e| match e {
                DecisionEvent::SlowdownCapHit {
                    scan,
                    accumulated_slowdown,
                    slowdown_budget,
                    fairness_cap,
                } if *scan == s1 => Some((*accumulated_slowdown, *slowdown_budget, *fairness_cap)),
                _ => None,
            })
            .expect("SlowdownCapHit for s1");
        assert_eq!(cap.0, SimDuration::from_millis(800));
        assert_eq!(cap.1, SimDuration::from_millis(800));
        assert!((cap.2 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn no_log_attached_means_no_overhead_or_panic() {
        let m = mgr(1000);
        assert!(m.decision_log().is_none());
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        m.update_location(s1, SimTime::from_secs(1), Location::new(100, 100), 100);
        m.end_scan(s1, SimTime::from_secs(2));
    }

    #[test]
    fn manager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScanSharingManager>();
    }

    #[test]
    fn concurrent_use_from_threads() {
        use std::sync::Arc;
        let m = Arc::new(mgr(10_000));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let (id, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
                for step in 1..50u64 {
                    m.update_location(
                        id,
                        SimTime::from_millis(step * 10 + i),
                        Location::new((step * 16) as i64, step * 16),
                        16,
                    );
                }
                m.end_scan(id, SimTime::from_secs(1));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.num_active(), 0);
        assert_eq!(m.stats().scans_finished, 4);
    }

    // ---- policy-framework pinning: the 3-scan micro-workload ----
    //
    // Two ongoing table scans on object 0 — s1 (older) at page 800,
    // s2 (newer) at page 300 — and a third scan arriving. Each policy
    // must make *its* characteristic choice, pinned here so plumbing
    // changes cannot silently alter policy behavior.

    use crate::policy::SharingPolicyKind;

    fn three_scan_setup(m: &ScanSharingManager) -> (ScanId, ScanId, SimTime) {
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t1 = SimTime::from_secs(4);
        m.update_location(s1, t1, Location::new(800, 800), 800);
        let (s2, _) = m.start_scan(table_desc(0, 10_000, 100), t1);
        let t2 = SimTime::from_secs(6);
        m.update_location(s2, t2, Location::new(300, 300), 300);
        m.update_location(s1, t2, Location::new(840, 840), 40);
        (s1, s2, t2)
    }

    #[test]
    fn attach_policy_joins_the_newest_scan() {
        let m = mgr_with_policy(1000, SharingPolicyKind::Attach);
        let (_s1, s2, t) = three_scan_setup(&m);
        let (_, d) = m.start_scan(table_desc(0, 10_000, 100), t);
        // Newest compatible scan wins, regardless of position or
        // remaining work: s2 at page 300.
        assert_eq!(
            d,
            StartDecision::JoinAt {
                location: Location::new(300, 300),
                scan: Some(s2),
                back_up_pages: 0,
            }
        );
    }

    #[test]
    fn elevator_policy_joins_the_front_most_scan() {
        let m = mgr_with_policy(1000, SharingPolicyKind::Elevator);
        let (s1, _s2, t) = three_scan_setup(&m);
        let (_, d) = m.start_scan(table_desc(0, 10_000, 100), t);
        // The cursor is the front-most ongoing scan: s1 at page 840.
        assert_eq!(
            d,
            StartDecision::JoinAt {
                location: Location::new(840, 840),
                scan: Some(s1),
                back_up_pages: 0,
            }
        );
    }

    #[test]
    fn elevator_cursor_rests_at_the_last_finished_location() {
        let m = mgr_with_policy(1000, SharingPolicyKind::Elevator);
        let (s1, _) = m.start_scan(table_desc(0, 10_000, 100), SimTime::ZERO);
        let t = SimTime::from_secs(4);
        m.update_location(s1, t, Location::new(600, 600), 600);
        m.end_scan(s1, t);
        // A new scan on the idle table resumes from the cursor — no
        // back-up, no cache-churn gating (contrast with the grouping
        // policy's leftover join, which backs up a pool's worth).
        let (_, d) = m.start_scan(table_desc(0, 10_000, 100), t);
        assert_eq!(
            d,
            StartDecision::JoinAt {
                location: Location::new(600, 600),
                scan: None,
                back_up_pages: 0,
            }
        );
    }

    #[test]
    fn attach_and_elevator_never_throttle_or_reprioritize() {
        for kind in [SharingPolicyKind::Attach, SharingPolicyKind::Elevator] {
            let m = mgr_with_policy(100, kind);
            let (s1, s2, t) = three_scan_setup(&m);
            // s1 is far ahead of s2 (extent 540 pages >> threshold 32
            // with a 100-page pool they form separate groups; force the
            // leader check by advancing s1 as a grouped leader anyway).
            let out = m.update_location(
                s1,
                t + SimDuration::from_secs(1),
                Location::new(900, 900),
                60,
            );
            assert_eq!(out.wait, SimDuration::ZERO, "{kind:?} must not throttle");
            assert_eq!(out.priority, PagePriority::Normal);
            let out2 = m.update_location(
                s2,
                t + SimDuration::from_secs(1),
                Location::new(400, 400),
                100,
            );
            assert_eq!(out2.wait, SimDuration::ZERO);
            assert_eq!(out2.priority, PagePriority::Normal);
        }
    }

    #[test]
    fn non_default_policy_announces_itself_once_in_provenance() {
        let m = mgr_with_policy(1000, SharingPolicyKind::Attach);
        let log = DecisionLog::new(64);
        m.attach_decision_log(log.clone());
        three_scan_setup(&m);
        let chosen: Vec<_> = log
            .records()
            .into_iter()
            .filter(|r| matches!(r.event, DecisionEvent::PolicyChosen { .. }))
            .collect();
        assert_eq!(chosen.len(), 1);
        assert!(matches!(
            chosen[0].event,
            DecisionEvent::PolicyChosen {
                policy: SharingPolicyKind::Attach,
                ..
            }
        ));
    }

    #[test]
    fn default_grouping_policy_stays_silent_in_provenance() {
        let m = mgr(1000);
        let log = DecisionLog::new(64);
        m.attach_decision_log(log.clone());
        three_scan_setup(&m);
        assert!(log
            .records()
            .iter()
            .all(|r| !matches!(r.event, DecisionEvent::PolicyChosen { .. })));
    }
}
