#![warn(missing_docs)]
//! `scanshare` — the scan-sharing manager.
//!
//! This crate is the reproduction of the primary contribution of
//! *"Increasing Buffer-Locality for Multiple Relational Table Scans
//! through Grouping and Throttling"* (ICDE 2007), together with the
//! index-scan extension of its VLDB 2007 companion paper (*intelligent
//! placement* and *anchor-based ordering* so the same grouping/throttling
//! machinery works when scan locations are not linearly comparable).
//!
//! The design follows the papers' architecture exactly (their Figure 4):
//! the manager is a passive component that scans call into at three
//! points, and it never touches the index, the buffer pool internals, or
//! the disk —
//!
//! 1. [`ScanSharingManager::start_scan`] — registers a scan and decides
//!    *where it should start* (placement),
//! 2. [`ScanSharingManager::update_location`] — called every extent;
//!    returns a **throttle wait** for drifting group leaders and the
//!    **release priority** for the pages just processed,
//! 3. [`ScanSharingManager::end_scan`] — deregisters the scan and records
//!    its final location for the "join the last finished scan" case.
//!
//! Internally the manager keeps, per scan, the attribute set of §5.2 of
//! the paper (location, remaining pages, speed, key range, anchor, anchor
//! offset), maintains the anchor-based partial order of §5.3, classifies
//! groups into leaders and trailers (§7.2, Figure 14), throttles leaders
//! with the 80 % fairness cap, and scores candidate start locations with
//! the `calculateReads` estimator of §6 (Figures 8–13).
//!
//! ```
//! use scanshare::{ScanSharingManager, SharingConfig, ScanDesc, ScanKind, Location, ObjectId};
//! use scanshare_storage::{SimTime, SimDuration};
//!
//! let mgr = ScanSharingManager::new(SharingConfig::new(1000));
//! let table = ObjectId(0);
//! let desc = ScanDesc {
//!     kind: ScanKind::Table,
//!     object: table,
//!     start_key: 0,
//!     end_key: 9_999,
//!     est_pages: 10_000,
//!     est_time: SimDuration::from_secs(10),
//!     priority: Default::default(),
//! };
//! let (scan, decision) = mgr.start_scan(desc.clone(), SimTime::ZERO);
//! // First scan on the table: nothing to join.
//! assert!(decision.is_from_start());
//!
//! // A second, overlapping scan is placed at the first one's location.
//! let t = SimTime::from_secs(1);
//! mgr.update_location(scan, t, Location::new(1000, 1000), 1000);
//! let (_scan2, decision2) = mgr.start_scan(desc, t);
//! assert_eq!(decision2.join_location().unwrap().pos, 1000);
//! ```

pub mod anchor;
pub mod config;
pub mod decision;
pub mod grouping;
pub mod manager;
pub mod obs;
pub mod placement;
pub mod policy;
pub mod scan;
pub mod stats;
pub mod throttle;

pub use config::{DeliveryMode, PlacementStrategy, SharingConfig};
pub use decision::{DecisionEvent, DecisionLog, DecisionRecord, PlacementCandidate};
pub use grouping::{GroupInfo, Role};
pub use manager::{ManagerProbe, ScanProbe, ScanSharingManager, StartDecision, UpdateOutcome};
pub use obs::span::{ProfileSummary, SpanId, SpanProfiler, Track};
pub use obs::{MetricsRegistry, MetricsSnapshot};
pub use policy::{
    AttachPolicy, ElevatorPolicy, GroupingPolicy, PolicyView, ScanView, SharingPolicy,
    SharingPolicyKind,
};
pub use scan::{Location, ObjectId, QueryPriority, ScanDesc, ScanId, ScanKind};
pub use stats::SharingStats;

pub use scanshare_storage::PagePriority;
