//! Scan grouping and leader/trailer classification (§7.2, Figure 14).
//!
//! Scans that are close together in the anchor partial order are formed
//! into **scan groups**, greedily merging the closest pairs first until
//! the combined extent of all groups would no longer fit the buffer pool.
//! Within each group, the scan furthest ahead is the **leader** and the
//! scan furthest behind the **trailer**: leaders get throttled when they
//! drift away, trailers mark their pages cheap to evict.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::anchor::AnchorId;
use crate::scan::ScanId;

/// A scan's role within its group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Front of a multi-scan group (largest offset).
    Leader,
    /// Back of a multi-scan group (smallest offset).
    Trailer,
    /// Between leader and trailer.
    Middle,
    /// Alone in its group — "leader and trailer" at once, like scan A in
    /// the paper's Figure 14 walk-through.
    Singleton,
}

/// One formed group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupInfo {
    /// The anchor all members share.
    pub anchor: AnchorId,
    /// Members in increasing offset order (trailer first, leader last).
    pub members: Vec<ScanId>,
    /// Leader-to-trailer distance in pages.
    pub extent: u64,
}

impl GroupInfo {
    /// The group's trailer (smallest offset).
    pub fn trailer(&self) -> ScanId {
        *self.members.first().expect("groups are nonempty")
    }

    /// The group's leader (largest offset).
    pub fn leader(&self) -> ScanId {
        *self.members.last().expect("groups are nonempty")
    }
}

/// The result of a grouping pass.
#[derive(Debug, Clone, Default)]
pub struct Groups {
    /// All groups (multi-member and singleton).
    pub groups: Vec<GroupInfo>,
    roles: HashMap<ScanId, (usize, Role)>,
}

impl Groups {
    /// The role of `id`, if it was part of the grouping input.
    pub fn role(&self, id: ScanId) -> Option<Role> {
        self.roles.get(&id).map(|&(_, r)| r)
    }

    /// The group containing `id`.
    pub fn group_of(&self, id: ScanId) -> Option<&GroupInfo> {
        self.roles.get(&id).map(|&(g, _)| &self.groups[g])
    }

    /// Sum of extents over all groups (singletons contribute 0).
    pub fn total_extent(&self) -> u64 {
        self.groups.iter().map(|g| g.extent).sum()
    }
}

/// `findLeadersTrailers` (Figure 14): form groups from scans described by
/// `(id, anchor, offset)` triples, with the buffer pool size (in pages) as
/// the extent budget.
///
/// ```
/// use scanshare::grouping::{find_leaders_trailers, Role};
/// use scanshare::anchor::AnchorId;
/// use scanshare::ScanId;
///
/// // Two scans 10 pages apart in one anchor group: they form a group
/// // under a 50-page budget, the one ahead is the leader.
/// let scans = [
///     (ScanId(0), AnchorId(0), 40),
///     (ScanId(1), AnchorId(0), 50),
/// ];
/// let groups = find_leaders_trailers(&scans, 50);
/// assert_eq!(groups.role(ScanId(1)), Some(Role::Leader));
/// assert_eq!(groups.role(ScanId(0)), Some(Role::Trailer));
/// ```
///
/// Pairs of offset-adjacent scans are merged in increasing-distance order
/// as long as the total extent of all formed groups stays below
/// `pool_pages`; the first merge that would reach the budget stops the
/// process (this reproduces the paper's worked example exactly — see the
/// `figure14_worked_example` test).
pub fn find_leaders_trailers(scans: &[(ScanId, AnchorId, i64)], pool_pages: u64) -> Groups {
    // Chains: scans of each anchor group in offset order.
    let mut chains: HashMap<AnchorId, Vec<(i64, ScanId)>> = HashMap::new();
    for &(id, anchor, offset) in scans {
        chains.entry(anchor).or_default().push((offset, id));
    }
    let mut chain_list: Vec<(AnchorId, Vec<(i64, ScanId)>)> = chains.into_iter().collect();
    // Deterministic iteration order regardless of hash state.
    chain_list.sort_by_key(|(a, _)| *a);
    for (_, chain) in &mut chain_list {
        chain.sort();
    }

    // Candidate pairs: consecutive scans within a chain.
    // (chain_idx, gap_idx) identifies the gap between chain[gap] and
    // chain[gap+1]; distance is their offset difference.
    let mut pairs: Vec<(u64, usize, usize)> = Vec::new();
    for (ci, (_, chain)) in chain_list.iter().enumerate() {
        for gi in 0..chain.len().saturating_sub(1) {
            let d = chain[gi + 1].0.abs_diff(chain[gi].0);
            pairs.push((d, ci, gi));
        }
    }
    pairs.sort();

    // Greedy merge with the budget check. `merged[ci][gi]` marks a joined
    // gap; total extent is recomputed per step (scan counts are small).
    let mut merged: Vec<Vec<bool>> = chain_list
        .iter()
        .map(|(_, c)| vec![false; c.len().saturating_sub(1)])
        .collect();
    let total_extent = |merged: &Vec<Vec<bool>>| -> u64 {
        let mut total = 0u64;
        for (ci, (_, chain)) in chain_list.iter().enumerate() {
            let mut run_start = 0usize;
            for gi in 0..chain.len() {
                let joined_next = gi < chain.len() - 1 && merged[ci][gi];
                if !joined_next {
                    if gi > run_start {
                        total += chain[gi].0.abs_diff(chain[run_start].0);
                    }
                    run_start = gi + 1;
                }
            }
        }
        total
    };
    for &(_, ci, gi) in &pairs {
        merged[ci][gi] = true;
        if total_extent(&merged) >= pool_pages {
            merged[ci][gi] = false;
            break;
        }
    }

    // Materialize groups from the merged runs.
    let mut groups = Groups::default();
    for (ci, (anchor, chain)) in chain_list.iter().enumerate() {
        let mut run_start = 0usize;
        for gi in 0..chain.len() {
            let joined_next = gi < chain.len() - 1 && merged[ci][gi];
            if !joined_next {
                let members: Vec<ScanId> =
                    chain[run_start..=gi].iter().map(|&(_, id)| id).collect();
                let extent = chain[gi].0.abs_diff(chain[run_start].0);
                let gidx = groups.groups.len();
                let n = members.len();
                for (mi, &m) in members.iter().enumerate() {
                    let role = if n == 1 {
                        Role::Singleton
                    } else if mi == 0 {
                        Role::Trailer
                    } else if mi == n - 1 {
                        Role::Leader
                    } else {
                        Role::Middle
                    };
                    groups.roles.insert(m, (gidx, role));
                }
                groups.groups.push(GroupInfo {
                    anchor: *anchor,
                    members,
                    extent,
                });
                run_start = gi + 1;
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> ScanId {
        ScanId(n)
    }

    /// The paper's worked example (§7.2 / Figures 6 and 14): scans
    /// A,B,C,D share one anchor with offsets 10,50,60,75; E,F share
    /// another with offsets 20,40. With a 50-page pool, merging by
    /// increasing pair distance forms (B,C), then (B,C,D), then (E,F),
    /// and must stop before (A,B) — the final groups are (A) with extent
    /// 0, (B,C,D) with extent 25, (E,F) with extent 20, total 45 < 50.
    /// B is trailer and D leader of the middle group; E trailer, F
    /// leader; A is both.
    #[test]
    fn figure14_worked_example() {
        let g1 = AnchorId(1);
        let g2 = AnchorId(2);
        let (a, b, c, d, e, f) = (sid(0), sid(1), sid(2), sid(3), sid(4), sid(5));
        let scans = vec![
            (a, g1, 10),
            (b, g1, 50),
            (c, g1, 60),
            (d, g1, 75),
            (e, g2, 20),
            (f, g2, 40),
        ];
        let groups = find_leaders_trailers(&scans, 50);

        assert_eq!(groups.total_extent(), 45);
        assert_eq!(groups.role(a), Some(Role::Singleton));
        assert_eq!(groups.role(b), Some(Role::Trailer));
        assert_eq!(groups.role(c), Some(Role::Middle));
        assert_eq!(groups.role(d), Some(Role::Leader));
        assert_eq!(groups.role(e), Some(Role::Trailer));
        assert_eq!(groups.role(f), Some(Role::Leader));

        let bcd = groups.group_of(b).unwrap();
        assert_eq!(bcd.members, vec![b, c, d]);
        assert_eq!(bcd.extent, 25);
        assert_eq!(bcd.trailer(), b);
        assert_eq!(bcd.leader(), d);
        let ef = groups.group_of(e).unwrap();
        assert_eq!(ef.extent, 20);
        let ag = groups.group_of(a).unwrap();
        assert_eq!(ag.extent, 0);
        assert_eq!(ag.members, vec![a]);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let groups = find_leaders_trailers(&[], 100);
        assert!(groups.groups.is_empty());
        assert_eq!(groups.role(sid(0)), None);
    }

    #[test]
    fn single_scan_is_singleton() {
        let groups = find_leaders_trailers(&[(sid(7), AnchorId(0), 42)], 100);
        assert_eq!(groups.role(sid(7)), Some(Role::Singleton));
        assert_eq!(groups.groups.len(), 1);
    }

    #[test]
    fn zero_budget_forms_no_multi_groups() {
        let g = AnchorId(0);
        let scans = vec![(sid(0), g, 0), (sid(1), g, 1)];
        let groups = find_leaders_trailers(&scans, 0);
        assert_eq!(groups.role(sid(0)), Some(Role::Singleton));
        assert_eq!(groups.role(sid(1)), Some(Role::Singleton));
    }

    #[test]
    fn everything_merges_under_a_big_budget() {
        let g = AnchorId(0);
        let scans: Vec<_> = (0..5).map(|i| (sid(i), g, (i * 10) as i64)).collect();
        let groups = find_leaders_trailers(&scans, 1_000_000);
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0].extent, 40);
        assert_eq!(groups.role(sid(0)), Some(Role::Trailer));
        assert_eq!(groups.role(sid(4)), Some(Role::Leader));
        for i in 1..4 {
            assert_eq!(groups.role(sid(i)), Some(Role::Middle));
        }
    }

    #[test]
    fn closest_pairs_win_the_budget() {
        let g = AnchorId(0);
        // Offsets 0, 100, 102: only (100,102) fits a 10-page budget.
        let scans = vec![(sid(0), g, 0), (sid(1), g, 100), (sid(2), g, 102)];
        let groups = find_leaders_trailers(&scans, 10);
        assert_eq!(groups.role(sid(0)), Some(Role::Singleton));
        assert_eq!(groups.role(sid(1)), Some(Role::Trailer));
        assert_eq!(groups.role(sid(2)), Some(Role::Leader));
    }

    #[test]
    fn scans_at_equal_offsets_group_with_zero_extent() {
        let g = AnchorId(0);
        let scans = vec![(sid(0), g, 5), (sid(1), g, 5), (sid(2), g, 5)];
        let groups = find_leaders_trailers(&scans, 10);
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0].extent, 0);
    }

    #[test]
    fn merging_is_transitive_across_a_chain() {
        let g = AnchorId(0);
        // 0-5-10-15: all gaps are 5; budget 40 admits the whole chain
        // (extent 15).
        let scans: Vec<_> = (0..4).map(|i| (sid(i), g, (i * 5) as i64)).collect();
        let groups = find_leaders_trailers(&scans, 40);
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0].members.len(), 4);
    }
}
