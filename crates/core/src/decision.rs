//! Decision provenance: a structured event log of *why* the manager did
//! what it did.
//!
//! The metrics layer (`crate::obs`, `ScanSharingManager::probe`) reports
//! *what* happened — hit ratios, group extents, slowdown fractions. This
//! module records the decisions themselves, each with the full input
//! context the policy saw and the outcome it chose:
//!
//! * [`DecisionEvent::GroupStart`] / [`DecisionEvent::GroupJoin`] — the
//!   candidate start locations placement scored, and the saving threshold
//!   that selected (or rejected) them,
//! * [`DecisionEvent::Throttle`] / [`DecisionEvent::Unthrottle`] — the
//!   leader–trailer distance against the threshold, the injected wait, and
//!   the accumulated slowdown against the fairness-cap budget,
//! * [`DecisionEvent::SlowdownCapHit`] — the moment a scan exhausts its
//!   80 % budget and becomes permanently throttle-exempt,
//! * [`DecisionEvent::RoleChange`] — leader/trailer/middle/singleton
//!   reclassifications as groups form and drift,
//! * [`DecisionEvent::PageReprioritize`] — the release-path priority the
//!   manager picked for a scan's pages changing with its role.
//!
//! Events flow through a [`DecisionLog`]: a cheap shared ring buffer with
//! a drop-oldest cap and JSONL export, mirroring the engine's `Tracer` so
//! artifacts from either layer read the same way.

use parking_lot::Mutex;
use scanshare_storage::{PagePriority, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::anchor::AnchorId;
use crate::grouping::Role;
use crate::policy::SharingPolicyKind;
use crate::scan::{Location, ObjectId, ScanId};

/// One start location the placement policy considered for a new scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementCandidate {
    /// The ongoing scan whose position defines the candidate (`None` for
    /// computed optimal locations and finished-scan leftovers).
    pub scan: Option<ScanId>,
    /// The candidate start location.
    pub location: Location,
    /// Estimated absolute pages saved by starting here instead of fresh.
    pub saving_pages: f64,
    /// Savings per page scanned — the score candidates compete on.
    pub score: f64,
    /// The candidate member's speed (pages/s) at decision time.
    pub speed: f64,
}

/// One policy decision, with the inputs that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DecisionEvent {
    /// A non-default sharing policy shaped this run; emitted once, when
    /// the first scan registers. (The default grouping policy stays
    /// silent so its reports match pre-policy-framework builds byte for
    /// byte.)
    PolicyChosen {
        /// The first scan of the run (the event anchor).
        scan: ScanId,
        /// The policy every subsequent decision flows through.
        policy: SharingPolicyKind,
    },
    /// Placement started the scan at its own start key — either no
    /// candidate existed or none cleared the saving threshold.
    GroupStart {
        /// The new scan.
        scan: ScanId,
        /// The scanned object.
        object: ObjectId,
        /// Every candidate considered (empty when placement is disabled
        /// or no same-object scans were ongoing).
        candidates: Vec<PlacementCandidate>,
        /// Minimum absolute saving (pages) a candidate needed to win.
        threshold_pages: f64,
    },
    /// Placement joined the scan to an existing page stream.
    GroupJoin {
        /// The new scan.
        scan: ScanId,
        /// The scanned object.
        object: ObjectId,
        /// The ongoing scan joined (`None`: finished-scan leftovers or a
        /// computed optimal location).
        joined: Option<ScanId>,
        /// Where the scan starts.
        location: Location,
        /// Pages to back up before `location` (finished-scan joins).
        back_up_pages: u64,
        /// Every candidate considered, including the winner.
        candidates: Vec<PlacementCandidate>,
        /// Minimum absolute saving (pages) the winner had to clear.
        threshold_pages: f64,
    },
    /// A wait was injected into a drifting group leader.
    Throttle {
        /// The throttled leader.
        scan: ScanId,
        /// The leader's group (anchor id).
        group: AnchorId,
        /// Leader–trailer distance in pages when the decision fired.
        distance_pages: u64,
        /// The distance threshold (two prefetch extents by default).
        threshold_pages: u64,
        /// The wait actually granted (fairness-capped).
        wait: SimDuration,
        /// Total slowdown absorbed by the scan after this wait.
        accumulated_slowdown: SimDuration,
        /// The scan's fairness-cap budget (`fairness_cap × est_time`).
        slowdown_budget: SimDuration,
        /// The configured fairness cap (0.8 = "80 % of estimated time").
        fairness_cap: f64,
        /// The trailer the leader is waiting for.
        trailer: ScanId,
        /// The trailer's speed (pages/s) the wait was sized from.
        trailer_speed: f64,
    },
    /// A previously throttled leader fell back inside the distance
    /// threshold (or stopped being a leader) and is no longer slowed.
    Unthrottle {
        /// The scan no longer being throttled.
        scan: ScanId,
        /// Its group (anchor id).
        group: AnchorId,
        /// Leader–trailer distance in pages at the decision.
        distance_pages: u64,
        /// The distance threshold it fell back inside.
        threshold_pages: u64,
    },
    /// The scan exhausted its fairness-cap budget: it is never throttled
    /// again until it finishes.
    SlowdownCapHit {
        /// The newly exempt scan.
        scan: ScanId,
        /// Slowdown absorbed so far (≥ the budget).
        accumulated_slowdown: SimDuration,
        /// The exhausted budget.
        slowdown_budget: SimDuration,
        /// The configured fairness cap.
        fairness_cap: f64,
    },
    /// The scan's role in its group changed.
    RoleChange {
        /// The reclassified scan.
        scan: ScanId,
        /// Its group (anchor id) after the change.
        group: AnchorId,
        /// Previous role.
        from: Role,
        /// New role.
        to: Role,
        /// The group's leader–trailer extent in pages.
        group_extent: u64,
        /// Number of scans in the group.
        members: usize,
    },
    /// The release priority the manager attaches to the scan's pages
    /// changed (pages enter the pool at `Normal`; leaders mark theirs
    /// `High`, trailers `Low`).
    PageReprioritize {
        /// The scan whose pages are re-prioritized.
        scan: ScanId,
        /// The scan's role driving the choice.
        role: Role,
        /// Priority previously attached on release.
        from: PagePriority,
        /// Priority attached from now on.
        to: PagePriority,
    },
    /// A fault plan fired in the scan's I/O path (reported by the engine
    /// after the fact; transient faults that a retry absorbed still show
    /// up here, which is how `explain` narrates retries).
    FaultInjected {
        /// The scan whose read was hit.
        scan: ScanId,
        /// The device the fault fired on.
        device: u32,
        /// The physical page address of the faulted request.
        page: u64,
        /// Whether a retry may succeed (`false`: dead device/region).
        transient: bool,
        /// 1-based attempt number the fault hit (attempt 2+ means the
        /// engine was already retrying).
        attempt: u32,
    },
    /// A faulted scan was removed from sharing: its group re-forms
    /// without it and any throttling it justified is lifted.
    ScanEvicted {
        /// The evicted scan.
        scan: ScanId,
        /// The group it was evicted from.
        group: AnchorId,
        /// The scanned object.
        object: ObjectId,
        /// Why the manager gave up on the scan.
        reason: String,
        /// Scans remaining in the group after the eviction.
        remaining: usize,
    },
    /// The manager acknowledged running degraded: a scan has been lost
    /// to faults and sharing proceeds with the survivors.
    DegradedMode {
        /// The scan whose loss triggered this transition.
        scan: ScanId,
        /// Scans evicted by faults so far this run.
        evicted_total: u64,
        /// Ongoing scans still being shared.
        active: usize,
    },
    /// Push delivery: a new consumer attached to a group driver's shared
    /// page stream. `missed_pages` is the prefix the consumer replays
    /// through its private pull cursor (the catch-up protocol).
    DriverAttach {
        /// The attaching consumer.
        scan: ScanId,
        /// The scan currently owning the group-driver cursor.
        driver: ScanId,
        /// The object whose pages the driver delivers.
        object: ObjectId,
        /// Pages the driver already delivered before this consumer
        /// attached — replayed privately.
        missed_pages: u64,
        /// Consumers attached to the driver after this attach.
        consumers: usize,
    },
    /// Push delivery: the group-driver role moved to a surviving
    /// consumer because the previous driver detached mid-lap (fault
    /// eviction — a finished driver retires its lap instead).
    DriverHandoff {
        /// The consumer now driving the cursor.
        scan: ScanId,
        /// The consumer that was driving.
        from: ScanId,
        /// The object whose pages the driver delivers.
        object: ObjectId,
        /// Pages left to deliver in the current lap.
        remaining_pages: u64,
        /// Consumers still attached (including the new driver).
        consumers: usize,
    },
}

impl DecisionEvent {
    /// The scan the decision is about.
    pub fn scan(&self) -> ScanId {
        match self {
            DecisionEvent::PolicyChosen { scan, .. }
            | DecisionEvent::GroupStart { scan, .. }
            | DecisionEvent::GroupJoin { scan, .. }
            | DecisionEvent::Throttle { scan, .. }
            | DecisionEvent::Unthrottle { scan, .. }
            | DecisionEvent::SlowdownCapHit { scan, .. }
            | DecisionEvent::RoleChange { scan, .. }
            | DecisionEvent::PageReprioritize { scan, .. }
            | DecisionEvent::FaultInjected { scan, .. }
            | DecisionEvent::ScanEvicted { scan, .. }
            | DecisionEvent::DegradedMode { scan, .. }
            | DecisionEvent::DriverAttach { scan, .. }
            | DecisionEvent::DriverHandoff { scan, .. } => *scan,
        }
    }

    /// The group (anchor) the decision names, when it names one.
    pub fn group(&self) -> Option<AnchorId> {
        match self {
            DecisionEvent::Throttle { group, .. }
            | DecisionEvent::Unthrottle { group, .. }
            | DecisionEvent::RoleChange { group, .. }
            | DecisionEvent::ScanEvicted { group, .. } => Some(*group),
            _ => None,
        }
    }
}

/// A timestamped decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Virtual time of the decision.
    pub at: SimTime,
    /// The decision.
    pub event: DecisionEvent,
}

/// Shared, thread-safe decision sink with a bounded ring buffer: oldest
/// events are dropped past the cap so long runs cannot exhaust memory.
/// Clones share the same buffer (`Arc` inside), so the manager and the
/// run driver can both hold a handle.
#[derive(Debug, Clone)]
pub struct DecisionLog {
    inner: Arc<Mutex<LogInner>>,
}

#[derive(Debug)]
struct LogInner {
    records: VecDeque<DecisionRecord>,
    cap: usize,
    dropped: u64,
}

impl DecisionLog {
    /// Create a log retaining at most `cap` decisions.
    pub fn new(cap: usize) -> Self {
        DecisionLog {
            inner: Arc::new(Mutex::new(LogInner {
                records: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
            })),
        }
    }

    /// Record a decision.
    pub fn record(&self, at: SimTime, event: DecisionEvent) {
        let mut inner = self.inner.lock();
        if inner.records.len() >= inner.cap {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(DecisionRecord { at, event });
    }

    /// Snapshot of the retained decisions, oldest first.
    pub fn records(&self) -> Vec<DecisionRecord> {
        self.inner.lock().records.iter().cloned().collect()
    }

    /// Number of retained decisions.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().records.is_empty()
    }

    /// The newest `n` decisions, oldest of those first (the "decision
    /// tail" a live dashboard shows).
    pub fn tail(&self, n: usize) -> Vec<DecisionRecord> {
        let inner = self.inner.lock();
        let skip = inner.records.len().saturating_sub(n);
        inner.records.iter().skip(skip).cloned().collect()
    }

    /// Decisions dropped due to the cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// The retained decisions as JSON lines — parse back with
    /// [`decisions_from_jsonl`].
    pub fn to_jsonl(&self) -> String {
        decisions_to_jsonl(&self.records())
    }

    /// Human-readable rendering of the retained decisions. Ends with a
    /// `(dropped N older decisions)` line when the cap was exceeded.
    pub fn render(&self) -> String {
        let mut out = render_decisions(&self.records());
        let dropped = self.dropped();
        if dropped > 0 {
            use std::fmt::Write;
            let _ = writeln!(out, "(dropped {dropped} older decisions)");
        }
        out
    }
}

/// Serialize decisions as JSON lines (one `DecisionRecord` per line).
pub fn decisions_to_jsonl(records: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("decision record serializes"));
        out.push('\n');
    }
    out
}

/// Parse a JSON-lines decision log back into records. Blank lines are
/// skipped; the error names the offending line.
pub fn decisions_from_jsonl(text: &str) -> Result<Vec<DecisionRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: DecisionRecord =
            serde_json::from_str(line).map_err(|e| format!("decision line {}: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

/// Short lowercase name for a role (rendering).
pub fn role_name(r: Role) -> &'static str {
    match r {
        Role::Leader => "leader",
        Role::Trailer => "trailer",
        Role::Middle => "middle",
        Role::Singleton => "singleton",
    }
}

/// Short lowercase name for a page priority (rendering).
pub fn priority_name(p: PagePriority) -> &'static str {
    match p {
        PagePriority::High => "high",
        PagePriority::Normal => "normal",
        PagePriority::Low => "low",
    }
}

/// One decision as a single human-readable line (no timestamp).
pub fn describe(event: &DecisionEvent) -> String {
    match event {
        DecisionEvent::PolicyChosen { policy, .. } => format!(
            "sharing policy '{policy}' selected for this run (placement and throttling decisions below follow it)"
        ),
        DecisionEvent::GroupStart {
            scan,
            candidates,
            threshold_pages,
            ..
        } => {
            if candidates.is_empty() {
                format!("scan {} starts own group (no candidates)", scan.0)
            } else {
                let best = candidates
                    .iter()
                    .map(|c| c.saving_pages)
                    .fold(f64::NEG_INFINITY, f64::max);
                format!(
                    "scan {} starts own group ({} candidate{} below threshold {:.1} pages, best saving {:.1})",
                    scan.0,
                    candidates.len(),
                    if candidates.len() == 1 { "" } else { "s" },
                    threshold_pages,
                    best
                )
            }
        }
        DecisionEvent::GroupJoin {
            scan,
            joined,
            location,
            back_up_pages,
            candidates,
            threshold_pages,
            ..
        } => {
            let target = match joined {
                Some(j) => format!("scan {}", j.0),
                None if *back_up_pages > 0 => {
                    format!("finished scan leftovers (-{back_up_pages} pages)")
                }
                None => "computed location".to_string(),
            };
            let winner = candidates
                .iter()
                .map(|c| c.saving_pages)
                .fold(f64::NEG_INFINITY, f64::max);
            format!(
                "scan {} joins {} at key {} ({} candidate{}, best saving {:.1} >= threshold {:.1} pages)",
                scan.0,
                target,
                location.key,
                candidates.len(),
                if candidates.len() == 1 { "" } else { "s" },
                winner,
                threshold_pages
            )
        }
        DecisionEvent::Throttle {
            scan,
            distance_pages,
            threshold_pages,
            wait,
            accumulated_slowdown,
            slowdown_budget,
            fairness_cap,
            trailer,
            trailer_speed,
            ..
        } => {
            let frac = slowdown_frac(*accumulated_slowdown, *slowdown_budget);
            format!(
                "scan {} throttled {wait}: distance {distance_pages} pages > threshold {threshold_pages} pages, slowdown {:.1}%/{:.0}% of budget {slowdown_budget} (trailer {} at {:.1} pages/s)",
                scan.0,
                frac * 100.0,
                fairness_cap * 100.0,
                trailer.0,
                trailer_speed
            )
        }
        DecisionEvent::Unthrottle {
            scan,
            distance_pages,
            threshold_pages,
            ..
        } => format!(
            "scan {} unthrottled: distance {distance_pages} pages <= threshold {threshold_pages} pages",
            scan.0
        ),
        DecisionEvent::SlowdownCapHit {
            scan,
            accumulated_slowdown,
            slowdown_budget,
            fairness_cap,
        } => format!(
            "scan {} hit the {:.0}% slowdown cap ({accumulated_slowdown} of budget {slowdown_budget}): throttle-exempt until it finishes",
            scan.0,
            fairness_cap * 100.0
        ),
        DecisionEvent::RoleChange {
            scan,
            from,
            to,
            group_extent,
            members,
            ..
        } => format!(
            "scan {} role {} -> {} (group of {members}, extent {group_extent} pages)",
            scan.0,
            role_name(*from),
            role_name(*to)
        ),
        DecisionEvent::PageReprioritize { scan, role, from, to } => format!(
            "scan {} releases pages at {} priority (was {}) as {}",
            scan.0,
            priority_name(*to),
            priority_name(*from),
            role_name(*role)
        ),
        DecisionEvent::FaultInjected {
            scan,
            device,
            page,
            transient,
            attempt,
        } => {
            let kind = if *transient { "transient" } else { "permanent" };
            format!(
                "scan {} hit a {kind} read fault on device {device} page {page} (attempt {attempt})",
                scan.0
            )
        }
        DecisionEvent::ScanEvicted {
            scan,
            reason,
            remaining,
            ..
        } => format!(
            "scan {} evicted from its group ({reason}); {remaining} member{} remain",
            scan.0,
            if *remaining == 1 { "" } else { "s" }
        ),
        DecisionEvent::DegradedMode {
            scan,
            evicted_total,
            active,
        } => format!(
            "degraded mode: scan {} lost to faults ({evicted_total} evicted so far, {active} scan{} still sharing)",
            scan.0,
            if *active == 1 { "" } else { "s" }
        ),
        DecisionEvent::DriverAttach {
            scan,
            driver,
            missed_pages,
            consumers,
            ..
        } => {
            let catchup = if *missed_pages == 0 {
                "nothing to catch up".to_string()
            } else {
                format!("{missed_pages} missed pages replayed via private pull cursor")
            };
            format!(
                "scan {} attached to push driver {} ({consumers} consumer{} riding, {catchup})",
                scan.0,
                driver.0,
                if *consumers == 1 { "" } else { "s" }
            )
        }
        DecisionEvent::DriverHandoff {
            scan,
            from,
            remaining_pages,
            consumers,
            ..
        } => format!(
            "push driver handoff: scan {} takes the cursor from scan {} ({remaining_pages} pages left in the lap, {consumers} consumer{} attached)",
            scan.0,
            from.0,
            if *consumers == 1 { "" } else { "s" }
        ),
    }
}

/// Fraction of the slowdown budget spent, clamped to `[0, 1]`.
pub fn slowdown_frac(spent: SimDuration, budget: SimDuration) -> f64 {
    if budget == SimDuration::ZERO {
        if spent == SimDuration::ZERO {
            0.0
        } else {
            1.0
        }
    } else {
        (spent.as_micros() as f64 / budget.as_micros() as f64).min(1.0)
    }
}

/// Human-readable rendering of a decision slice, one timestamped line per
/// decision.
pub fn render_decisions(records: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        use std::fmt::Write;
        let _ = writeln!(out, "{} {}", r.at, describe(&r.event));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<DecisionEvent> {
        vec![
            DecisionEvent::GroupStart {
                scan: ScanId(0),
                object: ObjectId(3),
                candidates: vec![],
                threshold_pages: 16.0,
            },
            DecisionEvent::GroupJoin {
                scan: ScanId(1),
                object: ObjectId(3),
                joined: Some(ScanId(0)),
                location: Location::new(500, 500),
                back_up_pages: 0,
                candidates: vec![PlacementCandidate {
                    scan: Some(ScanId(0)),
                    location: Location::new(500, 500),
                    saving_pages: 310.0,
                    score: 0.8,
                    speed: 120.0,
                }],
                threshold_pages: 16.0,
            },
            DecisionEvent::Throttle {
                scan: ScanId(0),
                group: AnchorId(0),
                distance_pages: 160,
                threshold_pages: 32,
                wait: SimDuration::from_millis(12),
                accumulated_slowdown: SimDuration::from_millis(12),
                slowdown_budget: SimDuration::from_secs(80),
                fairness_cap: 0.8,
                trailer: ScanId(1),
                trailer_speed: 40.0,
            },
            DecisionEvent::Unthrottle {
                scan: ScanId(0),
                group: AnchorId(0),
                distance_pages: 20,
                threshold_pages: 32,
            },
            DecisionEvent::SlowdownCapHit {
                scan: ScanId(0),
                accumulated_slowdown: SimDuration::from_secs(80),
                slowdown_budget: SimDuration::from_secs(80),
                fairness_cap: 0.8,
            },
            DecisionEvent::RoleChange {
                scan: ScanId(1),
                group: AnchorId(0),
                from: Role::Middle,
                to: Role::Trailer,
                group_extent: 48,
                members: 3,
            },
            DecisionEvent::PageReprioritize {
                scan: ScanId(1),
                role: Role::Trailer,
                from: PagePriority::Normal,
                to: PagePriority::Low,
            },
            DecisionEvent::FaultInjected {
                scan: ScanId(2),
                device: 1,
                page: 640,
                transient: true,
                attempt: 2,
            },
            DecisionEvent::ScanEvicted {
                scan: ScanId(2),
                group: AnchorId(0),
                object: ObjectId(3),
                reason: "permanent read fault on device 1".to_string(),
                remaining: 2,
            },
            DecisionEvent::DegradedMode {
                scan: ScanId(2),
                evicted_total: 1,
                active: 2,
            },
            DecisionEvent::PolicyChosen {
                scan: ScanId(0),
                policy: SharingPolicyKind::Elevator,
            },
            DecisionEvent::DriverAttach {
                scan: ScanId(3),
                driver: ScanId(0),
                object: ObjectId(3),
                missed_pages: 48,
                consumers: 3,
            },
            DecisionEvent::DriverHandoff {
                scan: ScanId(1),
                from: ScanId(0),
                object: ObjectId(3),
                remaining_pages: 512,
                consumers: 2,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let log = DecisionLog::new(64);
        for (i, e) in sample_events().into_iter().enumerate() {
            log.record(SimTime::from_millis(i as u64), e);
        }
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 13);
        let back = decisions_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, log.records());
        // Blank lines tolerated; garbage names its line.
        assert_eq!(decisions_from_jsonl("\n\n").unwrap(), vec![]);
        let err = decisions_from_jsonl("{}\n").unwrap_err();
        assert!(err.contains("decision line 1"), "got: {err}");
    }

    #[test]
    fn cap_drops_oldest_and_counts() {
        let log = DecisionLog::new(2);
        for i in 0..5u64 {
            log.record(
                SimTime::from_millis(i),
                DecisionEvent::Unthrottle {
                    scan: ScanId(i),
                    group: AnchorId(0),
                    distance_pages: 0,
                    threshold_pages: 32,
                },
            );
        }
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.records()[0].event.scan(), ScanId(3));
        assert!(log.render().contains("(dropped 3 older decisions)"));
    }

    #[test]
    fn tail_returns_the_newest_decisions() {
        let log = DecisionLog::new(16);
        for i in 0..6u64 {
            log.record(
                SimTime::from_millis(i),
                DecisionEvent::Unthrottle {
                    scan: ScanId(i),
                    group: AnchorId(0),
                    distance_pages: 0,
                    threshold_pages: 32,
                },
            );
        }
        let tail = log.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].event.scan(), ScanId(4));
        assert_eq!(tail[1].event.scan(), ScanId(5));
        assert_eq!(log.tail(100).len(), 6);
    }

    #[test]
    fn describe_names_thresholds_and_caps() {
        let events = sample_events();
        let throttle = describe(&events[2]);
        assert!(throttle.contains("threshold 32 pages"), "got: {throttle}");
        assert!(throttle.contains("80%"), "got: {throttle}");
        assert!(throttle.contains("trailer 1"), "got: {throttle}");
        let join = describe(&events[1]);
        assert!(join.contains("joins scan 0"), "got: {join}");
        assert!(join.contains("threshold 16.0"), "got: {join}");
        let cap = describe(&events[4]);
        assert!(cap.contains("slowdown cap"), "got: {cap}");
        let role = describe(&events[5]);
        assert!(role.contains("middle -> trailer"), "got: {role}");
        let prio = describe(&events[6]);
        assert!(prio.contains("low"), "got: {prio}");
        let fault = describe(&events[7]);
        assert!(
            fault.contains("transient read fault on device 1 page 640"),
            "got: {fault}"
        );
        assert!(fault.contains("attempt 2"), "got: {fault}");
        let evict = describe(&events[8]);
        assert!(evict.contains("evicted"), "got: {evict}");
        assert!(evict.contains("2 members remain"), "got: {evict}");
        let degraded = describe(&events[9]);
        assert!(degraded.contains("degraded mode"), "got: {degraded}");
        let policy = describe(&events[10]);
        assert!(policy.contains("policy 'elevator'"), "got: {policy}");
        let attach = describe(&events[11]);
        assert!(
            attach.contains("attached to push driver 0"),
            "got: {attach}"
        );
        assert!(
            attach.contains("48 missed pages replayed via private pull cursor"),
            "got: {attach}"
        );
        let handoff = describe(&events[12]);
        assert!(handoff.contains("driver handoff"), "got: {handoff}");
        assert!(
            handoff.contains("takes the cursor from scan 0"),
            "got: {handoff}"
        );
        assert!(handoff.contains("512 pages left"), "got: {handoff}");
        let founder = describe(&DecisionEvent::DriverAttach {
            scan: ScanId(0),
            driver: ScanId(0),
            object: ObjectId(3),
            missed_pages: 0,
            consumers: 1,
        });
        assert!(founder.contains("nothing to catch up"), "got: {founder}");
    }

    #[test]
    fn accessors_expose_scan_and_group() {
        let events = sample_events();
        assert_eq!(events[0].scan(), ScanId(0));
        assert_eq!(events[0].group(), None);
        assert_eq!(events[2].group(), Some(AnchorId(0)));
        assert_eq!(events[5].group(), Some(AnchorId(0)));
        assert_eq!(events[7].scan(), ScanId(2));
        assert_eq!(events[7].group(), None);
        assert_eq!(events[8].group(), Some(AnchorId(0)));
        assert_eq!(events[9].group(), None);
        assert_eq!(events[10].scan(), ScanId(0));
        assert_eq!(events[10].group(), None);
        assert_eq!(events[11].scan(), ScanId(3));
        assert_eq!(events[11].group(), None);
        assert_eq!(events[12].scan(), ScanId(1));
        assert_eq!(events[12].group(), None);
    }

    #[test]
    fn slowdown_frac_clamps_and_handles_zero_budget() {
        let z = SimDuration::ZERO;
        assert_eq!(slowdown_frac(z, z), 0.0);
        assert_eq!(slowdown_frac(SimDuration::from_secs(1), z), 1.0);
        let f = slowdown_frac(SimDuration::from_secs(1), SimDuration::from_secs(4));
        assert!((f - 0.25).abs() < 1e-9);
        assert_eq!(
            slowdown_frac(SimDuration::from_secs(9), SimDuration::from_secs(4)),
            1.0
        );
    }

    #[test]
    fn log_is_cheap_to_clone_and_share() {
        let log = DecisionLog::new(8);
        let log2 = log.clone();
        log2.record(
            SimTime::ZERO,
            DecisionEvent::Unthrottle {
                scan: ScanId(0),
                group: AnchorId(0),
                distance_pages: 0,
                threshold_pages: 32,
            },
        );
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
    }
}
