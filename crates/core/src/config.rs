//! Configuration of the sharing manager.

use scanshare_storage::SimDuration;
use serde::{Deserialize, Serialize};

use crate::policy::SharingPolicyKind;

/// Which placement algorithm start_scan runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// §6.3's anchor-group algorithm: candidates are ongoing scans'
    /// current locations; O(|S|²). The paper's production choice.
    #[default]
    Practical,
    /// §6.2's "interesting locations" search; O(|S|³). Only applicable
    /// where scan locations form a known linear axis — i.e. table scans;
    /// index scans silently fall back to the practical algorithm.
    Optimal,
    /// QPipe-style attach (Harizopoulos et al., the paper's related work
    /// \[19\]): a new scan always attaches to the ongoing scan with the
    /// most remaining work, with no sharing-potential estimation. Works
    /// when speeds are similar; drifts apart when they are not — the
    /// weakness the paper's placement + throttling were built to fix.
    /// Pair with `enable_throttling: false` to model the original.
    AlwaysAttach,
}

/// Tunables of the scan-sharing manager. Defaults mirror the papers'
/// prototype: 16-page extents, a drift threshold of two prefetch extents,
/// and an 80 % fairness cap on accumulated slowdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharingConfig {
    /// Size of the buffer pool the manager optimizes for, in pages. Used
    /// as the extent budget when forming groups (Figure 14) and as the
    /// churn window in the sharing-potential estimator.
    pub pool_pages: u64,
    /// Pages per extent; location updates arrive at this granularity.
    pub extent_pages: u64,
    /// Throttle a group leader once its distance to the trailer exceeds
    /// this many extents ("typically less than two prefetch extents").
    pub throttle_threshold_extents: u64,
    /// Stop throttling a scan once its accumulated slowdown exceeds this
    /// fraction of its estimated total scan time (the paper's 80 % rule).
    pub fairness_cap: f64,
    /// Scale the fairness cap by each query's [`crate::scan::QueryPriority`]
    /// — the dynamic-threshold extension the paper lists as future work.
    pub dynamic_fairness: bool,
    /// Upper bound on a single injected wait, so one stale speed estimate
    /// cannot stall a scan for an unbounded time.
    pub max_wait: SimDuration,
    /// Master switch: choose start locations via placement. Off = every
    /// scan starts at its start key (used for ablations).
    pub enable_placement: bool,
    /// Placement algorithm (see [`PlacementStrategy`]).
    pub placement_strategy: PlacementStrategy,
    /// Master switch: throttle drifting leaders.
    pub enable_throttling: bool,
    /// Master switch: leader/trailer page re-prioritization.
    pub enable_priorities: bool,
    /// Which [`crate::policy::SharingPolicy`] the manager runs. Defaults
    /// to the paper's grouping+throttling; `attach` and `elevator` model
    /// the simpler sharing schemes of related work. Omitted in older
    /// workload specs, which therefore keep their exact behavior.
    #[serde(default)]
    pub policy: SharingPolicyKind,
}

impl SharingConfig {
    /// A full-featured configuration for a pool of `pool_pages` pages.
    pub fn new(pool_pages: u64) -> Self {
        SharingConfig {
            pool_pages,
            extent_pages: 16,
            throttle_threshold_extents: 2,
            fairness_cap: 0.8,
            dynamic_fairness: false,
            max_wait: SimDuration::from_millis(500),
            enable_placement: true,
            placement_strategy: PlacementStrategy::default(),
            enable_throttling: true,
            enable_priorities: true,
            policy: SharingPolicyKind::default(),
        }
    }

    /// `new(pool_pages)` with the given sharing policy selected.
    pub fn with_policy(pool_pages: u64, policy: SharingPolicyKind) -> Self {
        SharingConfig {
            policy,
            ..Self::new(pool_pages)
        }
    }

    /// Distance (in pages) beyond which a leader is throttled.
    pub fn throttle_threshold_pages(&self) -> u64 {
        self.throttle_threshold_extents * self.extent_pages
    }

    /// The QPipe-style attach baseline of the paper's related work \[19\]:
    /// unconditional attachment, no speed estimation, no throttling, no
    /// page re-prioritization.
    pub fn attach_baseline(pool_pages: u64) -> Self {
        SharingConfig {
            placement_strategy: PlacementStrategy::AlwaysAttach,
            enable_throttling: false,
            enable_priorities: false,
            ..Self::new(pool_pages)
        }
    }

    /// Disable everything (the "vanilla DB2" baseline).
    pub fn disabled(pool_pages: u64) -> Self {
        SharingConfig {
            enable_placement: false,
            enable_throttling: false,
            enable_priorities: false,
            ..Self::new(pool_pages)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SharingConfig::new(5000);
        assert_eq!(c.extent_pages, 16);
        assert_eq!(c.throttle_threshold_pages(), 32);
        assert!((c.fairness_cap - 0.8).abs() < 1e-12);
        assert!(c.enable_placement && c.enable_throttling && c.enable_priorities);
    }

    #[test]
    fn disabled_turns_everything_off() {
        let c = SharingConfig::disabled(100);
        assert!(!c.enable_placement && !c.enable_throttling && !c.enable_priorities);
        assert_eq!(c.pool_pages, 100);
    }
}
