//! Configuration of the sharing manager.

use scanshare_storage::SimDuration;
use serde::{Deserialize, Serialize};

use crate::policy::SharingPolicyKind;

/// Which placement algorithm start_scan runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// §6.3's anchor-group algorithm: candidates are ongoing scans'
    /// current locations; O(|S|²). The paper's production choice.
    #[default]
    Practical,
    /// §6.2's "interesting locations" search; O(|S|³). Only applicable
    /// where scan locations form a known linear axis — i.e. table scans;
    /// index scans silently fall back to the practical algorithm.
    Optimal,
    /// QPipe-style attach (Harizopoulos et al., the paper's related work
    /// \[19\]): a new scan always attaches to the ongoing scan with the
    /// most remaining work, with no sharing-potential estimation. Works
    /// when speeds are similar; drifts apart when they are not — the
    /// weakness the paper's placement + throttling were built to fix.
    /// Pair with `enable_throttling: false` to model the original.
    AlwaysAttach,
}

/// How pages reach a group's consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DeliveryMode {
    /// Every scan steps its own cursor and fixes its own pages (the
    /// papers' model, and the default). N scans in a group cost ≈ N pool
    /// fixes per shared page.
    #[default]
    Pull,
    /// One *group driver* cursor per (table, range) fetches each extent
    /// exactly once and pushes the fixed pages through every attached
    /// consumer's row pipeline before release — N consumers, one pool
    /// fix per page (the push-based storage-manager design from the
    /// related work).
    Push,
}

impl DeliveryMode {
    /// The CLI spelling of the mode (`pull`, `push`).
    pub fn as_str(&self) -> &'static str {
        match self {
            DeliveryMode::Pull => "pull",
            DeliveryMode::Push => "push",
        }
    }

    /// True for the default pull mode (used to keep serialized specs
    /// byte-identical to pre-push builds).
    pub fn is_pull(&self) -> bool {
        *self == DeliveryMode::Pull
    }
}

impl std::fmt::Display for DeliveryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for DeliveryMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pull" => Ok(DeliveryMode::Pull),
            "push" => Ok(DeliveryMode::Push),
            other => Err(format!(
                "unknown delivery '{other}' (expected pull or push)"
            )),
        }
    }
}

/// Tunables of the scan-sharing manager. Defaults mirror the papers'
/// prototype: 16-page extents, a drift threshold of two prefetch extents,
/// and an 80 % fairness cap on accumulated slowdown.
///
/// `Serialize`/`Deserialize` are hand-written (see below) so the
/// `delivery` knob only appears in serialized specs when it is not the
/// default pull mode: spec templates and pre-push specs keep their
/// exact bytes.
#[derive(Debug, Clone)]
pub struct SharingConfig {
    /// Size of the buffer pool the manager optimizes for, in pages. Used
    /// as the extent budget when forming groups (Figure 14) and as the
    /// churn window in the sharing-potential estimator.
    pub pool_pages: u64,
    /// Pages per extent; location updates arrive at this granularity.
    pub extent_pages: u64,
    /// Throttle a group leader once its distance to the trailer exceeds
    /// this many extents ("typically less than two prefetch extents").
    pub throttle_threshold_extents: u64,
    /// Stop throttling a scan once its accumulated slowdown exceeds this
    /// fraction of its estimated total scan time (the paper's 80 % rule).
    pub fairness_cap: f64,
    /// Scale the fairness cap by each query's [`crate::scan::QueryPriority`]
    /// — the dynamic-threshold extension the paper lists as future work.
    pub dynamic_fairness: bool,
    /// Upper bound on a single injected wait, so one stale speed estimate
    /// cannot stall a scan for an unbounded time.
    pub max_wait: SimDuration,
    /// Master switch: choose start locations via placement. Off = every
    /// scan starts at its start key (used for ablations).
    pub enable_placement: bool,
    /// Placement algorithm (see [`PlacementStrategy`]).
    pub placement_strategy: PlacementStrategy,
    /// Master switch: throttle drifting leaders.
    pub enable_throttling: bool,
    /// Master switch: leader/trailer page re-prioritization.
    pub enable_priorities: bool,
    /// Which [`crate::policy::SharingPolicy`] the manager runs. Defaults
    /// to the paper's grouping+throttling; `attach` and `elevator` model
    /// the simpler sharing schemes of related work. Omitted in older
    /// workload specs, which therefore keep their exact behavior.
    pub policy: SharingPolicyKind,
    /// How pages reach a group's consumers: every scan pulls its own
    /// pages (default) or a single group driver pushes each fixed extent
    /// through all attached consumers. Omitted from serialized specs
    /// when default so pre-push specs and spec templates keep their
    /// bytes.
    pub delivery: DeliveryMode,
}

impl Serialize for SharingConfig {
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("pool_pages", self.pool_pages.to_json_value());
        m.insert("extent_pages", self.extent_pages.to_json_value());
        m.insert(
            "throttle_threshold_extents",
            self.throttle_threshold_extents.to_json_value(),
        );
        m.insert("fairness_cap", self.fairness_cap.to_json_value());
        m.insert("dynamic_fairness", self.dynamic_fairness.to_json_value());
        m.insert("max_wait", self.max_wait.to_json_value());
        m.insert("enable_placement", self.enable_placement.to_json_value());
        m.insert(
            "placement_strategy",
            self.placement_strategy.to_json_value(),
        );
        m.insert("enable_throttling", self.enable_throttling.to_json_value());
        m.insert("enable_priorities", self.enable_priorities.to_json_value());
        m.insert("policy", self.policy.to_json_value());
        if !self.delivery.is_pull() {
            m.insert("delivery", self.delivery.to_json_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for SharingConfig {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn req<T: Deserialize>(m: &serde::Map, field: &str) -> Result<T, serde::Error> {
            match m.get(field) {
                Some(v) => T::from_json_value(v),
                None => serde::__private::missing_field("SharingConfig", field),
            }
        }
        fn opt<T: Deserialize + Default>(m: &serde::Map, field: &str) -> Result<T, serde::Error> {
            match m.get(field) {
                Some(v) => T::from_json_value(v),
                None => Ok(T::default()),
            }
        }
        let m = v
            .as_object()
            .ok_or_else(|| serde::__private::unexpected("an object (SharingConfig)", v))?;
        Ok(SharingConfig {
            pool_pages: req(m, "pool_pages")?,
            extent_pages: req(m, "extent_pages")?,
            throttle_threshold_extents: req(m, "throttle_threshold_extents")?,
            fairness_cap: req(m, "fairness_cap")?,
            dynamic_fairness: req(m, "dynamic_fairness")?,
            max_wait: req(m, "max_wait")?,
            enable_placement: req(m, "enable_placement")?,
            placement_strategy: req(m, "placement_strategy")?,
            enable_throttling: req(m, "enable_throttling")?,
            enable_priorities: req(m, "enable_priorities")?,
            policy: opt(m, "policy")?,
            delivery: opt(m, "delivery")?,
        })
    }
}

impl SharingConfig {
    /// A full-featured configuration for a pool of `pool_pages` pages.
    pub fn new(pool_pages: u64) -> Self {
        SharingConfig {
            pool_pages,
            extent_pages: 16,
            throttle_threshold_extents: 2,
            fairness_cap: 0.8,
            dynamic_fairness: false,
            max_wait: SimDuration::from_millis(500),
            enable_placement: true,
            placement_strategy: PlacementStrategy::default(),
            enable_throttling: true,
            enable_priorities: true,
            policy: SharingPolicyKind::default(),
            delivery: DeliveryMode::default(),
        }
    }

    /// `new(pool_pages)` with the given sharing policy selected.
    pub fn with_policy(pool_pages: u64, policy: SharingPolicyKind) -> Self {
        SharingConfig {
            policy,
            ..Self::new(pool_pages)
        }
    }

    /// Distance (in pages) beyond which a leader is throttled.
    pub fn throttle_threshold_pages(&self) -> u64 {
        self.throttle_threshold_extents * self.extent_pages
    }

    /// The QPipe-style attach baseline of the paper's related work \[19\]:
    /// unconditional attachment, no speed estimation, no throttling, no
    /// page re-prioritization.
    pub fn attach_baseline(pool_pages: u64) -> Self {
        SharingConfig {
            placement_strategy: PlacementStrategy::AlwaysAttach,
            enable_throttling: false,
            enable_priorities: false,
            ..Self::new(pool_pages)
        }
    }

    /// Disable everything (the "vanilla DB2" baseline).
    pub fn disabled(pool_pages: u64) -> Self {
        SharingConfig {
            enable_placement: false,
            enable_throttling: false,
            enable_priorities: false,
            ..Self::new(pool_pages)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SharingConfig::new(5000);
        assert_eq!(c.extent_pages, 16);
        assert_eq!(c.throttle_threshold_pages(), 32);
        assert!((c.fairness_cap - 0.8).abs() < 1e-12);
        assert!(c.enable_placement && c.enable_throttling && c.enable_priorities);
    }

    #[test]
    fn delivery_defaults_to_pull_and_round_trips() {
        use std::str::FromStr;
        let c = SharingConfig::new(100);
        assert_eq!(c.delivery, DeliveryMode::Pull);
        for mode in [DeliveryMode::Pull, DeliveryMode::Push] {
            assert_eq!(DeliveryMode::from_str(mode.as_str()), Ok(mode));
        }
        assert!(DeliveryMode::from_str("teleport").is_err());
        // Serialized default configs must not mention the knob at all
        // (spec templates and committed artifacts keep their bytes) and
        // pre-push specs must still deserialize.
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains("delivery"), "got: {json}");
        let back: SharingConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.delivery, DeliveryMode::Pull);
        let mut push = SharingConfig::new(100);
        push.delivery = DeliveryMode::Push;
        let json = serde_json::to_string(&push).unwrap();
        assert!(json.contains("\"delivery\":\"Push\""), "got: {json}");
    }

    #[test]
    fn disabled_turns_everything_off() {
        let c = SharingConfig::disabled(100);
        assert!(!c.enable_placement && !c.enable_throttling && !c.enable_priorities);
        assert_eq!(c.pool_pages, 100);
    }
}
